//! Umbrella crate for the DSN'18 ARMv8 guardband reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests (and downstream users who want the whole system) can
//! depend on a single crate:
//!
//! ```
//! use armv8_guardbands::power_model::ServerPowerModel;
//!
//! let server = ServerPowerModel::xgene2();
//! let _ = server;
//! ```
//!
//! See [`guardband_core`] for the study's methodology, [`xgene_sim`] and
//! [`dram_sim`] for the hardware substrates, [`char_fw`] for the automated
//! characterization framework, [`fleet`] for sharding campaigns across a
//! simulated datacenter of boards, [`lifetime`] for the multi-year aging
//! and re-characterization study, [`redteam`] for the adversarial
//! co-evolution campaign against the safety net, [`telemetry`] for
//! structured tracing, metrics and the flight recorder, [`observatory`]
//! for fleet-wide timeline aggregation, incident postmortems, SLO
//! burn-rate monitors and early-warning anomaly detection, [`chaos`]
//! for seeded crash-schedule campaigns that prove the durable
//! orchestration layer recovers byte-identically, [`control_plane`] for
//! the always-on HTTP serving layer (safe-point lookups, campaign
//! submission, fleet health and metrics), [`dispatch`] for the
//! economic dispatcher that routes live traffic onto the exploited
//! guardbands, and `crates/bench`
//! for the binaries that regenerate every table and figure of the
//! paper.

#![warn(missing_docs)]

pub use chaos;
pub use char_fw;
pub use control_plane;
pub use dispatch;
pub use dram_sim;
pub use fleet;
pub use guardband_core;
pub use lifetime;
pub use observatory;
pub use power_model;
pub use redteam;
pub use stress_gen;
pub use telemetry;
pub use thermal_sim;
pub use workload_sim;
pub use xgene_sim;
