//! End-to-end acceptance tests for the production safety net.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Backward compatibility** — a campaign checkpoint written before
//!    the safety net existed (a committed JSON fixture with neither the
//!    `sentinel_every` nor the `safety` keys) still decodes and resumes
//!    to the exact result recorded alongside it.
//! 2. **Detection coverage** — with a seeded fault plan that turns every
//!    sub-Vmin run into a silent data corruption, a governor commanding a
//!    voltage below the canaries' Vmin suffers SDCs that the DMR
//!    sentinels detect with *zero* misses, the breaker trips within one
//!    sentinel period, and the guarded run still beats nominal power.

use armv8_guardbands::char_fw::resilience::CampaignCheckpoint;
use armv8_guardbands::char_fw::runner::ResilientRunner;
use armv8_guardbands::guardband_core::governor::{GovernorConfig, OnlineGovernor};
use armv8_guardbands::guardband_core::predictor::VminPredictor;
use armv8_guardbands::guardband_core::safety::{
    BreakerState, SafetyNet, SafetyNetConfig, SentinelVerdict,
};
use armv8_guardbands::power_model::units::{Megahertz, Millivolts};
use armv8_guardbands::workload_sim::canary::CanaryKernel;
use armv8_guardbands::workload_sim::spec::{by_name, SPEC_SUITE};
use armv8_guardbands::xgene_sim::fault::FaultPlan;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::{ChipProfile, SigmaBin};
use armv8_guardbands::xgene_sim::topology::CoreId;

/// A checkpoint taken before the safety net was introduced must decode
/// (serde defaults fill the missing `sentinel_every` and `safety` fields)
/// and resume to the exact pre-safety-net result. The expected values
/// live next to the fixture in `pre_safety_net_expected.csv`.
#[test]
fn pre_safety_net_checkpoint_decodes_and_resumes() {
    let json = include_str!("fixtures/pre_safety_net_checkpoint.json");
    assert!(
        !json.contains("sentinel_every") && !json.contains("\"safety\""),
        "the fixture must predate the safety net to exercise the defaults"
    );
    let checkpoint = CampaignCheckpoint::from_json(json).expect("legacy checkpoint decodes");
    assert_eq!(checkpoint.config.sentinel_every, 0, "legacy default: off");
    assert_eq!(checkpoint.safety.breaker.trips(), 0);

    // The snapshot overwrites whatever server it is resumed onto.
    let mut server = XGene2Server::new(SigmaBin::Tff, 9999);
    let result = ResilientRunner::resume(&mut server, checkpoint).run_to_completion();

    let expected = include_str!("fixtures/pre_safety_net_expected.csv");
    let row = expected.lines().next().expect("one data row");
    let fields: Vec<&str> = row.trim().split(',').collect();
    assert_eq!(result.records.len(), fields[0].parse::<usize>().unwrap());
    assert_eq!(
        result.vmin("mcf", CoreId::new(6)),
        Some(Millivolts::new(fields[1].parse().unwrap()))
    );
    assert_eq!(result.watchdog_resets, fields[2].parse::<u64>().unwrap());
    // The resumed legacy campaign never scheduled a sentinel.
    assert_eq!(result.safety.sentinel.checks, 0);
    assert_eq!(result.safety.breaker_trips, 0);
}

/// The headline acceptance test: below-guardband operation with injected
/// silent corruptions is fully self-protecting.
///
/// Setup: a TSS-corner chip whose weakest core runs mcf under a governor
/// whose predictor was (realistically) trained on the *robust* core, so
/// the commanded voltage lands between mcf's true Vmin on the weak core
/// and the canary suite's Vmin with both PMD cores active. The workload
/// itself runs clean, but every sentinel canary executes below its own
/// Vmin — and the seeded fault plan turns every sub-Vmin run into an SDC.
#[test]
fn injected_sub_vmin_sdcs_are_fully_detected_and_trip_the_breaker() {
    const SEED: u64 = 2018;
    const SENTINEL_EVERY: u32 = 5; // the configurable trip bound, in epochs

    let mut server = XGene2Server::new(SigmaBin::Tss, SEED);
    server.install_fault_plan(FaultPlan::quiet(SEED).with_sub_vmin_sdc());
    let chip = ChipProfile::corner(SigmaBin::Tss);
    let weak = chip.weakest_core();
    let mcf = by_name("mcf").expect("mcf is in the suite").profile();

    // Predictor trained on the robust core: a deliberate, realistic
    // miscalibration for the weak core it will steer.
    let robust = chip.most_robust_core();
    let training: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            (p.clone(), chip.vmin(robust, &p, Megahertz::XGENE2_NOMINAL))
        })
        .collect();
    let predictor = VminPredictor::train(&training).expect("well-posed regression");
    let mut gov = OnlineGovernor::new(Some(predictor), None, GovernorConfig::conservative());

    // Premise check — the scenario only demonstrates the net if the
    // commanded voltage is above the workload's Vmin (so the workload is
    // clean) but below the canaries' 2-active-core Vmin (so sentinels
    // genuinely execute sub-Vmin).
    let commanded = gov.choose(&mcf);
    let workload_vmin = chip.vmin(weak, &mcf, Megahertz::XGENE2_NOMINAL);
    let canary_vmin = [CanaryKernel::int_alu(), CanaryKernel::stream()]
        .iter()
        .map(|k| {
            chip.vmin_with_active_cores(weak, &k.profile(), Megahertz::XGENE2_NOMINAL, 2)
                .as_u32()
        })
        .min()
        .map(Millivolts::new)
        .unwrap();
    assert!(
        workload_vmin < commanded && commanded < canary_vmin,
        "premise broken: vmin(mcf)={workload_vmin} < commanded={commanded} < \
         vmin(canaries)={canary_vmin} must hold"
    );

    let config = SafetyNetConfig {
        sentinel_every_epochs: SENTINEL_EVERY,
        ..SafetyNetConfig::dsn18()
    };
    let mut net = SafetyNet::new(config);

    let mut first_trip_epoch = None;
    for epoch in 0..60u32 {
        let report = net.run_epoch(&mut server, &mut gov, weak, &mcf);
        if let Some(v) = report.sentinel {
            // Every sentinel check run below the canary Vmin must detect.
            if report.commanded < canary_vmin {
                assert!(
                    matches!(
                        v,
                        SentinelVerdict::VoteSplit | SentinelVerdict::ChecksumMismatch
                    ),
                    "sub-Vmin sentinel check at {} escaped detection: {v:?}",
                    report.commanded
                );
            }
        }
        if first_trip_epoch.is_none() && report.breaker_state == BreakerState::Tripped {
            first_trip_epoch = Some(epoch);
        }
    }

    // 100 % detection: SDCs were injected and none slipped past a
    // sentinel as a Clean verdict.
    let sentinel = net.sentinel_stats();
    assert!(sentinel.true_sdcs > 0, "the fault plan injected no SDCs");
    assert_eq!(sentinel.undetected_sdcs, 0, "an SDC escaped the sentinels");
    assert!(sentinel.detections() > 0);

    // The breaker tripped within the configured sentinel period.
    let tripped_at = first_trip_epoch.expect("the breaker never tripped");
    assert!(
        tripped_at < SENTINEL_EVERY,
        "trip after {tripped_at} epochs exceeds the {SENTINEL_EVERY}-epoch bound"
    );
    assert!(net.breaker_trips() >= 1);
    assert_eq!(net.stats().refresh_rollbacks, net.breaker_trips());
    assert_eq!(gov.stats().breaker_trips, net.breaker_trips());
    assert!(gov.stats().last_trip_reason.is_some());

    // The workload epochs themselves stayed clean: every injected SDC
    // landed in a canary, where the net could see it.
    assert_eq!(net.audit().workload_true_sdcs, 0);

    // And the guarded run still saves measurable power vs nominal.
    let savings = 1.0 - gov.stats().mean_power_ratio();
    assert!(
        savings > 0.0,
        "no power saved: mean ratio {}",
        gov.stats().mean_power_ratio()
    );
}

/// After the trip the net widens the margin above the canary Vmin, so a
/// long steady-state run re-earns scaled, relaxed-refresh operation.
#[test]
fn the_net_recovers_to_scaled_operation_after_the_trip() {
    const SEED: u64 = 2018;
    let mut server = XGene2Server::new(SigmaBin::Tss, SEED);
    server.install_fault_plan(FaultPlan::quiet(SEED).with_sub_vmin_sdc());
    let chip = ChipProfile::corner(SigmaBin::Tss);
    let weak = chip.weakest_core();
    let mcf = by_name("mcf").unwrap().profile();
    let robust = chip.most_robust_core();
    let training: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            (p.clone(), chip.vmin(robust, &p, Megahertz::XGENE2_NOMINAL))
        })
        .collect();
    let mut gov = OnlineGovernor::new(
        Some(VminPredictor::train(&training).unwrap()),
        None,
        GovernorConfig {
            // Freeze relaxation so the post-trip margin is not slowly
            // narrowed back into the canaries' sub-Vmin region.
            clean_streak_to_relax: u32::MAX,
            ..GovernorConfig::conservative()
        },
    );
    let mut net = SafetyNet::new(SafetyNetConfig {
        sentinel_every_epochs: 5,
        ..SafetyNetConfig::dsn18()
    });

    let mut last = None;
    for _ in 0..80 {
        last = Some(net.run_epoch(&mut server, &mut gov, weak, &mcf));
    }
    let last = last.unwrap();
    assert_eq!(net.breaker_trips(), 1, "one trip, then stable recovery");
    assert_eq!(net.stats().refresh_restores, 1);
    assert_eq!(last.breaker_state, BreakerState::Healthy);
    assert!(last.commanded < Millivolts::XGENE2_NOMINAL, "scaled again");
    assert_eq!(net.sentinel_stats().undetected_sdcs, 0);
}
