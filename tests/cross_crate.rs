//! Cross-crate invariants: interactions that only appear when multiple
//! subsystems are wired together.

use armv8_guardbands::dram_sim::array::DramArray;
use armv8_guardbands::dram_sim::patterns::DataPattern;
use armv8_guardbands::dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use armv8_guardbands::power_model::units::{Celsius, Milliseconds, Watts};
use armv8_guardbands::thermal_sim::testbed::{ChannelId, ThermalTestbed};
use armv8_guardbands::workload_sim::stencil::{JacobiStencil, SweepSchedule};
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn relaxed_array(seed: u64, temp: f64) -> DramArray {
    let pop = WeakCellPopulation::generate(
        &RetentionModel::xgene2_micron(),
        PopulationSpec::dsn18(),
        seed,
    );
    DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(temp))
}

/// The thermal testbed's regulated temperature drives the DRAM error rate:
/// heating the DIMMs from 50 °C to 60 °C multiplies the error population
/// roughly 17× (Table I's temperature sensitivity), with the *same* cells
/// at 50 °C being a subset of those at 60 °C.
#[test]
fn testbed_temperature_drives_dram_errors() {
    let mut bed = ThermalTestbed::new(Celsius::new(25.0), 42);
    bed.set_all_targets(Celsius::new(50.0));
    bed.run(5400.0);
    let t50 = bed.temperature(ChannelId::new(0, 0));

    let mut dram = relaxed_array(42, 25.0);
    dram.set_temperature(t50);
    dram.fill_pattern(DataPattern::Random { seed: 1 });
    dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
    let flips_50 = dram.scrub().flipped_bits;

    bed.set_all_targets(Celsius::new(60.0));
    bed.run(5400.0);
    let t60 = bed.temperature(ChannelId::new(0, 0));
    dram.set_temperature(t60);
    dram.fill_pattern(DataPattern::Random { seed: 1 });
    dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
    let flips_60 = dram.scrub().flipped_bits;

    let ratio = flips_60 as f64 / flips_50.max(1) as f64;
    assert!(
        (8.0..35.0).contains(&ratio),
        "50→60 °C flip ratio {ratio} ({flips_50} → {flips_60})"
    );
}

/// The access-pattern scheduler (workload-sim) reduces the reliance on ECC
/// (dram-sim): the paced stencil raises fewer corrected errors than the
/// bursty one over its grid.
#[test]
fn paced_stencil_reduces_ecc_reliance() {
    let stencil = JacobiStencil::new(384, 6, 9000.0);
    let mut a = relaxed_array(77, 60.0);
    let bursty = stencil.run(&mut a, SweepSchedule::Bursty { duty: 0.2 });
    let mut b = relaxed_array(77, 60.0);
    let paced = stencil.run(&mut b, SweepSchedule::Paced);
    assert!(
        bursty.unique_error_locations >= paced.unique_error_locations,
        "bursty {} vs paced {} unique failing cells",
        bursty.unique_error_locations,
        paced.unique_error_locations
    );
    assert_eq!(
        bursty.checksum, paced.checksum,
        "results are numerically identical"
    );
}

/// SLIMpro error reporting and the framework's counters agree: every CE
/// the DRAM raises during a scrub appears in the server's error log.
#[test]
fn slimpro_error_reporting_is_consistent() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 55);
    server.set_dram_temperature(Celsius::new(60.0));
    server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).unwrap();
    server
        .dram_mut()
        .fill_pattern(DataPattern::Random { seed: 2 });
    server
        .dram_mut()
        .advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
    let report = server.dram_mut().scrub();
    let log = server.dram().error_log();
    assert_eq!(report.ce_events, log.ce_count());
    assert_eq!(report.ue_events, log.ue_count());
    assert!(log.unique_locations() > 0);
    assert!(log.unique_locations() as u64 <= report.flipped_bits);
}

/// Refresh power accounting is self-consistent between the DRAM domain
/// model and the server model: the DRAM-domain saving inside the full
/// breakdown equals the standalone domain computation.
#[test]
fn dram_domain_savings_agree_between_models() {
    use armv8_guardbands::power_model::domain::{DomainKind, DramDomain};
    use armv8_guardbands::power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};

    let server = ServerPowerModel::xgene2();
    let load = ServerLoad::jammer_detector();
    let nominal = server.power(&OperatingPoint::nominal(), &load);
    let safe = server.power(&OperatingPoint::dsn18_safe_point(), &load);
    let in_breakdown = nominal
        .domain(DomainKind::Dram)
        .savings_to(safe.domain(DomainKind::Dram));

    let standalone = DramDomain::xgene2(Watts::new(9.0)).refresh_relaxation_savings(
        Milliseconds::DSN18_RELAXED_TREFP,
        load.dram_bandwidth_utilization,
    );
    assert!((in_breakdown - standalone).abs() < 1e-9);
}

/// A virus evolved against the PDN model beats the strongest constant
/// workload in the Vmin model too — the two electrical models agree on
/// what "worst case" means.
#[test]
fn em_fitness_and_vmin_model_agree_on_worst_case() {
    use armv8_guardbands::power_model::units::Megahertz;
    use armv8_guardbands::stress_gen::ga::{evolve, genome_profile, GaConfig};
    use armv8_guardbands::stress_gen::isa::{InstrClass, VirusGenome};
    use armv8_guardbands::xgene_sim::em::EmProbe;
    use armv8_guardbands::xgene_sim::pdn::PdnModel;
    use armv8_guardbands::xgene_sim::sigma::ChipProfile;

    let pdn = PdnModel::xgene2();
    let mut probe = EmProbe::new(pdn, 9);
    let config = GaConfig {
        population: 24,
        generations: 30,
        ..GaConfig::dsn18()
    };
    let champion = evolve(&config, &mut probe);

    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let core = chip.most_robust_core();
    let virus_vmin = chip.vmin(
        core,
        &champion.champion_profile(&pdn),
        Megahertz::XGENE2_NOMINAL,
    );
    let steady = genome_profile(
        "steady-simd",
        &VirusGenome::new(vec![InstrClass::SimdFma; 48]),
        &pdn,
    );
    let steady_vmin = chip.vmin(core, &steady, Megahertz::XGENE2_NOMINAL);
    assert!(
        virus_vmin > steady_vmin,
        "evolved virus {virus_vmin} vs steady SIMD {steady_vmin}"
    );
}
