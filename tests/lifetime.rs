//! Lifetime subsystem integration tests: the multi-year deployment
//! end-to-end invariants (byte-identical chronicles across pool sizes,
//! zero production SDCs under maintenance, warm-start walk savings) and
//! the property layer underneath them (aging drift monotonicity and
//! determinism, the versioned safe-point store's semilattice laws).

use armv8_guardbands::guardband_core::epoch::VersionedSafePointStore;
use armv8_guardbands::guardband_core::safepoint::{BoardSafePoint, SafePointPolicy};
use armv8_guardbands::lifetime::{run_deployment, DeploymentSpec, LifetimeConfig};
use armv8_guardbands::power_model::units::{Celsius, Milliseconds, Millivolts};
use armv8_guardbands::xgene_sim::aging::{AgingModel, StressProfile};
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use armv8_guardbands::xgene_sim::topology::CoreId;
use proptest::prelude::*;

/// The tentpole invariant, end to end: a 12-board fleet aged through
/// four years of maintenance produces a byte-identical chronicle on 1
/// worker and on 8, never spends a board-month below its aged Vmin, and
/// pays for re-characterization at warm-start prices — while the
/// no-maintenance ablation of the very same fleet accumulates SDC
/// exposure.
#[test]
fn four_year_deployment_is_identical_safe_and_warm_started() {
    let spec = DeploymentSpec::quick(12, 2018, 48);
    let serial = run_deployment(&spec, &LifetimeConfig::with_workers(1));
    let pooled = run_deployment(&spec, &LifetimeConfig::with_workers(8));
    assert_eq!(
        serial.chronicle_json(),
        pooled.chronicle_json(),
        "8-worker lifetime diverged from the serial run"
    );

    let c = &serial.chronicle;
    assert_eq!(c.production_sdc_board_months, 0, "maintenance failed");
    assert!(
        c.recharacterizations > 0,
        "48 months must force maintenance"
    );
    assert!(
        c.epochs.epoch_count() > 1,
        "re-characterization makes epochs"
    );
    // Satellite: warm-started re-walks cost at most half the cold walks.
    assert!(
        c.warm_walked_steps * 2 <= c.cold_equivalent_steps,
        "warm {} vs cold-equivalent {}",
        c.warm_walked_steps,
        c.cold_equivalent_steps
    );
    // Savings survive every epoch (smaller than at deployment — aging
    // reclaims some guardband — but still real).
    assert!(c.final_savings_watts() > 0.0);
    assert!(c.initial_savings_watts() >= c.final_savings_watts());
    // Aging only ever raises a board's deployed voltage: margin decay
    // is non-negative wherever two epochs exist.
    for board in 0..c.boards {
        if let Some(decay) = c.epochs.margin_decay_mv(board) {
            assert!(decay >= 0, "board {board} margin decay {decay}");
        }
    }

    let ablation = run_deployment(
        &spec.clone().without_maintenance(),
        &LifetimeConfig::with_workers(8),
    );
    assert!(
        ablation.chronicle.production_sdc_board_months > 0,
        "the ablation must accumulate SDC exposure"
    );
    assert_eq!(ablation.chronicle.recharacterizations, 0);
}

/// Satellite: the chronicle's merged telemetry carries the lifetime
/// loop's own counters alongside the campaign counters from every job.
#[test]
fn chronicle_telemetry_spans_scheduler_and_campaigns() {
    let spec = DeploymentSpec::quick(6, 2018, 10);
    let report = run_deployment(&spec, &LifetimeConfig::with_workers(2));
    let counters = &report.chronicle.campaign_counters;
    let value = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(
        value("lifetime_recharacterizations_total") > 0,
        "counters seen: {counters:?}"
    );
    assert_eq!(
        value("lifetime_recharacterizations_total"),
        value("maintenance_scheduled_total"),
        "every scheduled board must be re-characterized"
    );
    // The warm-start path instrumented its narrowed walks.
    assert!(value("warmstart_points_total") > 0);
    // And the per-trigger counters partition the scheduled total.
    assert_eq!(
        value("maintenance_scheduled_total"),
        value("maintenance_trigger_margin_total")
            + value("maintenance_trigger_ce_total")
            + value("maintenance_trigger_age_total"),
    );
}

fn arb_stress() -> impl Strategy<Value = StressProfile> {
    (850u32..1000, 25.0f64..95.0, 0.0f64..1.0).prop_map(|(mv, temp, activity)| StressProfile {
        voltage: Millivolts::new(mv),
        temperature: Celsius::new(temp),
        activity,
    })
}

proptest! {
    /// Vmin drift never decreases with time, and is a pure function of
    /// the sampling seed.
    #[test]
    fn aging_drift_is_monotone_in_time_and_deterministic(
        seed in any::<u64>(),
        stress in arb_stress(),
        a in 0u32..120,
        b in 0u32..120,
    ) {
        let model = AgingModel::sampled(seed);
        let again = AgingModel::sampled(seed);
        let (early, late) = (a.min(b), a.max(b));
        for core in CoreId::all() {
            let shift_early = model.vmin_shift_mv(core, &stress, early);
            let shift_late = model.vmin_shift_mv(core, &stress, late);
            prop_assert!(shift_early >= 0.0);
            prop_assert!(shift_late >= shift_early - 1e-12);
            prop_assert_eq!(
                shift_late,
                again.vmin_shift_mv(core, &stress, late),
                "same seed must give the same drift"
            );
        }
    }

    /// More stress never means less drift: raising temperature,
    /// voltage or activity (each alone) can only accelerate aging.
    #[test]
    fn aging_drift_is_monotone_in_stress(
        seed in any::<u64>(),
        stress in arb_stress(),
        months in 1u32..120,
        dv in 0u32..80,
        dt in 0.0f64..30.0,
        da in 0.0f64..0.5,
    ) {
        let model = AgingModel::sampled(seed);
        let core = model.most_susceptible_core();
        let base = model.vmin_shift_mv(core, &stress, months);
        let hotter = StressProfile {
            temperature: Celsius::new(stress.temperature.as_f64() + dt),
            ..stress
        };
        prop_assert!(model.vmin_shift_mv(core, &hotter, months) >= base - 1e-12);
        let higher = StressProfile {
            voltage: Millivolts::new(stress.voltage.as_u32() + dv),
            ..stress
        };
        prop_assert!(model.vmin_shift_mv(core, &higher, months) >= base - 1e-12);
        let busier = StressProfile {
            activity: (stress.activity + da).min(1.0),
            ..stress
        };
        prop_assert!(model.vmin_shift_mv(core, &busier, months) >= base - 1e-12);
    }
}

fn arb_epoch_record() -> impl Strategy<Value = (u32, BoardSafePoint)> {
    (
        0u32..4,
        0u32..6,
        prop_oneof![
            Just(SigmaBin::Ttt),
            Just(SigmaBin::Tff),
            Just(SigmaBin::Tss)
        ],
        700u32..980,
        any::<bool>(),
    )
        .prop_map(|(epoch, board, bin, rail, characterized)| {
            let operating_point = characterized.then(|| {
                SafePointPolicy::dsn18()
                    .derive_from_measured(Millivolts::new(rail), Milliseconds::new(128.0))
            });
            let record = BoardSafePoint {
                board,
                attempt: epoch,
                bin,
                core_vmin_mv: vec![Some(rail.saturating_sub(6)), None],
                rail_vmin_mv: Some(rail),
                operating_point,
                bank_safe_trefp_ms: vec![64.0 + f64::from(rail % 7); 8],
                savings_fraction: f64::from(rail % 10) / 50.0,
                savings_watts: f64::from(rail % 10) / 3.0,
            };
            (epoch, record)
        })
}

fn versioned_of(records: &[(u32, BoardSafePoint)]) -> VersionedSafePointStore {
    let mut store = VersionedSafePointStore::new();
    for (epoch, record) in records {
        store.insert(*epoch, record.clone());
    }
    store
}

fn canonical(store: &VersionedSafePointStore) -> String {
    serde::json::to_string(store)
}

proptest! {
    /// The pointwise merge of per-epoch semilattices is a semilattice:
    /// associative, commutative, idempotent — so epoch-sharded workers
    /// can fold their stores in any order.
    #[test]
    fn versioned_store_merge_is_a_semilattice(
        a in prop::collection::vec(arb_epoch_record(), 0..10),
        b in prop::collection::vec(arb_epoch_record(), 0..10),
        c in prop::collection::vec(arb_epoch_record(), 0..10),
    ) {
        let (sa, sb, sc) = (versioned_of(&a), versioned_of(&b), versioned_of(&c));
        // Associative.
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(canonical(&left), canonical(&right));
        // Commutative.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(canonical(&ab), canonical(&ba));
        // Idempotent.
        let mut twice = ab.clone();
        twice.merge(&sb);
        prop_assert_eq!(canonical(&twice), canonical(&ab));
    }

    /// Insertion order never matters, and the flattened deployment view
    /// equals the flat store built from the same records (with
    /// `attempt = epoch`, flat precedence and epoch order agree).
    #[test]
    fn versioned_store_is_insertion_order_free(
        records in prop::collection::vec(arb_epoch_record(), 0..14),
        rotate in 0usize..14,
    ) {
        let store = versioned_of(&records);
        let mut rotated = records.clone();
        rotated.rotate_left(rotate.min(records.len()));
        prop_assert_eq!(canonical(&versioned_of(&rotated)), canonical(&store));

        let latest = store.latest();
        for (_, record) in &records {
            let kept = latest.get(record.board).expect("board inserted");
            let highest = records
                .iter()
                .filter(|(_, r)| r.board == record.board)
                .map(|(e, _)| *e)
                .max()
                .expect("non-empty");
            prop_assert_eq!(kept.attempt, highest);
        }
    }
}
