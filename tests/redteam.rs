//! End-to-end adversarial scenario: the co-evolved dI/dt virus tenant
//! versus both arms of the safety net.
//!
//! The committed scenario (6 boards, seed 2018, the `dsn18` campaign) is
//! the one `BENCH_redteam.json` records: the champion slips at least one
//! silent data corruption past the pre-hardening seed net, while the
//! hardened net holds at zero escapes and detects the attack within one
//! relaxed sentinel period on every board. Property tests pin the
//! campaign's two structural invariants: the chronicle is byte-identical
//! for any worker-pool size, and the champion's fitness is monotone in
//! the attacker's generation budget.

use armv8_guardbands::redteam::{replay_fleet, run_campaign, AttackScenario, CampaignConfig};
use armv8_guardbands::workload_sim::tenant::benign_neighbor;
use proptest::prelude::*;

#[test]
fn hardened_net_holds_where_the_seed_net_leaks() {
    // The committed scenario — the same one the benchmark records.
    let mut config = CampaignConfig::dsn18(6, 2018);
    config.workers = 4;
    let report = run_campaign(&config);
    let champion = report.champion_profile();
    assert!(
        champion.resonant_energy() > 0.5,
        "the GA must evolve a resonant virus, got {champion:?}"
    );

    // Pre-hardening ablation: the seed net leaks.
    let seed_replay = replay_fleet(&config.fleet, Some(&champion), &config.scenario, 4);
    let seed_escapes: u64 = seed_replay.iter().map(|r| r.escaped_sdcs).sum();
    assert!(
        seed_escapes >= 1,
        "the champion must slip at least one SDC past the seed net"
    );
    assert!(
        seed_replay.iter().all(|r| !r.attacker_quarantined),
        "the seed net has no quarantine to offer"
    );

    // Hardened arm: zero escapes, detection within one sentinel period,
    // and the response is attacker quarantine — never a board trip for
    // the droop.
    let hardened = AttackScenario::hardened(config.scenario.epochs);
    let sentinel_period = u64::from(hardened.safety.sentinel_every_epochs);
    let hardened_replay = replay_fleet(&config.fleet, Some(&champion), &hardened, 4);
    let hardened_escapes: u64 = hardened_replay.iter().map(|r| r.escaped_sdcs).sum();
    assert_eq!(hardened_escapes, 0, "the hardened net must hold");
    for r in &hardened_replay {
        assert!(r.attacker_quarantined, "board {} never evicted", r.board);
        let latency = r
            .detection_epoch
            .unwrap_or_else(|| panic!("board {} never detected the attack", r.board));
        assert!(
            latency <= sentinel_period,
            "board {} detected at epoch {latency}, past the {sentinel_period}-epoch period",
            r.board
        );
        assert!(
            r.cadence_tightenings >= 1,
            "board {} never tightened its sentinel cadence",
            r.board
        );
    }

    // Control arm: a benign (off-resonance) neighbour must NOT be
    // quarantined by the hardened net — the attribution keys on coupled
    // droop, not on mere co-location.
    let benign_replay = replay_fleet(&config.fleet, Some(&benign_neighbor()), &hardened, 4);
    assert!(
        benign_replay.iter().all(|r| !r.attacker_quarantined),
        "a benign neighbour was falsely quarantined"
    );
}

proptest! {
    /// The campaign chronicle is byte-identical across 1/2/4/8 fleet
    /// workers: worker scheduling never leaks into the co-evolution.
    #[test]
    fn chronicle_is_byte_identical_across_worker_pools(
        seed in any::<u64>(),
        boards in 2u32..4,
    ) {
        let mut config = CampaignConfig::dsn18(boards, seed);
        config.ga.population = 4;
        config.ga.generations = 2;
        config.scenario.epochs = 12;
        let mut baseline: Option<String> = None;
        for workers in [1usize, 2, 4, 8] {
            config.workers = workers;
            let json = run_campaign(&config).chronicle_json();
            match &baseline {
                None => baseline = Some(json),
                Some(first) => prop_assert_eq!(first, &json, "workers={}", workers),
            }
        }
    }

    /// More generations never hurt the attacker: the champion's fitness
    /// is monotone in the evolution budget (the GA extends the same
    /// deterministic stream, and the champion is a running maximum).
    #[test]
    fn champion_fitness_is_monotone_in_the_attacker_budget(
        seed in any::<u64>(),
        boards in 2u32..4,
        short in 1usize..4,
        extra in 1usize..3,
    ) {
        let mut small = CampaignConfig::dsn18(boards, seed);
        small.ga.population = 4;
        small.scenario.epochs = 12;
        let mut large = small.clone();
        small.ga.generations = short;
        large.ga.generations = short + extra;
        let small_fitness = run_campaign(&small).champion_fitness;
        let large_fitness = run_campaign(&large).champion_fitness;
        prop_assert!(
            large_fitness >= small_fitness,
            "budget {} scored {}, budget {} scored {}",
            short, small_fitness, short + extra, large_fitness
        );
    }
}
