//! Integration tests for the subsystems beyond the headline figures:
//! Fmax campaigns, multi-process rail scaling, the MCU timing model, the
//! patrol scrubber and the execution-measured droop path.

use armv8_guardbands::char_fw::frequency::{run_fmax_campaign, FmaxCampaign};
use armv8_guardbands::char_fw::multiprocess::{run_multiprocess_campaign, MultiProcessCampaign};
use armv8_guardbands::dram_sim::scrubber::{PatrolScrubber, ScrubberConfig};
use armv8_guardbands::dram_sim::timing::refresh_overhead_for;
use armv8_guardbands::guardband_core::droop_history::{DroopHistory, FailurePredictor};
use armv8_guardbands::power_model::units::{Celsius, Megahertz, Milliseconds, Millivolts};
use armv8_guardbands::stress_gen::exec::execute_genome;
use armv8_guardbands::stress_gen::ga::{evolve, GaConfig};
use armv8_guardbands::workload_sim::spec::{by_name, fig5_mix};
use armv8_guardbands::xgene_sim::em::EmProbe;
use armv8_guardbands::xgene_sim::hierarchy::CacheHierarchy;
use armv8_guardbands::xgene_sim::pdn::PdnModel;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use armv8_guardbands::xgene_sim::topology::CoreId;

/// The two guardbands compose: a chip undervolted to a benchmark's Vmin
/// has no frequency headroom left, while at nominal voltage the same
/// benchmark overclocks — Vmin and Fmax are two cuts through one surface.
#[test]
fn voltage_and_frequency_guardbands_are_one_surface() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 111);
    let core = server.chip().most_robust_core();
    let bench = by_name("leslie3d").unwrap().profile();
    let at_nominal = {
        let campaign = FmaxCampaign::dsn18(vec![bench.clone()], vec![core]);
        run_fmax_campaign(&mut server, &campaign)[0].fmax.unwrap()
    };
    let mut undervolted_campaign = FmaxCampaign::dsn18(vec![bench], vec![core]);
    undervolted_campaign.voltage = Millivolts::new(890);
    let at_890 = run_fmax_campaign(&mut server, &undervolted_campaign)[0]
        .fmax
        .unwrap_or(Megahertz::new(200));
    assert!(at_nominal.as_u32() >= 2550, "nominal Fmax {at_nominal}");
    assert!(
        at_890 < at_nominal,
        "890 mV Fmax {at_890} vs nominal {at_nominal}"
    );
}

/// The multi-process campaign's 8-instance rail Vmin exceeds every
/// member's single-instance Vmin and lands on the Fig. 5 first rung.
#[test]
fn multiprocess_rail_exceeds_singles() {
    let mix: Vec<_> = fig5_mix().iter().map(|b| b.profile()).collect();
    let mut ordered = mix.clone();
    ordered.sort_by(|a, b| b.droop_score().total_cmp(&a.droop_score()));
    let mut server = XGene2Server::new(SigmaBin::Ttt, 112);
    let rail = run_multiprocess_campaign(&mut server, &MultiProcessCampaign::dsn18(ordered))
        .rail_vmin
        .unwrap();
    let chip = server.chip().clone();
    for (i, w) in mix.iter().enumerate() {
        let solo = chip.vmin(CoreId::new(i as u8), w, Megahertz::XGENE2_NOMINAL);
        assert!(rail >= solo, "rail {rail} vs {} solo {solo}", w.name());
    }
    assert!((905..=925).contains(&rail.as_u32()), "rail {rail}");
}

/// Refresh relaxation buys performance too: the MCU's refresh stall per
/// access collapses with the 35× TREFP (the timing-side companion to the
/// Fig. 8b power result).
#[test]
fn refresh_relaxation_also_buys_performance() {
    let nominal = refresh_overhead_for(Milliseconds::DDR3_NOMINAL_TREFP, 30_000, 400, 7);
    let relaxed = refresh_overhead_for(Milliseconds::DSN18_RELAXED_TREFP, 30_000, 400, 7);
    assert!(nominal.stall_per_access() > 1.0);
    assert!(relaxed.stall_per_access() < 0.2);
    // Row-buffer behaviour itself is unchanged — only the stalls go away.
    assert_eq!(
        nominal.row_hits + nominal.row_misses + nominal.row_conflicts,
        30_000
    );
}

/// Scrubbing composes with the relaxed refresh on a live server: after a
/// patrol pass the error log stops growing for untouched data.
#[test]
fn scrubber_quiesces_a_relaxed_server() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 113);
    server.set_dram_temperature(Celsius::new(60.0));
    server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).unwrap();
    server
        .dram_mut()
        .fill_pattern(armv8_guardbands::dram_sim::patterns::DataPattern::Random { seed: 5 });
    server
        .dram_mut()
        .advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);

    let mut scrubber = PatrolScrubber::new(
        server.dram(),
        ScrubberConfig {
            patrol_period_ms: 500.0,
            burst_words: 8192,
        },
    );
    scrubber.run_for(server.dram_mut(), 500.0);
    let corrections = scrubber.stats().corrections;
    assert!(corrections > 1_000);

    // Immediately after the pass, a full scrub of the (rewritten) words
    // finds almost nothing to fix.
    let report = server.dram_mut().scrub();
    assert!(
        report.flipped_bits < corrections / 5,
        "{} residual flips after scrubbing {} corrections",
        report.flipped_bits,
        corrections
    );
}

/// The full measured-droop loop: evolve a virus, execute it on the
/// pipeline, feed the PDN-measured droops into the history, and get a
/// failure predictor whose voltage recommendation clears the intrinsic
/// Vmin by the observed droop.
#[test]
fn executed_droops_feed_the_failure_predictor() {
    let pdn = PdnModel::xgene2();
    let mut probe = EmProbe::new(pdn, 114);
    let config = GaConfig {
        population: 20,
        generations: 20,
        ..GaConfig::dsn18()
    };
    let champion = evolve(&config, &mut probe).champion;

    let mut hierarchy = CacheHierarchy::xgene2();
    let mut history = DroopHistory::new(64);
    for _ in 0..32 {
        let report = execute_genome(&champion, &mut hierarchy, CoreId::new(0), 8);
        let period = report.current_trace.len() as f64 / 2.4e9;
        history.record_trace(&pdn, &report.current_trace, period);
    }
    assert_eq!(history.len(), 32);
    assert!(
        history.mean() > 1.0,
        "measured droops {} mV",
        history.mean()
    );

    let intrinsic = Millivolts::new(850);
    let predictor = FailurePredictor::new(intrinsic, history);
    let safe = predictor.voltage_for(1e-5);
    assert!(safe > intrinsic);
    assert!(predictor.failure_probability(safe) <= 1.1e-5);
}
