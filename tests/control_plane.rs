//! End-to-end control plane over real TCP: boot an empty serving
//! layer, submit a campaign through `POST /v1/campaigns`, poll it to
//! completion, and check that the published epoch, fleet status and
//! Prometheus exposition all agree with a direct `run_fleet` of the
//! same spec — then that graceful shutdown refuses new connections
//! while a killed-and-rebooted runner resumes its journal.

use armv8_guardbands::control_plane::{
    serve, CampaignRecord, CampaignRunner, CampaignSpec, CampaignState, ControlState, Router,
    SafePointView, ServerConfig, ServerMetrics, StatusSnapshot,
};
use armv8_guardbands::fleet::population::FleetSpec;
use armv8_guardbands::fleet::{run_fleet, FleetCampaign, FleetConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BOARDS: u32 = 8;
const SEED: u64 = 2018;

fn boot() -> armv8_guardbands::control_plane::ServerHandle {
    let state = Arc::new(ControlState::new());
    let runner = CampaignRunner::in_memory(state.clone());
    let router = Arc::new(Router::new(state, runner, Arc::new(ServerMetrics::new())));
    serve(router, ServerConfig::default()).expect("bind ephemeral port")
}

/// One `connection: close` round trip; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

fn await_completion(addr: SocketAddr, id: u64) -> CampaignRecord {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/campaigns/{id}"), "");
        assert_eq!(status, 200, "campaign {id} should exist");
        let record: CampaignRecord = serde::json::from_str(&body).expect("campaign record");
        if record.state == CampaignState::Completed {
            return record;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} stuck in {}",
            record.state
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A campaign submitted over the wire publishes exactly the safe
/// points and health summary a direct `run_fleet` of the same spec
/// computes, and every board of the fleet is served.
#[test]
fn a_wire_submitted_campaign_serves_the_run_fleet_results() {
    let server = boot();
    let addr = server.addr();

    // Empty database: lookups 404, status shows zero boards.
    let (status, _) = request(addr, "GET", "/v1/safe-point/0", "");
    assert_eq!(status, 404);

    let spec = CampaignSpec::new(BOARDS, SEED);
    let (status, body) = request(
        addr,
        "POST",
        "/v1/campaigns",
        &serde::json::to_string(&spec),
    );
    assert_eq!(status, 202);
    assert!(body.contains("\"id\":0"), "first id is 0, got {body}");
    let record = await_completion(addr, 0);

    // The reference run: same spec, direct library call.
    let reference = run_fleet(
        &FleetSpec::new(BOARDS, SEED),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(2),
    );
    assert_eq!(
        record.executed_jobs,
        reference.characterization.jobs.len() as u64,
        "exactly-once accounting matches the deterministic job set"
    );
    assert_eq!(
        record.boards_characterized,
        reference.characterization.stats.characterized
    );

    // Every board serves the reference store's deployable point.
    for board in 0..BOARDS {
        let (status, body) = request(addr, "GET", &format!("/v1/safe-point/{board}"), "");
        assert_eq!(status, 200, "board {board} served");
        let view: SafePointView = serde::json::from_str(&body).expect("safe-point view");
        let expected = reference
            .characterization
            .store
            .get(board)
            .expect("reference store has the board");
        assert_eq!(view.rail_vmin_mv, expected.rail_vmin_mv, "board {board}");
        assert_eq!(view.savings_watts, expected.savings_watts, "board {board}");
        assert_eq!(view.epoch, record.epoch);
    }

    // Bad inputs get typed errors, not hangs.
    let (status, _) = request(addr, "GET", "/v1/safe-point/not-a-board", "");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST", "/v1/campaigns", "{\"boards\":0,\"seed\":1}");
    assert_eq!(status, 400, "zero-board campaigns are rejected");

    // Status and metrics reflect the run.
    let (_, body) = request(addr, "GET", "/v1/status", "");
    let health: StatusSnapshot = serde::json::from_str(&body).expect("status snapshot");
    assert_eq!(health.boards_served, BOARDS as usize);
    assert_eq!(health.latest_epoch, Some(record.epoch));
    let (status, exposition) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(exposition.contains("control_plane_requests_total"));
    assert!(exposition.contains("control_plane_latest_epoch"));
    assert!(
        exposition.contains("campaign_runs_total"),
        "campaign-derived counters are merged into the exposition"
    );

    // Graceful shutdown refuses new connections.
    server.shutdown();
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "post-shutdown connections are refused");
}

/// A campaign whose coordinator is killed mid-run reports
/// `interrupted`; a rebooted runner over the same journal directory
/// resumes it and ends with exactly-once job accounting.
#[test]
fn an_interrupted_wire_campaign_resumes_after_reboot() {
    let dir = std::env::temp_dir().join(format!(
        "cp-e2e-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));

    // First life: the chaos knob kills the coordinator after 3 jobs.
    let state = Arc::new(ControlState::new());
    let runner = CampaignRunner::open(state.clone(), &dir);
    let router = Arc::new(Router::new(state, runner, Arc::new(ServerMetrics::new())));
    let server = serve(router, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut spec = CampaignSpec::new(BOARDS, SEED);
    spec.interrupt_after = Some(3);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/campaigns",
        &serde::json::to_string(&spec),
    );
    assert_eq!(status, 202);

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = request(addr, "GET", "/v1/campaigns/0", "");
        let record: CampaignRecord = serde::json::from_str(&body).expect("record");
        if record.state == CampaignState::Interrupted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "kill never landed: {}",
            record.state
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();

    // Second life: boot recovery re-enqueues the interrupted campaign.
    let state = Arc::new(ControlState::new());
    let runner = CampaignRunner::open(state.clone(), &dir);
    let router = Arc::new(Router::new(state, runner, Arc::new(ServerMetrics::new())));
    let server = serve(router, ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let record = await_completion(addr, 0);
    assert_eq!(record.incarnations, 2, "one kill, one resume");
    let reference = run_fleet(
        &FleetSpec::new(BOARDS, SEED),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(2),
    );
    assert_eq!(
        record.executed_jobs,
        reference.characterization.jobs.len() as u64,
        "journal replay keeps the accounting exactly-once"
    );
    let (status, _) = request(addr, "GET", "/v1/safe-point/0", "");
    assert_eq!(status, 200, "resumed campaign's epoch is served");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
