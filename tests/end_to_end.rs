//! End-to-end integration: the full characterize → exploit pipeline across
//! every crate, mirroring the paper's §III–§IV flow.

use armv8_guardbands::char_fw::dramchar::{run_dram_campaign, DramCampaignConfig};
use armv8_guardbands::char_fw::runner::CampaignRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::guardband_core::refresh_relax::{choose_relaxation, RelaxationPolicy};
use armv8_guardbands::guardband_core::safepoint::SafePointPolicy;
use armv8_guardbands::power_model::server::ServerLoad;
use armv8_guardbands::power_model::units::{Celsius, Millivolts};
use armv8_guardbands::thermal_sim::testbed::ThermalTestbed;
use armv8_guardbands::workload_sim::jammer;
use armv8_guardbands::workload_sim::spec::SPEC_SUITE;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use armv8_guardbands::xgene_sim::topology::CoreId;

/// The complete study on one server: CPU characterization, DRAM
/// characterization on the thermal testbed, safe-point derivation, and
/// exploitation with verified savings — the paper's whole arc.
#[test]
fn full_study_pipeline_reproduces_the_paper_arc() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 1001);

    // Phase 1: CPU undervolting characterization (subset for speed).
    let suite: Vec<_> = ["mcf", "leslie3d", "milc"]
        .iter()
        .map(|n| SPEC_SUITE.iter().find(|b| b.name == *n).unwrap().profile())
        .collect();
    let core = server.chip().most_robust_core();
    let campaign = VminCampaign::dsn18(suite, vec![core]);
    let cpu = CampaignRunner::new(&mut server).run(&campaign);
    let worst_vmin = cpu.vmins.iter().filter_map(|v| v.vmin).max().unwrap();
    assert!(
        worst_vmin < Millivolts::XGENE2_NOMINAL,
        "a guardband exists"
    );

    // Phase 2: DRAM characterization on the thermal testbed at 60 °C.
    let mut testbed = ThermalTestbed::new(Celsius::new(25.0), 1001);
    let dram = run_dram_campaign(&mut server, &mut testbed, &DramCampaignConfig::dsn18_60c());
    assert!(dram.regulation_deviation < 1.0);
    assert_eq!(dram.ue_total, 0, "SECDED must absorb everything at 60 °C");
    assert!(
        dram.ce_total > 1_000,
        "relaxed refresh manifests correctable errors"
    );

    // Phase 3: pick the exploitation point.
    let relax = choose_relaxation(
        server.dram().population().model(),
        Celsius::new(60.0),
        &RelaxationPolicy::dsn18(),
    );
    assert!(relax.factor > 30.0, "the 35x relaxation is safe at 60 °C");
    let cores: Vec<CoreId> = CoreId::all().collect();
    let workloads = vec![jammer::profile(); 8];
    let point = SafePointPolicy::dsn18().derive(server.chip(), &workloads, &cores);

    // Phase 4: exploit and verify. Restore the manufacturer point first —
    // the campaigns left the board at their last characterization setup.
    server.set_pmd_voltage(Millivolts::XGENE2_NOMINAL).unwrap();
    server.set_soc_voltage(Millivolts::XGENE2_NOMINAL).unwrap();
    server
        .set_trefp(armv8_guardbands::power_model::units::Milliseconds::DDR3_NOMINAL_TREFP)
        .unwrap();
    let load = ServerLoad::jammer_detector();
    let nominal = server.read_total_power(&load);
    server.set_pmd_voltage(point.pmd_voltage).unwrap();
    server.set_soc_voltage(point.soc_voltage).unwrap();
    server.set_trefp(point.trefp).unwrap();
    let safe = server.read_total_power(&load);
    let savings = nominal.savings_to(safe);
    assert!((savings - 0.202).abs() < 0.015, "total savings {savings}");

    let profile = jammer::profile();
    let assignments: Vec<_> = cores.iter().map(|c| (*c, &profile)).collect();
    // Characterization may legitimately crash the board (that is what the
    // watchdog is for); what must hold is that *exploitation* at the safe
    // point causes no new disruption.
    let resets_before_exploitation = server.reset_count();
    let outcomes = server.run_many(&assignments);
    assert!(
        outcomes.iter().all(|r| r.outcome.is_usable()),
        "{outcomes:?}"
    );
    assert_eq!(
        server.reset_count(),
        resets_before_exploitation,
        "no disruption at the safe point"
    );
}

/// The slow (TSS) corner must be left at nominal under the virus — its
/// margin is gone (Fig. 7's conclusion).
#[test]
fn tss_corner_is_not_virus_safe_below_nominal() {
    use armv8_guardbands::xgene_sim::workload::WorkloadProfile;
    let virus = WorkloadProfile::builder("em-virus")
        .activity(0.5)
        .swing(1.0)
        .resonance_alignment(1.0)
        .build();
    let mut server = XGene2Server::new(SigmaBin::Tss, 1002);
    // 20 mV below nominal is already unsafe under the virus on TSS.
    server.set_pmd_voltage(Millivolts::new(960)).unwrap();
    let core = server.chip().most_robust_core();
    let mut failures = 0;
    for _ in 0..20 {
        server.set_pmd_voltage(Millivolts::new(960)).unwrap();
        if !server.run_on_core(core, &virus).outcome.is_usable() {
            failures += 1;
        }
    }
    assert!(failures > 0, "TSS must fail under the virus below nominal");
}

/// Undervolting one chip does not change another's characterization: the
/// corners carry their own calibrated personalities.
#[test]
fn corners_have_distinct_guardbands() {
    let profile = SPEC_SUITE
        .iter()
        .find(|b| b.name == "milc")
        .unwrap()
        .profile();
    let mut vmins = Vec::new();
    for bin in SigmaBin::ALL {
        let mut server = XGene2Server::new(bin, 1003);
        let core = server.chip().most_robust_core();
        let campaign = VminCampaign::dsn18(vec![profile.clone()], vec![core]);
        let result = CampaignRunner::new(&mut server).run(&campaign);
        vmins.push((bin, result.vmin("milc", core).unwrap()));
    }
    let ttt = vmins.iter().find(|(b, _)| *b == SigmaBin::Ttt).unwrap().1;
    let tss = vmins.iter().find(|(b, _)| *b == SigmaBin::Tss).unwrap().1;
    assert!(tss > ttt, "the slow corner needs more voltage for milc");
}
