//! Seeded end-to-end dispatch: characterize a real fleet once, then
//! route the full diurnal + flash-crowd trace across it — economic
//! dispatcher vs nominal-only ablation — and check the headline
//! contract: strictly lower watts-per-QPS, zero additional QoS
//! violations, clean re-routing around an injected breaker trip and a
//! maintenance window, and a chronicle byte-identical across
//! 1/2/4/8 workers.

use armv8_guardbands::dispatch::{run_dispatch_with_store, DispatchSpec};
use armv8_guardbands::fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec, SafePointStore};
use armv8_guardbands::observatory::IncidentKind;

const BOARDS: u32 = 8;
const SEED: u64 = 2018;

fn characterized_store() -> SafePointStore {
    run_fleet(
        &FleetSpec::new(BOARDS, SEED),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(4),
    )
    .characterization
    .store
}

fn spec() -> DispatchSpec {
    let mut spec = DispatchSpec::quick(BOARDS, SEED);
    // Erosion of any margin schedules re-characterization, one board
    // per boundary — guarantees the maintenance path is exercised.
    spec.maintenance.margin_threshold_mv = 100;
    spec
}

#[test]
fn dispatcher_beats_nominal_without_costing_qos() {
    let store = characterized_store();
    let base = spec();
    let economic = run_dispatch_with_store(&base, 4, &store);
    let nominal = run_dispatch_with_store(&base.nominal_arm(), 4, &store);

    // Both arms dispatch the identical trace.
    assert_eq!(economic.chronicle.requests, nominal.chronicle.requests);
    assert_eq!(
        economic.chronicle.trace_fingerprint,
        nominal.chronicle.trace_fingerprint
    );
    assert!(
        economic.chronicle.served > 10_000,
        "a real stream was routed"
    );

    // The headline: cheaper per unit of served load…
    assert!(
        economic.chronicle.watts_per_qps < nominal.chronicle.watts_per_qps,
        "economic {} vs nominal {} W/QPS",
        economic.chronicle.watts_per_qps,
        nominal.chronicle.watts_per_qps
    );
    // …with zero additional QoS violations or drops.
    assert!(economic.chronicle.qos_violations <= nominal.chronicle.qos_violations);
    assert_eq!(economic.chronicle.rejected, 0);
    assert_eq!(nominal.chronicle.rejected, 0);

    // Exploited boards carry more traffic than nominal-fallback ones
    // on average — the economics actually steer placement.
    let econ_rows = &economic.chronicle.board_rows;
    let exploited_served: u64 = econ_rows
        .iter()
        .filter(|r| r.final_mode == "exploited")
        .map(|r| r.served)
        .sum();
    assert!(exploited_served > economic.chronicle.served / 2);
}

#[test]
fn faults_reroute_without_dropping_requests() {
    let store = characterized_store();
    let mut faulted = spec();
    // A breaker trip late in the run — after the last maintenance
    // window could have re-validated the board, so the nominal
    // backoff is what the run ends in.
    faulted.breaker_trips = vec![(55_000_000, 0)];
    let report = run_dispatch_with_store(&faulted, 4, &store);

    // The trip backed board 0 off to nominal-cost routing…
    let row0 = &report.chronicle.board_rows[0];
    assert!(row0.tripped);
    assert_eq!(row0.final_mode, "nominal");
    assert_eq!(report.chronicle.breaker_backoffs, 1);

    // …the maintenance planner drained at least one board around a
    // re-characterization window…
    assert!(report.chronicle.drains > 0, "a drain must have run");
    assert!(report.chronicle.maintenance_windows > 0);
    assert!(report.chronicle.reroutes > 0, "traffic was steered around");

    // …and nothing was dropped or delayed past the deadline.
    assert_eq!(report.chronicle.rejected, 0);
    assert_eq!(report.chronicle.qos_violations, 0);
    assert_eq!(
        report.chronicle.served, report.chronicle.requests,
        "every request was served"
    );

    // The observatory reconstructs the drains as resolved incidents.
    let drains: Vec<_> = report
        .observatory
        .incidents_of(IncidentKind::TrafficDrain)
        .collect();
    assert!(!drains.is_empty(), "drains surface as incidents");

    // A maintained board took no traffic during its window: its p99
    // stayed bounded (the drain emptied the queue before the window).
    for row in &report.chronicle.board_rows {
        assert!(
            row.latency.max_us <= report.chronicle.queue_cap_us,
            "board {} latency {} exceeds the admission bound",
            row.board,
            row.latency.max_us
        );
    }
}

#[test]
fn chronicle_is_byte_identical_across_worker_pools() {
    let store = characterized_store();
    let base = spec();
    let reference = run_dispatch_with_store(&base, 1, &store);
    let chronicle = reference.chronicle_json();
    let observatory = reference.observatory_json();
    for workers in [2, 4, 8] {
        let report = run_dispatch_with_store(&base, workers, &store);
        assert_eq!(
            report.chronicle_json(),
            chronicle,
            "{workers}-worker chronicle diverged"
        );
        assert_eq!(
            report.observatory_json(),
            observatory,
            "{workers}-worker observatory diverged"
        );
    }
}

#[test]
fn margin_decay_flows_through_to_the_status_surface() {
    let store = characterized_store();
    let report = run_dispatch_with_store(&spec(), 2, &store);
    // Aging ran: at least one board shows a decay trend or was restored
    // to zero by a maintenance window.
    assert!(!report.chronicle.epoch_rows.is_empty());
    assert!(report
        .chronicle
        .epoch_rows
        .iter()
        .any(|row| !row.decayed.is_empty()));
    let status = report.status();
    assert!(status.enabled);
    assert_eq!(status.boards.len(), BOARDS as usize);
    assert_eq!(status.requests_routed, report.chronicle.served);
    // The per-board decay the control plane will serve is the same one
    // the chronicle recorded.
    for (row, board) in report.chronicle.board_rows.iter().zip(&status.boards) {
        assert_eq!(row.margin_decay_mv, board.margin_decay_mv);
    }
}
