//! Cross-crate telemetry integration: a faulty campaign observed through
//! capture sinks, the flight recorder, and the metrics registry, with
//! determinism checked across identical runs.

use std::rc::Rc;

use armv8_guardbands::char_fw::report::campaign_metrics;
use armv8_guardbands::char_fw::resilience::ResilienceConfig;
use armv8_guardbands::char_fw::runner::{CampaignResult, ResilientRunner};
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::telemetry::sink::CaptureSink;
use armv8_guardbands::telemetry::{Event, FlightRecorder, Registry, Telemetry};
use armv8_guardbands::workload_sim::spec::by_name;
use armv8_guardbands::xgene_sim::fault::FaultPlan;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

/// A hostile campaign on a slow-corner chip: coarse 150 mV steps put the
/// second setup deep in the crash zone (repeated crashes → quarantine)
/// while the fault plan makes power cycles fail (→ recovery retries).
fn faulty_campaign() -> (XGene2Server, VminCampaign) {
    let mut server = XGene2Server::new(SigmaBin::Tss, 56);
    let core = server.chip().weakest_core();
    server.install_fault_plan(
        FaultPlan::quiet(7)
            .with_power_cycle_failure_rate(0.4)
            .with_boot_loop_rate(0.1)
            .with_setup_loss_rate(0.02)
            .force_hang_at(0)
            .force_setup_loss_at(10),
    );
    let bench = by_name("milc").expect("milc exists").profile();
    let mut campaign = VminCampaign::dsn18(vec![bench], vec![core]);
    campaign.step_mv = 150;
    (server, campaign)
}

/// Runs the faulty campaign under a fresh telemetry context, returning
/// the captured events, the recorder, and the campaign result.
fn observed_run() -> (Vec<Event>, Rc<FlightRecorder>, Rc<Registry>, CampaignResult) {
    let capture = Rc::new(CaptureSink::new());
    let recorder = Rc::new(FlightRecorder::new());
    let registry = Rc::new(Registry::new());
    let (mut server, campaign) = faulty_campaign();
    let result = {
        let _guard = Telemetry::new()
            .with_shared_sink(capture.clone())
            .with_shared_sink(recorder.clone())
            .with_registry(registry.clone())
            .install();
        ResilientRunner::new(&mut server, campaign, ResilienceConfig::dsn18()).run_to_completion()
    };
    (capture.events(), recorder, registry, result)
}

#[test]
fn faulty_campaign_emits_the_expected_retry_and_quarantine_sequence() {
    let (events, _, _, result) = observed_run();
    assert_eq!(result.recovery.quarantined_points, 1);

    // The forced hang at reset 0 makes the very first recovery retry; the
    // crashing setup then accumulates crash retries until quarantine.
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    let pos = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("missing event `{name}`"))
    };

    // Span tree: the campaign span opens first and every setup/run span
    // nests inside it.
    assert_eq!(names[0], "campaign");
    assert!(pos("setup") < pos("run"), "setup precedes the first run");
    for e in &events {
        if e.name == "setup" || e.name == "run" {
            assert_eq!(e.span_path, vec!["campaign".to_string()]);
        }
    }

    // Failure story, in order: a recovery retry (hung power cycle), then
    // crash retries at the fatal setup, then its quarantine.
    let first_retry = pos("recovery_retry");
    let first_crash_retry = pos("crash_retry");
    let quarantine = pos("quarantine");
    assert!(first_retry < quarantine);
    assert!(first_crash_retry < quarantine);
    assert!(
        names.iter().filter(|n| **n == "crash_retry").count() >= 2,
        "the fatal setup retried before quarantine"
    );
    assert_eq!(
        names.iter().filter(|n| **n == "quarantine").count(),
        1,
        "exactly one quarantine"
    );
    // The forced lost V/F restore surfaced as a setup restore retry.
    assert!(names.contains(&"setup_restore_retry"));
    // And the campaign still completed: the completion event fires, then
    // the campaign span closes as the runner drops.
    assert!(quarantine < pos("campaign_complete"));
    assert_eq!(*names.last().unwrap(), "campaign", "span exit closes trace");
}

#[test]
fn flight_recorder_dumps_the_leadup_to_the_first_quarantine() {
    let (events, recorder, _, _) = observed_run();
    let dumps = recorder.dumps();
    assert!(
        !dumps.is_empty(),
        "quarantine at Error level triggers a dump"
    );
    let dump = &dumps[0];
    assert_eq!(dump.trigger_name, "quarantine");
    assert!(
        dump.events.len() >= 64,
        "expected >= 64 events of context, got {}",
        dump.events.len()
    );

    // The dump is exactly the tail of the full trace up to the trigger,
    // in strictly increasing seq order.
    assert_eq!(dump.events.last().unwrap().seq, dump.trigger_seq);
    assert!(dump.events.windows(2).all(|w| w[0].seq < w[1].seq));
    let trigger_idx = events
        .iter()
        .position(|e| e.seq == dump.trigger_seq)
        .expect("trigger is in the capture");
    let tail = &events[trigger_idx + 1 - dump.events.len()..=trigger_idx];
    assert_eq!(dump.events.as_slice(), tail, "dump matches the live trace");
}

#[test]
fn take_dumps_returns_trigger_order_and_each_dump_is_a_strict_suffix() {
    let (events, recorder, _, result) = observed_run();
    let dumps = recorder.take_dumps();
    assert!(!dumps.is_empty(), "the faulty campaign triggers dumps");
    assert!(
        dumps.len() >= result.recovery.quarantined_points as usize,
        "at least one dump per quarantine"
    );

    // Trigger order: strictly increasing trigger_seq across dumps.
    assert!(
        dumps
            .windows(2)
            .all(|w| w[0].trigger_seq < w[1].trigger_seq),
        "dumps come back in trigger order"
    );

    // Every dump (not just the first) is a strict suffix of the live
    // trace ending at its trigger: same events, same order, trigger
    // last.
    for dump in &dumps {
        assert_eq!(dump.events.last().unwrap().seq, dump.trigger_seq);
        assert_eq!(dump.events.last().unwrap().name, dump.trigger_name);
        let trigger_idx = events
            .iter()
            .position(|e| e.seq == dump.trigger_seq)
            .expect("trigger is in the capture");
        let tail = &events[trigger_idx + 1 - dump.events.len()..=trigger_idx];
        assert_eq!(dump.events.as_slice(), tail, "dump is a strict suffix");
    }

    // take_dumps drains: a second call observes nothing.
    assert!(recorder.take_dumps().is_empty());
}

#[test]
fn flight_dumps_round_trip_through_json() {
    let (_, recorder, _, _) = observed_run();
    let dumps = recorder.dumps();
    let first = &dumps[0];
    let json = serde::json::to_string(first);
    let back: armv8_guardbands::telemetry::FlightDump =
        serde::json::from_str(&json).expect("dump deserializes");
    assert_eq!(&back, first);
}

#[test]
fn observed_campaigns_are_deterministic_across_identical_runs() {
    let (events_a, rec_a, reg_a, result_a) = observed_run();
    let (events_b, rec_b, reg_b, result_b) = observed_run();
    assert_eq!(result_a, result_b, "campaign results are bit-identical");
    assert_eq!(events_a, events_b, "traces are event-for-event identical");
    assert_eq!(rec_a.dumps(), rec_b.dumps(), "flight dumps are identical");

    // Counters and gauges are fully deterministic. Wall-clock histograms
    // (step_wall_seconds) see real time, so only their observation counts
    // are stable — bucket placement legitimately varies run to run.
    let (snap_a, snap_b) = (reg_a.snapshot(), reg_b.snapshot());
    assert_eq!(snap_a.counters, snap_b.counters, "counters are identical");
    assert_eq!(snap_a.gauges, snap_b.gauges, "gauges are identical");
    let counts = |s: &armv8_guardbands::telemetry::MetricsSnapshot| -> Vec<(String, u64)> {
        s.histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.count))
            .collect()
    };
    assert_eq!(counts(&snap_a), counts(&snap_b), "histogram counts agree");
}

#[test]
fn live_counters_agree_with_the_result_and_the_derived_registry() {
    let (_, _, registry, result) = observed_run();
    assert_eq!(
        registry.counter("campaign_runs_total"),
        result.records.len() as u64
    );
    assert_eq!(
        registry.counter("campaign_quarantines_total"),
        result.recovery.quarantined_points
    );
    assert_eq!(
        registry.counter("recovery_retries_total"),
        result.recovery.reset_retries
    );
    assert_eq!(
        registry.counter("recovery_backoff_ms_total"),
        result.recovery.total_backoff_ms
    );
    assert_eq!(
        registry.counter("setup_restores_total"),
        result.recovery.setup_restores
    );

    // The post-hoc registry derives the same families from the result.
    let derived = campaign_metrics(&result);
    for name in [
        "campaign_runs_total",
        "campaign_quarantines_total",
        "recovery_retries_total",
        "recovery_backoff_ms_total",
        "setup_restores_total",
    ] {
        assert_eq!(derived.counter(name), registry.counter(name), "{name}");
    }

    // Wall-clock step timing flowed into the histogram: one observation
    // per executed run.
    let steps = registry
        .histogram("step_wall_seconds")
        .expect("step timer observed");
    assert_eq!(steps.count, result.records.len() as u64);
}
