//! End-to-end fleet observatory: the red-team attack and the lifetime
//! aging ablation, replayed under full observation.
//!
//! Two seeded scenarios anchor the observatory's claims. On the
//! red-team scenario (the PR 6 fleet, hardened net, crafted virus with
//! a delayed onset) the observatory reconstructs every attacker
//! quarantine as an incident with the right board and epoch, the droop
//! spike detector warns at the attack's first epoch — ahead of the
//! net's own quarantine — and a benign-neighbor control arm raises
//! zero warnings. On the aging scenario (the PR 5 lifetime ablation)
//! every production-SDC board-month becomes an incident and the
//! margin-drift detector warns months before the first exposure. Both
//! observatory reports are byte-identical across 1/2/4/8 workers.

use armv8_guardbands::fleet::population::FleetSpec;
use armv8_guardbands::lifetime::deployment::{
    run_deployment, DeploymentSpec, LifetimeConfig, LIFETIME_MARGIN_METRIC,
};
use armv8_guardbands::observatory::{
    reconstruct, FleetTimeline, Incident, IncidentKind, SloAlert, SloMonitor, SloSpec,
    StreamBuilder,
};
use armv8_guardbands::redteam::{replay_observatory, AttackScenario, REDTEAM_DROOP_METRIC};
use armv8_guardbands::telemetry::Level;
use armv8_guardbands::workload_sim::tenant::benign_neighbor;
use armv8_guardbands::xgene_sim::workload::WorkloadProfile;
use proptest::prelude::*;

fn crafted_virus() -> WorkloadProfile {
    WorkloadProfile::builder("e2e-virus")
        .activity(1.0)
        .swing(1.0)
        .resonance_alignment(0.9)
        .build()
}

/// The red-team scenario under observation: quarantines become
/// incidents with the right board and epoch, the spike detector leads
/// the net by at least one epoch, and the report is pool-independent.
#[test]
fn the_observatory_reconstructs_the_redteam_attack_with_early_warning() {
    let fleet = FleetSpec::new(6, 2018);
    let scenario = AttackScenario::hardened(40).with_onset(8);
    let virus = crafted_virus();

    let (reports, observatory) = replay_observatory(&fleet, Some(&virus), &scenario, 4);
    for workers in [1usize, 2, 8] {
        let (_, other) = replay_observatory(&fleet, Some(&virus), &scenario, workers);
        assert_eq!(
            observatory.chronicle_json(),
            other.chronicle_json(),
            "observatory differs at {workers} workers"
        );
    }

    let quarantined: Vec<_> = reports.iter().filter(|r| r.attacker_quarantined).collect();
    assert!(
        !quarantined.is_empty(),
        "the crafted virus must provoke at least one quarantine"
    );
    let incidents: Vec<&Incident> = observatory
        .incidents_of(IncidentKind::AttackerQuarantine)
        .collect();
    assert_eq!(
        incidents.len(),
        quarantined.len(),
        "one incident per quarantine"
    );
    for report in &quarantined {
        let incident = incidents
            .iter()
            .find(|i| i.board == report.board)
            .unwrap_or_else(|| panic!("board {} quarantine missing", report.board));
        // The trigger event the incident points at is the net's own
        // quarantine event, stamped with the detection epoch.
        let trigger = observatory
            .timeline
            .events()
            .iter()
            .find(|te| {
                te.key.board == incident.board
                    && te.key.seq == incident.trigger_seq
                    && te.event.name == "attacker_quarantined"
            })
            .expect("trigger event present in the merged timeline");
        let stamped_epoch = trigger
            .event
            .fields
            .iter()
            .find_map(|(k, v)| match v {
                armv8_guardbands::telemetry::event::FieldValue::U64(e) if k == "epoch" => Some(*e),
                _ => None,
            })
            .expect("quarantine events carry their epoch");
        // The quarantine is never earlier than the net's first
        // detection event (which may be an earlier breaker
        // attribution), and always after the attack's onset.
        let first_detection = report
            .detection_epoch
            .expect("quarantine implies detection");
        assert!(
            stamped_epoch >= first_detection,
            "board {}: quarantine at epoch {stamped_epoch} precedes detection at {first_detection}",
            report.board
        );
        assert!(
            stamped_epoch > u64::from(scenario.onset_epoch),
            "board {}: quarantine at epoch {stamped_epoch} precedes the onset",
            report.board
        );
        // The attack turned on at onset; the incident's latency is
        // measured from there.
        assert_eq!(
            incident.detection_latency_epochs,
            Some(stamped_epoch - u64::from(scenario.onset_epoch)),
            "board {} latency",
            report.board
        );
        // Early warning: the droop spike fires at the attack's edge,
        // at least one epoch before the net quarantines.
        let warning = observatory
            .first_warning(report.board, REDTEAM_DROOP_METRIC)
            .unwrap_or_else(|| panic!("board {} raised no droop warning", report.board));
        assert!(
            warning.epoch < stamped_epoch,
            "board {}: warning at epoch {} does not lead detection at {}",
            report.board,
            warning.epoch,
            stamped_epoch
        );
    }

    // Control arm: a benign off-resonance neighbor provokes neither
    // quarantines nor a single spike warning — zero false alarms.
    let (benign_reports, benign_obs) =
        replay_observatory(&fleet, Some(&benign_neighbor()), &scenario, 4);
    assert!(benign_reports.iter().all(|r| !r.attacker_quarantined));
    assert!(
        benign_obs
            .incidents_of(IncidentKind::AttackerQuarantine)
            .next()
            .is_none(),
        "no quarantine incidents on the benign arm"
    );
    assert!(
        benign_obs.warnings.is_empty(),
        "benign arm raised false alarms: {:?}",
        benign_obs.warnings
    );
    assert!(
        benign_obs.alerts.is_empty(),
        "benign arm burned an SLO: {:?}",
        benign_obs.alerts
    );
}

/// The lifetime aging ablation under observation: every SDC
/// board-month is reconstructed as an incident, and the margin-drift
/// detector warns months before the first exposure.
#[test]
fn the_observatory_sees_the_aging_ablation_coming() {
    let spec = DeploymentSpec::quick(12, 2018, 48).without_maintenance();
    let report = run_deployment(&spec, &LifetimeConfig::with_workers(4));
    for workers in [1usize, 2, 8] {
        let other = run_deployment(&spec, &LifetimeConfig::with_workers(workers));
        assert_eq!(
            report.observatory_json(),
            other.observatory_json(),
            "observatory differs at {workers} workers"
        );
    }

    let c = &report.chronicle;
    assert!(
        c.production_sdc_board_months > 0,
        "the ablation must expose SDCs for this scenario to mean anything"
    );
    let incidents: Vec<&Incident> = report
        .observatory
        .incidents_of(IncidentKind::ProductionSdc)
        .collect();
    assert_eq!(
        incidents.len() as u64,
        c.production_sdc_board_months,
        "one incident per SDC board-month"
    );
    // Each incident matches the chronicle's ledger: board listed as an
    // SDC exposure in exactly that month.
    for incident in &incidents {
        let month = c
            .months_log
            .iter()
            .find(|m| u64::from(m.month) == incident.trigger_epoch)
            .expect("incident month in the ledger");
        assert!(
            month.sdc_boards.contains(&incident.board),
            "board {} not in month {}'s SDC ledger",
            incident.board,
            month.month
        );
    }
    // Early warning: for every exposed board, the margin-drift
    // detector warned at least one month before the first exposure.
    let first_sdc_month = |board: u32| {
        c.months_log
            .iter()
            .find(|m| m.sdc_boards.contains(&board))
            .map(|m| u64::from(m.month))
            .expect("board has an exposure month")
    };
    let mut exposed: Vec<u32> = incidents.iter().map(|i| i.board).collect();
    exposed.sort_unstable();
    exposed.dedup();
    for board in exposed {
        let warning = report
            .observatory
            .first_warning(board, LIFETIME_MARGIN_METRIC)
            .unwrap_or_else(|| panic!("board {board} decayed without a warning"));
        let sdc_month = first_sdc_month(board);
        assert!(
            warning.epoch < sdc_month,
            "board {board}: warning at month {} does not lead the SDC at month {sdc_month}",
            warning.epoch
        );
    }
}

/// Incident and SLO-alert values survive a JSONL round trip intact.
#[test]
fn incidents_and_alerts_round_trip_through_jsonl() {
    let mut stream = StreamBuilder::synthetic(3, 7);
    for epoch in 1..=4u64 {
        stream.push(
            Level::Debug,
            "attack_epoch",
            vec![
                ("epoch".into(), epoch.into()),
                ("attack_active".into(), (epoch >= 2).into()),
            ],
        );
    }
    stream.push(
        Level::Warn,
        "attacker_quarantined",
        vec![("epoch".into(), 4u64.into())],
    );
    let timeline = FleetTimeline::merge(&[stream.finish()]);
    let incidents = reconstruct(&timeline, &[]);
    assert!(!incidents.is_empty());

    let mut monitor = SloMonitor::new(SloSpec::zero_escapes("no-escapes"));
    let alert = monitor
        .observe(5, Some(7), 2.0)
        .expect("an escape pages immediately");

    let mut jsonl = String::new();
    for incident in &incidents {
        jsonl.push_str(&serde::json::to_string(incident));
        jsonl.push('\n');
    }
    jsonl.push_str(&serde::json::to_string(&alert));
    jsonl.push('\n');

    let mut lines = jsonl.lines();
    for incident in &incidents {
        let back: Incident = serde::json::from_str(lines.next().unwrap()).expect("incident line");
        assert_eq!(&back, incident);
    }
    let back: SloAlert = serde::json::from_str(lines.next().unwrap()).expect("alert line");
    assert_eq!(back, alert);
    assert!(lines.next().is_none());
}

proptest! {
    /// Merging is permutation-invariant: any rotation or reversal of
    /// the same stream set produces a byte-identical timeline.
    #[test]
    fn merged_timelines_are_permutation_invariant(
        shapes in proptest::collection::vec((0u64..3, 0u32..3, 0usize..4), 1..6),
        rotate in 0usize..6,
    ) {
        let streams: Vec<_> = shapes
            .iter()
            .map(|&(epoch, board, events)| {
                let mut builder = StreamBuilder::synthetic(epoch, board);
                for i in 0..events {
                    builder.push(
                        Level::Info,
                        if i % 2 == 0 { "tick" } else { "tock" },
                        vec![("i".into(), (i as u64).into())],
                    );
                }
                builder.finish()
            })
            .collect();
        let baseline = FleetTimeline::merge(&streams).chronicle_json();

        let mut rotated = streams.clone();
        rotated.rotate_left(rotate % streams.len().max(1));
        prop_assert_eq!(&baseline, &FleetTimeline::merge(&rotated).chronicle_json());

        let mut reversed = streams;
        reversed.reverse();
        prop_assert_eq!(&baseline, &FleetTimeline::merge(&reversed).chronicle_json());
    }
}
