//! Chaos-hardening integration tests: the durable orchestration layer
//! under seeded crash schedules, journal damage and checkpoint rot.
//!
//! The headline test replays 64 distinct seeded crash schedules — every
//! fault class the chaos taxonomy knows — and demands zero lost boards
//! and a merged characterization byte-identical to one shared
//! uninterrupted baseline. The rest pin the pieces that make that
//! possible: journal replay is idempotent (merging a replayed record
//! twice is a no-op), a corrupt checkpoint is detected and recovery
//! falls back to the journal, and a torn journal tail loses only the
//! damaged suffix.

use armv8_guardbands::chaos::{run_chaos_against, ChaosConfig, ChaosPlan};
use armv8_guardbands::char_fw::{seal, unseal, CorruptCheckpoint};
use armv8_guardbands::fleet::{
    run_fleet, run_fleet_durable, BoardOutcome, BoardSafePoint, Disruption, FleetCampaign,
    FleetConfig, FleetInterrupted, FleetJournal, FleetSpec, JournalDamage, JournalEntry,
    JournalStore, MemStore, SafePointStore, CHECKPOINT_EVERY,
};
use armv8_guardbands::guardband_core::safepoint::SafePointPolicy;
use armv8_guardbands::power_model::units::{Milliseconds, Millivolts};
use armv8_guardbands::telemetry::metrics::MetricsSnapshot;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use proptest::prelude::*;

/// The roadmap's chaos acceptance invariant: 64 distinct seeded crash
/// schedules, each replayed to completion against the same fleet, all
/// recovering with zero lost boards and characterization bytes equal to
/// the uninterrupted baseline.
#[test]
fn sixty_four_seeded_crash_schedules_recover_byte_identically() {
    let config = ChaosConfig {
        boards: 4,
        fleet_seed: 2018,
        workers: 3,
    };
    let spec = FleetSpec::new(config.boards, config.fleet_seed);
    let baseline = run_fleet(
        &spec,
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(config.workers),
    );
    let baseline_json = baseline.characterization_json();
    let mut crashes = 0u64;
    for seed in 0..64u64 {
        let plan = ChaosPlan::sampled(seed, config.workers);
        assert!(plan.injections() > 0, "sampled plans always inject");
        let report = run_chaos_against(&plan, &config, &baseline);
        assert!(
            report.survived(),
            "seed {seed} violated invariants: {:?}",
            report.invariants
        );
        assert_eq!(report.invariants.lost_boards, 0, "seed {seed} lost boards");
        assert_eq!(
            report.recovered.characterization_json(),
            baseline_json,
            "seed {seed} diverged from the uninterrupted baseline"
        );
        crashes += report.interrupts.len() as u64;
    }
    assert!(
        crashes > 0,
        "64 sampled schedules must actually crash the coordinator somewhere"
    );
}

fn arb_record() -> impl Strategy<Value = BoardSafePoint> {
    (
        0u32..6,
        0u32..3,
        prop_oneof![
            Just(SigmaBin::Ttt),
            Just(SigmaBin::Tff),
            Just(SigmaBin::Tss)
        ],
        700u32..980,
        any::<bool>(),
    )
        .prop_map(|(board, attempt, bin, rail, characterized)| {
            let operating_point = characterized.then(|| {
                SafePointPolicy::dsn18()
                    .derive_from_measured(Millivolts::new(rail), Milliseconds::new(128.0))
            });
            BoardSafePoint {
                board,
                attempt,
                bin,
                core_vmin_mv: vec![Some(rail.saturating_sub(6)), None],
                rail_vmin_mv: Some(rail),
                operating_point,
                bank_safe_trefp_ms: vec![64.0 + f64::from(rail % 7); 8],
                savings_fraction: f64::from(rail % 10) / 50.0,
                savings_watts: f64::from(rail % 10) / 3.0,
            }
        })
}

fn outcome_of(record: BoardSafePoint) -> BoardOutcome {
    BoardOutcome {
        board: record.board,
        attempt: record.attempt,
        record,
        tripped: false,
        highest_failure_mv: None,
        runs: 1,
        watchdog_resets: 0,
        quarantined_setups: 0,
        breaker_trips: 0,
        backoff_ms: 0,
        sim_cost_seconds: 1.0,
        walked_steps: 1,
        metrics: MetricsSnapshot::default(),
        trace: Vec::new(),
        dumps: Vec::new(),
    }
}

proptest! {
    /// Replaying a journal's merges any number of times produces the
    /// same store bytes: completions land in a join-semilattice, so the
    /// duplicate application a crash-and-replay implies is a no-op.
    #[test]
    fn journal_replay_of_merges_is_idempotent(
        records in prop::collection::vec(arb_record(), 0..12),
    ) {
        let mut journal = FleetJournal::new(MemStore::new());
        for r in &records {
            journal.append(&JournalEntry::JobCompleted {
                outcome: outcome_of(r.clone()),
            });
            journal.append(&JournalEntry::MergeCommitted {
                epoch: 0,
                board: r.board,
                attempt: r.attempt,
            });
        }
        let apply = |passes: usize| {
            let mut store = SafePointStore::new();
            for _ in 0..passes {
                let replay = journal.replay();
                prop_assert!(replay.damage.is_none());
                for entry in &replay.entries {
                    if let JournalEntry::JobCompleted { outcome } = entry {
                        store.insert(outcome.record.clone());
                    }
                }
            }
            Ok(serde::json::to_string(&store))
        };
        prop_assert_eq!(apply(1)?, apply(2)?);
        prop_assert_eq!(apply(1)?, apply(3)?);
    }

    /// Replay itself is deterministic: two replays of the same journal
    /// decode the same entry sequence.
    #[test]
    fn journal_replay_is_deterministic(
        records in prop::collection::vec(arb_record(), 0..8),
    ) {
        let mut journal = FleetJournal::new(MemStore::new());
        for r in &records {
            journal.append(&JournalEntry::JobCompleted {
                outcome: outcome_of(r.clone()),
            });
        }
        prop_assert_eq!(journal.replay().entries, journal.replay().entries);
        prop_assert_eq!(journal.replay().entries.len(), records.len());
    }
}

/// A checkpoint that rots on disk while the coordinator is down is
/// detected by its seal, rejected with a typed error, and recovery falls
/// back to replaying the journal — still byte-identical.
#[test]
fn a_corrupt_checkpoint_is_rejected_and_recovery_replays_the_journal() {
    let spec = FleetSpec::new(5, 2018);
    let campaign = FleetCampaign::quick();
    let config = FleetConfig::with_workers(2);
    let baseline = run_fleet(&spec, &campaign, &config);

    let mut journal = FleetJournal::new(MemStore::new());
    let mut kill = Disruption::none();
    // Die right after the first checkpoint commit so one exists to rot.
    kill.kill_coordinator_after = Some(CHECKPOINT_EVERY);
    let interrupt = run_fleet_durable(&spec, &campaign, &config, &mut journal, &kill)
        .expect_err("the kill fires before the 5-board campaign finishes");
    assert!(matches!(
        interrupt,
        FleetInterrupted::CoordinatorKilled { completions } if completions == CHECKPOINT_EVERY
    ));

    // Bit-rot inside the sealed payload (past the header).
    let len = journal
        .store_mut()
        .checkpoint_bytes()
        .expect("a checkpoint was committed")
        .len();
    journal.store_mut().flip_checkpoint_bit(len - 1, 2);

    let run = run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
        .expect("a clean incarnation always completes");
    assert!(
        run.stats.checkpoint_rejected,
        "the flipped bit must fail the seal"
    );
    assert_eq!(run.stats.resumed_completions, CHECKPOINT_EVERY);
    assert_eq!(
        run.report.characterization_json(),
        baseline.characterization_json(),
        "journal fallback must still be byte-identical"
    );
}

/// Tearing the journal's tail (a crash mid-append) loses only the
/// damaged suffix: replay keeps the intact prefix, records the damage,
/// and the resumed run re-executes what the torn frames had held.
#[test]
fn a_torn_journal_tail_loses_only_the_damaged_suffix() {
    let spec = FleetSpec::new(5, 2018);
    let campaign = FleetCampaign::quick();
    let config = FleetConfig::with_workers(2);
    let baseline = run_fleet(&spec, &campaign, &config);

    let mut journal = FleetJournal::new(MemStore::new());
    let mut kill = Disruption::none();
    kill.kill_coordinator_after = Some(3);
    run_fleet_durable(&spec, &campaign, &config, &mut journal, &kill).expect_err("the kill fires");

    let len = journal.store_mut().journal_len();
    journal.store_mut().truncate_journal(len - 5);

    let run = run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
        .expect("a clean incarnation always completes");
    assert!(
        matches!(
            run.stats.journal_damage,
            Some(JournalDamage::TruncatedFrame { .. })
        ),
        "the torn tail is reported: {:?}",
        run.stats.journal_damage
    );
    assert_eq!(
        run.report.characterization_json(),
        baseline.characterization_json()
    );
}

/// The seal layer end to end: sealed payloads round-trip, one flipped
/// byte is a checksum mismatch, truncation is typed as truncation, and
/// legacy (unsealed) payloads pass through untouched.
#[test]
fn sealed_payloads_detect_rot_and_legacy_payloads_pass_through() {
    let payload = r#"{"boards":5,"seed":2018}"#;
    let sealed = seal(payload);
    assert!(sealed.starts_with("#guardband-sealed-v1"));
    assert_eq!(unseal(&sealed).unwrap(), payload);

    let mut rotten = sealed.clone().into_bytes();
    let last = rotten.len() - 1;
    rotten[last] ^= 0x40;
    let rotten = String::from_utf8(rotten).unwrap();
    assert!(matches!(
        unseal(&rotten),
        Err(CorruptCheckpoint::ChecksumMismatch { .. })
    ));

    let torn = &sealed[..sealed.len() - 4];
    assert!(matches!(
        unseal(torn),
        Err(CorruptCheckpoint::Truncated { .. })
    ));

    assert_eq!(unseal(payload).unwrap(), payload, "legacy passthrough");
}
