//! Determinism guarantees and failure-injection behaviour across the
//! workspace: campaigns reproduce bit-for-bit given a seed, and the system
//! degrades the way the paper describes as conditions worsen.

use armv8_guardbands::char_fw::report::records_to_csv;
use armv8_guardbands::char_fw::runner::CampaignRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::dram_sim::array::DramArray;
use armv8_guardbands::dram_sim::patterns::DataPattern;
use armv8_guardbands::dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use armv8_guardbands::power_model::units::{Celsius, Milliseconds, Millivolts};
use armv8_guardbands::workload_sim::spec::SPEC_SUITE;
use armv8_guardbands::xgene_sim::fault::RunOutcome;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

/// Identical seeds reproduce an identical campaign — records, CSV and all.
#[test]
fn campaigns_are_bit_reproducible() {
    let run = || {
        let mut server = XGene2Server::new(SigmaBin::Tff, 2024);
        let core = server.chip().most_robust_core();
        let suite = vec![SPEC_SUITE[0].profile(), SPEC_SUITE[9].profile()];
        let campaign = VminCampaign::dsn18(suite, vec![core]);
        let result = CampaignRunner::new(&mut server).run(&campaign);
        records_to_csv(&result.records)
    };
    assert_eq!(run(), run());
}

/// Different seeds produce different (but statistically consistent) error
/// populations.
#[test]
fn dram_populations_vary_by_seed_but_agree_statistically() {
    let model = RetentionModel::xgene2_micron();
    let a = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 1);
    let b = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 2);
    assert_ne!(a.cells(), b.cells());
    let (na, nb) = (a.len() as f64, b.len() as f64);
    assert!((na - nb).abs() / na < 0.05, "population sizes {na} vs {nb}");
}

/// Fault-severity staircase: as voltage drops the outcome worsens from
/// correct → errors → crash, and the watchdog restores the board.
#[test]
fn fault_severity_staircase() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 99);
    let core = server.chip().most_robust_core();
    let bench = SPEC_SUITE
        .iter()
        .find(|b| b.name == "milc")
        .unwrap()
        .profile();

    // Comfortably above Vmin (885): always correct.
    server.set_pmd_voltage(Millivolts::new(940)).unwrap();
    for _ in 0..20 {
        assert_eq!(
            server.run_on_core(core, &bench).outcome,
            RunOutcome::Correct
        );
    }

    // Far below: guaranteed crash, watchdog reset, reboot at nominal.
    server.set_pmd_voltage(Millivolts::new(820)).unwrap();
    let outcome = server.run_on_core(core, &bench).outcome;
    assert_eq!(outcome, RunOutcome::Crash);
    assert_eq!(server.reset_count(), 1);
    assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);

    // After the reset the board runs clean again.
    assert_eq!(
        server.run_on_core(core, &bench).outcome,
        RunOutcome::Correct
    );
}

/// Pushing DRAM past the characterized envelope (70 °C with a population
/// generated for it) makes errors grow; SECDED still corrects them because
/// repair keeps weak cells isolated per word.
#[test]
fn dram_beyond_60c_grows_errors_but_stays_correctable() {
    let model = RetentionModel::xgene2_micron();
    let spec = PopulationSpec {
        max_temperature: Celsius::new(70.0),
        max_trefp: Milliseconds::DSN18_RELAXED_TREFP,
    };
    let pop = WeakCellPopulation::generate(&model, spec, 3);
    let run_at = |temp: f64, pop: &WeakCellPopulation| {
        let mut dram = DramArray::new(
            pop.clone(),
            Milliseconds::DSN18_RELAXED_TREFP,
            Celsius::new(temp),
        );
        dram.fill_pattern(DataPattern::Random { seed: 4 });
        dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
        dram.scrub()
    };
    let at60 = run_at(60.0, &pop);
    let at70 = run_at(70.0, &pop);
    assert!(at70.flipped_bits > 2 * at60.flipped_bits);
    assert_eq!(at70.ue_events, 0);
}

/// The refresh guardband itself: at the nominal 64 ms no workload, pattern
/// or temperature up to 60 °C produces a single error — the baseline the
/// paper relaxes from.
#[test]
fn nominal_refresh_is_bulletproof_to_60c() {
    let model = RetentionModel::xgene2_micron();
    let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 5);
    for temp in [45.0, 50.0, 60.0] {
        let mut dram = DramArray::new(
            pop.clone(),
            Milliseconds::DDR3_NOMINAL_TREFP,
            Celsius::new(temp),
        );
        for pattern in DataPattern::dpbench_suite(8) {
            dram.fill_pattern(pattern);
            dram.advance(10_000.0);
            let report = dram.scrub();
            assert_eq!(report.flipped_bits, 0, "{pattern} at {temp} °C");
        }
    }
}
