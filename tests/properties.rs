//! Workspace-wide property tests: invariants that must hold for *any*
//! input, checked with proptest.

use armv8_guardbands::power_model::scaling::DynamicScaling;
use armv8_guardbands::power_model::tradeoff::FrequencyPlan;
use armv8_guardbands::power_model::units::{Megahertz, Millivolts};
use armv8_guardbands::xgene_sim::fault::FaultModel;
use armv8_guardbands::xgene_sim::sigma::{ChipProfile, SigmaBin};
use armv8_guardbands::xgene_sim::topology::CoreId;
use armv8_guardbands::xgene_sim::workload::WorkloadProfile;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(a, s, r, m)| {
        WorkloadProfile::builder("arb")
            .activity(a)
            .swing(s)
            .resonance_alignment(r)
            .memory_intensity(m)
            .build()
    })
}

fn arb_corner() -> impl Strategy<Value = SigmaBin> {
    prop_oneof![
        Just(SigmaBin::Ttt),
        Just(SigmaBin::Tff),
        Just(SigmaBin::Tss)
    ]
}

proptest! {
    /// Undervolting never increases power in the dynamic model.
    #[test]
    fn dynamic_power_monotone_in_voltage(v1 in 700u32..=980, v2 in 700u32..=980) {
        let s = DynamicScaling::xgene2();
        let f = Megahertz::XGENE2_NOMINAL;
        let (lo, hi) = (v1.min(v2), v1.max(v2));
        prop_assert!(
            s.factor(Millivolts::new(lo), f) <= s.factor(Millivolts::new(hi), f) + 1e-12
        );
    }

    /// Frequency-plan performance is the mean of the per-PMD ratios and
    /// stays in (0, 1].
    #[test]
    fn plan_performance_bounds(slow in 0usize..=4) {
        let plan = FrequencyPlan::with_slow_pmds(slow);
        let perf = plan.relative_performance();
        prop_assert!(perf > 0.0 && perf <= 1.0);
        prop_assert!((perf - (1.0 - slow as f64 * 0.125)).abs() < 1e-12);
    }

    /// Millivolt guardband fractions are always in [0, 1).
    #[test]
    fn guardband_fraction_bounds(nominal in 1u32..=2000, vmin in 0u32..=2000) {
        let f = Millivolts::new(nominal).guardband_fraction(Millivolts::new(vmin));
        prop_assert!((0.0..1.0).contains(&f));
    }

    /// Vmin is monotone in the droop score for every corner and core.
    #[test]
    fn vmin_monotone_in_droop_score(
        corner in arb_corner(),
        core in 0u8..8,
        a1 in 0.0f64..=1.0,
        a2 in 0.0f64..=1.0,
    ) {
        let chip = ChipProfile::corner(corner);
        let core = CoreId::new(core);
        let (lo, hi) = (a1.min(a2), a1.max(a2));
        let p_lo = WorkloadProfile::builder("lo").activity(lo).build();
        let p_hi = WorkloadProfile::builder("hi").activity(hi).build();
        prop_assert!(
            chip.vmin(core, &p_lo, Megahertz::XGENE2_NOMINAL)
                <= chip.vmin(core, &p_hi, Megahertz::XGENE2_NOMINAL)
        );
    }

    /// Vmin never increases when frequency drops.
    #[test]
    fn vmin_monotone_in_frequency(corner in arb_corner(), profile in arb_profile()) {
        let chip = ChipProfile::corner(corner);
        let core = chip.most_robust_core();
        let full = chip.vmin(core, &profile, Megahertz::XGENE2_NOMINAL);
        let half = chip.vmin(core, &profile, Megahertz::XGENE2_HALF);
        prop_assert!(half <= full);
    }

    /// A comfortable margin above Vmin is always classified Correct, for
    /// any workload on any corner.
    #[test]
    fn safe_margin_is_always_correct(
        corner in arb_corner(),
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let chip = ChipProfile::corner(corner);
        let core = chip.weakest_core();
        let vmin = chip.vmin(core, &profile, Megahertz::XGENE2_NOMINAL);
        let v = Millivolts::new((vmin.as_u32() + 20).min(1050));
        let model = FaultModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let outcome = model.classify(&chip, core, &profile, Megahertz::XGENE2_NOMINAL, v, &mut rng);
        prop_assert_eq!(outcome, armv8_guardbands::xgene_sim::fault::RunOutcome::Correct);
    }

    /// The rail requirement of a set of assignments is at least the Vmin
    /// of each member alone.
    #[test]
    fn rail_vmin_dominates_members(profiles in prop::collection::vec(arb_profile(), 1..8)) {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let assignments: Vec<_> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (CoreId::new(i as u8), p, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip.rail_vmin(&assignments).unwrap();
        for (core, p, f) in &assignments {
            prop_assert!(rail >= chip.vmin(*core, p, *f));
        }
    }

    /// The governor's choice never exceeds nominal and never drops below
    /// the predicted Vmin plus its minimum margin.
    #[test]
    fn governor_choice_bounds(activity in 0.0f64..=1.0) {
        use armv8_guardbands::guardband_core::governor::{GovernorConfig, OnlineGovernor};
        let gov = OnlineGovernor::new(None, None, GovernorConfig::conservative());
        let w = WorkloadProfile::builder("w").activity(activity).build();
        let v = gov.choose(&w);
        prop_assert!(v <= Millivolts::XGENE2_NOMINAL);
        prop_assert!(v.as_u32().is_multiple_of(5), "regulator grid");
    }

    /// DPBench pattern words are pure functions of the address.
    #[test]
    fn patterns_are_pure(flat in 0u64..1_000_000, seed: u64) {
        use armv8_guardbands::dram_sim::geometry::WordAddr;
        use armv8_guardbands::dram_sim::patterns::DataPattern;
        let addr = WordAddr::unflatten(flat);
        for p in DataPattern::dpbench_suite(seed) {
            prop_assert_eq!(p.word(addr), p.word(addr));
        }
    }

    /// MCU access latency is always positive and bounded by the worst
    /// case (refresh stall + row conflict).
    #[test]
    fn mcu_latency_bounds(flats in prop::collection::vec(0u64..1_000_000_000, 1..200)) {
        use armv8_guardbands::dram_sim::geometry::WordAddr;
        use armv8_guardbands::dram_sim::timing::{DdrTimings, McuTimingModel};
        use armv8_guardbands::power_model::units::Milliseconds;
        let t = DdrTimings::ddr3_1600();
        let worst = u64::from(t.t_rfc + t.t_rp + t.t_rcd + t.t_cl + t.burst_clocks);
        let mut mcu = McuTimingModel::new(t, Milliseconds::new(64.0));
        for f in flats {
            let lat = mcu.access(WordAddr::unflatten(f % armv8_guardbands::dram_sim::geometry::WORD_COUNT));
            prop_assert!(lat > 0 && lat <= worst, "latency {lat}");
        }
    }

    /// The Vmin predictor exactly recovers any linear ground truth in its
    /// features when given enough distinct samples.
    #[test]
    fn predictor_recovers_linear_models(
        w_act in 10.0f64..80.0,
        w_mem in -20.0f64..20.0,
        intercept in 800.0f64..900.0,
    ) {
        use armv8_guardbands::guardband_core::predictor::VminPredictor;
        let mut data = Vec::new();
        for i in 0..12 {
            let a = i as f64 / 11.0;
            let m = ((i * 7) % 12) as f64 / 11.0;
            let p = WorkloadProfile::builder(format!("s{i}"))
                .activity(a)
                .memory_intensity(m)
                .ipc(0.5 + a)
                .build();
            let v = intercept + w_act * a + w_mem * m;
            data.push((p, Millivolts::new(v.round() as u32)));
        }
        let model = VminPredictor::train(&data).unwrap();
        prop_assert!(model.training_rmse_mv(&data) < 1.0);
    }
}

fn arb_outcome() -> impl Strategy<Value = armv8_guardbands::xgene_sim::fault::RunOutcome> {
    use armv8_guardbands::xgene_sim::fault::RunOutcome;
    prop_oneof![
        Just(RunOutcome::Correct),
        Just(RunOutcome::CorrectableError),
        Just(RunOutcome::UncorrectableError),
        Just(RunOutcome::SilentDataCorruption),
        Just(RunOutcome::Crash),
    ]
}

fn arb_policy() -> impl Strategy<Value = armv8_guardbands::char_fw::setup::SafePolicy> {
    use armv8_guardbands::char_fw::setup::SafePolicy;
    prop_oneof![
        Just(SafePolicy::StrictCorrect),
        Just(SafePolicy::AllowCorrected)
    ]
}

proptest! {
    /// The setup classification is dominated by its worst member: it never
    /// reports anything milder than any individual repetition, and the
    /// reported class always appears among the inputs.
    #[test]
    fn classify_setup_severity_dominance(
        outcomes in prop::collection::vec(arb_outcome(), 0..12),
        policy in arb_policy(),
    ) {
        use armv8_guardbands::char_fw::runner::classify_setup;
        use armv8_guardbands::xgene_sim::fault::RunOutcome;
        let severity = |x: RunOutcome| match x {
            RunOutcome::Correct => 0,
            RunOutcome::CorrectableError => 1,
            RunOutcome::UncorrectableError => 2,
            RunOutcome::SilentDataCorruption => 3,
            RunOutcome::Crash => 4,
        };
        let class = classify_setup(&outcomes, policy);
        for &o in &outcomes {
            prop_assert!(severity(class) >= severity(o), "{class:?} milder than {o:?}");
        }
        if outcomes.is_empty() {
            prop_assert_eq!(class, RunOutcome::Correct, "vacuous setups are safe");
        } else {
            prop_assert!(outcomes.contains(&class), "{class:?} not among inputs");
        }
    }

    /// The classification is order-independent: any rotation (and the
    /// reversal) of the repetition list yields the same class.
    #[test]
    fn classify_setup_is_order_independent(
        outcomes in prop::collection::vec(arb_outcome(), 1..10),
        rotation in 0usize..10,
        policy in arb_policy(),
    ) {
        use armv8_guardbands::char_fw::runner::classify_setup;
        let baseline = classify_setup(&outcomes, policy);
        let mut rotated = outcomes.clone();
        rotated.rotate_left(rotation % outcomes.len());
        prop_assert_eq!(classify_setup(&rotated, policy), baseline);
        let mut reversed = outcomes.clone();
        reversed.reverse();
        prop_assert_eq!(classify_setup(&reversed, policy), baseline);
    }

    /// Both safe policies agree on the class itself (the policy moves the
    /// accept/reject line, not the severity order).
    #[test]
    fn classify_setup_is_policy_invariant(
        outcomes in prop::collection::vec(arb_outcome(), 0..12),
    ) {
        use armv8_guardbands::char_fw::runner::classify_setup;
        use armv8_guardbands::char_fw::setup::SafePolicy;
        prop_assert_eq!(
            classify_setup(&outcomes, SafePolicy::StrictCorrect),
            classify_setup(&outcomes, SafePolicy::AllowCorrected)
        );
    }
}

proptest! {
    /// Killing a campaign at *any* run boundary and resuming it from a
    /// JSON checkpoint reproduces the uninterrupted result bit-for-bit —
    /// RNG state, fault-plan state and quarantine bookkeeping included.
    #[test]
    fn checkpoint_resume_is_transparent_at_any_boundary(
        seed in 0u64..500,
        steps_before_pause in 0usize..48,
        step_mv in prop_oneof![Just(20u32), Just(60), Just(150)],
    ) {
        use armv8_guardbands::char_fw::resilience::{CampaignCheckpoint, ResilienceConfig};
        use armv8_guardbands::char_fw::runner::ResilientRunner;
        use armv8_guardbands::char_fw::setup::VminCampaign;
        use armv8_guardbands::workload_sim::spec::by_name;
        use armv8_guardbands::xgene_sim::fault::FaultPlan;
        use armv8_guardbands::xgene_sim::server::XGene2Server;

        let profile = by_name("milc").unwrap().profile();
        let make_campaign = || {
            let mut c = VminCampaign::dsn18(vec![profile.clone()], vec![CoreId::new(3)]);
            c.step_mv = step_mv;
            c.repetitions = 2;
            c
        };
        let make_server = || {
            let mut s = XGene2Server::new(SigmaBin::Ttt, seed);
            s.install_fault_plan(FaultPlan::hostile(seed.wrapping_add(1)));
            s
        };

        let mut ref_server = make_server();
        let reference = ResilientRunner::new(
            &mut ref_server,
            make_campaign(),
            ResilienceConfig::dsn18(),
        )
        .run_to_completion();

        let mut server = make_server();
        let mut runner =
            ResilientRunner::new(&mut server, make_campaign(), ResilienceConfig::dsn18());
        for _ in 0..steps_before_pause {
            if !runner.step() {
                break;
            }
        }
        let json = runner.checkpoint().to_json();
        drop(runner);

        // "Kill the process": resume onto a brand-new server object.
        let mut resumed_server = XGene2Server::new(SigmaBin::Tff, 0);
        let checkpoint = CampaignCheckpoint::from_json(&json).unwrap();
        let resumed =
            ResilientRunner::resume(&mut resumed_server, checkpoint).run_to_completion();

        prop_assert_eq!(reference, resumed);
    }
}
