//! Fleet orchestration integration tests: the safe-point store's merge
//! algebra under arbitrary shard orderings, and the seeded 256-board
//! end-to-end determinism invariant from the roadmap.

use armv8_guardbands::fleet::{
    run_fleet, BoardSafePoint, FleetCampaign, FleetConfig, FleetSpec, SafePointStore,
};
use armv8_guardbands::guardband_core::safepoint::SafePointPolicy;
use armv8_guardbands::power_model::units::{Milliseconds, Millivolts};
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BoardSafePoint> {
    (
        0u32..6,
        0u32..3,
        prop_oneof![
            Just(SigmaBin::Ttt),
            Just(SigmaBin::Tff),
            Just(SigmaBin::Tss)
        ],
        700u32..980,
        any::<bool>(),
    )
        .prop_map(|(board, attempt, bin, rail, characterized)| {
            let operating_point = characterized.then(|| {
                SafePointPolicy::dsn18()
                    .derive_from_measured(Millivolts::new(rail), Milliseconds::new(128.0))
            });
            BoardSafePoint {
                board,
                attempt,
                bin,
                core_vmin_mv: vec![Some(rail.saturating_sub(6)), None],
                rail_vmin_mv: Some(rail),
                operating_point,
                bank_safe_trefp_ms: vec![64.0 + f64::from(rail % 7); 8],
                savings_fraction: f64::from(rail % 10) / 50.0,
                savings_watts: f64::from(rail % 10) / 3.0,
            }
        })
}

fn store_of(records: &[BoardSafePoint]) -> SafePointStore {
    let mut store = SafePointStore::new();
    for record in records {
        store.insert(record.clone());
    }
    store
}

fn canonical(store: &SafePointStore) -> String {
    serde::json::to_string(store)
}

proptest! {
    /// Merging shards is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(arb_record(), 0..10),
        b in prop::collection::vec(arb_record(), 0..10),
        c in prop::collection::vec(arb_record(), 0..10),
    ) {
        let (sa, sb, sc) = (store_of(&a), store_of(&b), store_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(canonical(&left), canonical(&right));
    }

    /// Merging shards is commutative: a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(arb_record(), 0..12),
        b in prop::collection::vec(arb_record(), 0..12),
    ) {
        let (sa, sb) = (store_of(&a), store_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(canonical(&ab), canonical(&ba));
    }

    /// Merging is idempotent, and insertion order within a shard never
    /// matters: any permutation of the records folds to the same store.
    #[test]
    fn merge_is_idempotent_and_order_free(
        records in prop::collection::vec(arb_record(), 0..14),
        rotate in 0usize..14,
    ) {
        let store = store_of(&records);
        let mut twice = store.clone();
        twice.merge(&store);
        prop_assert_eq!(canonical(&twice), canonical(&store));

        let mut rotated = records.clone();
        rotated.rotate_left(rotate.min(records.len()));
        prop_assert_eq!(canonical(&store_of(&rotated)), canonical(&store));
    }
}

/// The roadmap's acceptance invariant: a seeded 256-board fleet produces
/// byte-identical characterization output on 1 worker and on 8.
#[test]
fn fleet_256_boards_is_bit_identical_across_pool_sizes() {
    let spec = FleetSpec::new(256, 2018);
    let campaign = FleetCampaign::quick();
    let serial = run_fleet(&spec, &campaign, &FleetConfig::with_workers(1));
    let pooled = run_fleet(&spec, &campaign, &FleetConfig::with_workers(8));
    assert_eq!(
        serial.characterization_json(),
        pooled.characterization_json(),
        "8-worker fleet diverged from the serial run"
    );
    let stats = &serial.characterization.stats;
    assert_eq!(stats.boards, 256);
    assert_eq!(stats.characterized, 256);
    assert!(stats.total_savings_watts > 0.0);
    // The corner mix is represented in the characterized population.
    assert!(stats.corner_histogram.iter().all(|(_, n)| *n > 0));
    // The pool actually parallelized: the modeled makespan shrank.
    assert!(pooled.execution.sim_makespan_seconds < serial.execution.sim_makespan_seconds);
}
