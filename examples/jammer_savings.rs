//! End-to-end exploitation (§IV.D / Fig. 9): derive the safe operating
//! point for the jammer-detector deployment, apply it through SLIMpro, run
//! the real multi-threaded detector, and report the power savings with QoS
//! intact.
//!
//! ```sh
//! cargo run --example jammer_savings
//! ```

use armv8_guardbands::guardband_core::safepoint::SafePointPolicy;
use armv8_guardbands::power_model::domain::DomainKind;
use armv8_guardbands::power_model::server::ServerLoad;
use armv8_guardbands::workload_sim::jammer::{self, JammerConfig};
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use armv8_guardbands::xgene_sim::topology::CoreId;

fn main() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 2018);
    let chip = server.chip().clone();
    let load = ServerLoad::jammer_detector();

    // Nominal baseline.
    let nominal = server.read_power(&load);
    println!("nominal: {nominal}");

    // Derive the safe point from the characterization: 8 jammer threads
    // (4 instances × 2) pinned across the 8 cores.
    let cores: Vec<CoreId> = CoreId::all().collect();
    let workloads = vec![jammer::profile(); 8];
    let point = SafePointPolicy::dsn18().derive(&chip, &workloads, &cores);
    println!("derived safe point: {point}");

    // Apply through SLIMpro.
    server
        .set_pmd_voltage(point.pmd_voltage)
        .expect("within regulator range");
    server
        .set_soc_voltage(point.soc_voltage)
        .expect("within regulator range");
    server.set_trefp(point.trefp).expect("positive TREFP");

    // Run the actual detector (4 parallel FFT-based instances) and check
    // detection QoS at the undervolted point.
    let report = jammer::run(&JammerConfig::dsn18());
    println!(
        "jammer detector: detection rate {:.1}%, QoS {}",
        report.detection_rate() * 100.0,
        if report.qos_met() { "met" } else { "VIOLATED" }
    );

    // Verify the runs themselves are electrically safe.
    let profile = jammer::profile();
    let assignments: Vec<_> = cores.iter().map(|c| (*c, &profile)).collect();
    let outcomes = server.run_many(&assignments);
    let usable = outcomes.iter().filter(|r| r.outcome.is_usable()).count();
    println!("core runs usable at safe point: {usable}/8");

    // Fig. 9 per-domain comparison.
    let safe = server.read_power(&load);
    println!(
        "\n{:<8}{:>10}{:>10}{:>9}",
        "domain", "nominal", "safe", "saving"
    );
    for kind in DomainKind::ALL {
        let n = nominal.domain(kind);
        let s = safe.domain(kind);
        println!(
            "{:<8}{:>10}{:>10}{:>8.1}%",
            kind.to_string(),
            n.to_string(),
            s.to_string(),
            n.savings_to(s) * 100.0
        );
    }
    println!(
        "total: {} -> {} ({:.1}% savings; paper: 31.1 W -> 24.8 W, 20.2%)",
        nominal.total(),
        safe.total(),
        nominal.total().savings_to(safe.total()) * 100.0
    );
}
