//! A tour of the telemetry layer: structured tracing into JSONL, the
//! metrics registry with Prometheus-style exposition and JSON export,
//! profiling timers, and a named-trigger flight recorder — all driven by
//! the real characterization stack.
//!
//! Everything here is deterministic: event sequence numbers restart at
//! zero per installed context, no wall-clock time appears in any event
//! field, and two runs of this example produce identical traces.
//!
//! ```sh
//! cargo run --example telemetry_tour
//! ```

use std::rc::Rc;

use armv8_guardbands::char_fw::resilience::ResilienceConfig;
use armv8_guardbands::char_fw::runner::ResilientRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::power_model::units::Celsius;
use armv8_guardbands::telemetry::sink::JsonlSink;
use armv8_guardbands::telemetry::{self, Event, FlightRecorder, Level, Registry, Telemetry};
use armv8_guardbands::thermal_sim::testbed::ThermalTestbed;
use armv8_guardbands::workload_sim::spec::by_name;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    // ── 1. Machine-readable trace: a short Vmin campaign into JSONL ──
    //
    // The JSONL sink writes one JSON object per event; the registry
    // counts runs, resets and step durations while the campaign
    // executes. Both are shared `Rc`s so we can read them back after the
    // telemetry guard drops.
    let jsonl = Rc::new(JsonlSink::in_memory().with_min_level(Level::Debug));
    let registry = Rc::new(Registry::new());
    {
        let _telemetry = Telemetry::new()
            .with_shared_sink(jsonl.clone())
            .with_registry(registry.clone())
            .install();

        let bench = by_name("mcf").expect("mcf is part of the suite").profile();
        let mut server = XGene2Server::new(SigmaBin::Ttt, 42);
        let core = server.chip().most_robust_core();
        let mut campaign = VminCampaign::dsn18(vec![bench], vec![core]);
        campaign.step_mv = 25;
        campaign.repetitions = 2;
        let result = ResilientRunner::new(&mut server, campaign, ResilienceConfig::dsn18())
            .run_to_completion();
        println!(
            "campaign traced: {} runs, Vmin {:?}",
            result.records.len(),
            result.vmin("mcf", core)
        );

        // The thermal testbed traces PID tracking and feeds the
        // `pid_max_deviation_c` histogram through the same context.
        let mut testbed = ThermalTestbed::new(Celsius::new(25.0), 7);
        testbed.set_all_targets(Celsius::new(60.0));
        testbed.run(3600.0); // settle
        let dev = testbed.max_deviation_over(600.0);
        println!("thermal testbed regulated to within {dev:.3} °C of 60 °C");
    }

    let trace = jsonl.contents();
    let lines: Vec<&str> = trace.lines().collect();
    println!(
        "\nJSONL trace: {} events, {} bytes",
        lines.len(),
        trace.len()
    );
    println!("first three lines:");
    for line in lines.iter().take(3) {
        println!("  {line}");
    }
    // Every line decodes back into the exact `Event` that was emitted.
    let first: Event = serde::json::from_str(lines[0]).expect("trace lines decode");
    assert_eq!(first.seq, 0);
    assert_eq!(first.name, "campaign");

    // ── 2. Metrics: Prometheus-style exposition and JSON export ──
    println!("\nPrometheus exposition (excerpt):");
    for line in registry
        .prometheus()
        .lines()
        .filter(|l| l.contains("campaign_") || l.contains("step_wall_seconds_count"))
        .take(10)
    {
        println!("  {line}");
    }
    let json = registry.to_json();
    println!("JSON export: {} bytes", json.len());
    // Snapshots round-trip losslessly and keep accumulating.
    let snapshot = registry.snapshot();
    let restored = Registry::from_snapshot(&snapshot);
    assert_eq!(restored.snapshot(), snapshot);

    // ── 3. Flight recorder with a named trigger ──
    //
    // Besides the default `Error`-level trigger, a recorder can dump on
    // any exactly-named event — here a hand-rolled tripwire.
    let recorder = Rc::new(FlightRecorder::with_capacity(8).with_trigger_name("tripwire"));
    {
        let _telemetry = Telemetry::new()
            .with_shared_sink(recorder.clone())
            .install();
        let _span = telemetry::span!(Level::Info, "demo", stage = "tour");
        for i in 0..12u32 {
            telemetry::event!(Level::Info, "tick", i = i);
        }
        telemetry::event!(Level::Info, "tripwire", reason = "manual");
    }
    let dumps = recorder.dumps();
    assert_eq!(dumps.len(), 1);
    println!("\nflight recorder dump (named trigger, ring of 8):");
    print!("{}", dumps[0].render());
}
