//! Red-team co-evolution demo: evolve a dI/dt virus tenant against the
//! pre-hardening safety net across a small fleet, then replay the
//! champion against the hardened net.
//!
//! ```text
//! cargo run --release --example redteam_campaign
//! ```

use armv8_guardbands::redteam::{replay_fleet, run_campaign, AttackScenario, CampaignConfig};

fn main() {
    let config = CampaignConfig::dsn18(6, 2018);
    println!(
        "co-evolving {} genomes x {} generations against {} boards (seed net)...",
        config.ga.population, config.ga.generations, config.fleet.boards
    );
    let report = run_campaign(&config);
    for g in &report.generations {
        println!(
            "  gen {:>2}: best fitness {:>6.2} ({} escapes), grid total {}",
            g.generation, g.best_fitness, g.best_escapes, g.total_escapes
        );
    }
    let champion = report.champion_profile();
    println!(
        "champion: fitness {:.2}, resonant energy {:.3}",
        report.champion_fitness,
        champion.resonant_energy()
    );

    let seed = replay_fleet(
        &config.fleet,
        Some(&champion),
        &config.scenario,
        config.workers,
    );
    let hardened = replay_fleet(
        &config.fleet,
        Some(&champion),
        &AttackScenario::hardened(config.scenario.epochs),
        config.workers,
    );
    println!("\nchampion replay, per board (seed net -> hardened net):");
    for (s, h) in seed.iter().zip(&hardened) {
        println!(
            "  board {}: escapes {:>2} -> {:>2}, detection {:?} -> {:?}, quarantined {} -> {}",
            s.board,
            s.escaped_sdcs,
            h.escaped_sdcs,
            s.detection_epoch,
            h.detection_epoch,
            s.attacker_quarantined,
            h.attacker_quarantined
        );
    }
    let seed_total: u64 = seed.iter().map(|r| r.escaped_sdcs).sum();
    let hard_total: u64 = hardened.iter().map(|r| r.escaped_sdcs).sum();
    println!("\ntotal escapes: seed net {seed_total}, hardened net {hard_total}");
}
