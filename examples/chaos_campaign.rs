//! Chaos campaign: crash the fleet coordinator on purpose and prove the
//! durable orchestration layer recovers byte-identically.
//!
//! Two acts. First, crash recovery across real on-disk restarts: a
//! durable fleet run journals to a [`fleet::DirStore`] in a temp
//! directory, gets its coordinator killed mid-campaign, and a "fresh
//! process" reopens the same directory and finishes the job —
//! re-running only what the journal does not already hold. Second, a
//! full seeded chaos campaign: a handcrafted plan that exercises every
//! fault class (coordinator kill, mid-job worker death, bit-flipped
//! checkpoint, torn journal tail, duplicated deliveries) runs under the
//! chaos harness with live metrics, and the disruption history comes
//! back as observatory postmortems.
//!
//! ```sh
//! cargo run --example chaos_campaign
//! ```

use std::rc::Rc;

use armv8_guardbands::chaos::{
    run_chaos, ChaosConfig, ChaosFault, ChaosPlan, ChaosRound, CorruptionKind,
};
use armv8_guardbands::fleet::{
    run_fleet, run_fleet_durable, DirStore, Disruption, FleetCampaign, FleetConfig,
    FleetInterrupted, FleetJournal, FleetSpec, CHECKPOINT_EVERY,
};
use armv8_guardbands::observatory::IncidentKind;
use armv8_guardbands::telemetry::{Registry, Telemetry};

fn main() {
    // ---- Act 1: kill -9 survival on a real directory ----------------
    let spec = FleetSpec::new(4, 2018);
    let campaign = FleetCampaign::quick();
    let config = FleetConfig::with_workers(2);
    let baseline = run_fleet(&spec, &campaign, &config);

    let dir = std::env::temp_dir().join(format!("guardband_chaos_{}", std::process::id()));
    let mut journal = FleetJournal::new(DirStore::open(&dir));
    let mut kill = Disruption::none();
    kill.kill_coordinator_after = Some(2);
    let interrupt = run_fleet_durable(&spec, &campaign, &config, &mut journal, &kill)
        .expect_err("the injected kill fires before the 4-board campaign finishes");
    println!(
        "incarnation 1: {interrupt} — journal left on disk at {}",
        dir.display()
    );
    assert!(matches!(
        interrupt,
        FleetInterrupted::CoordinatorKilled { completions: 2 }
    ));
    drop(journal); // the "process" dies; only the directory survives

    let mut journal = FleetJournal::new(DirStore::open(&dir)); // reboot
    let resumed = run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
        .expect("a clean incarnation always completes");
    assert_eq!(
        resumed.report.characterization_json(),
        baseline.characterization_json(),
        "recovery must be byte-identical"
    );
    println!(
        "incarnation 2: resumed {} journaled completions, executed {} fresh jobs — \
         characterization byte-identical to the uninterrupted run\n",
        resumed.stats.resumed_completions, resumed.stats.executed_jobs
    );
    assert!(resumed.stats.resumed_completions >= 2);
    std::fs::remove_dir_all(&dir).ok();

    // ---- Act 2: the full fault taxonomy under the chaos harness -----
    // Round 1 kills the coordinator right after its first checkpoint
    // commit and takes a worker down mid-job; round 2 bit-flips the
    // checkpoint left behind (rejected, falls back to journal replay)
    // and kills again immediately; round 3 tears the journal tail and
    // duplicates deliveries, then runs to completion.
    let plan = ChaosPlan {
        seed: 2018,
        rounds: vec![
            ChaosRound {
                faults: vec![
                    ChaosFault::WorkerDeath {
                        worker: 0,
                        after_jobs: 1,
                    },
                    ChaosFault::CoordinatorKill {
                        after_completions: CHECKPOINT_EVERY,
                    },
                ],
            },
            ChaosRound {
                faults: vec![
                    ChaosFault::CorruptCheckpoint {
                        kind: CorruptionKind::BitFlip,
                    },
                    ChaosFault::CoordinatorKill {
                        after_completions: 0,
                    },
                ],
            },
            ChaosRound {
                faults: vec![
                    ChaosFault::TornJournalTail { drop_bytes: 9 },
                    ChaosFault::DuplicateDelivery { count: 2 },
                ],
            },
        ],
    };

    let registry = Rc::new(Registry::new());
    let report = {
        let _telemetry = Telemetry::new().with_registry(registry.clone()).install();
        run_chaos(&plan, &ChaosConfig::default())
    };
    print!("{}", report.render());
    assert!(report.survived(), "{:?}", report.invariants);
    assert_eq!(report.incarnations, 3);
    assert_eq!(report.checkpoint_rejections, 1);

    println!("\ninvariants against the uninterrupted baseline:");
    println!("  lost boards          : {}", report.invariants.lost_boards);
    println!(
        "  double-counted merges: {}",
        report.invariants.double_counted_merges
    );
    println!(
        "  store identical      : {}",
        report.invariants.store_identical
    );
    println!(
        "  observatory identical: {}",
        report.invariants.observatory_identical
    );

    // The disruption history is a postmortem timeline, with recovery as
    // each incident's resolution.
    let disruptions = report
        .observatory
        .incidents_of(IncidentKind::ChaosDisruption)
        .count();
    let corruptions = report
        .observatory
        .incidents_of(IncidentKind::CheckpointCorruption)
        .count();
    assert!(disruptions >= 2 && corruptions >= 1);
    println!(
        "\npostmortems: {disruptions} chaos disruptions, {corruptions} checkpoint corruptions"
    );
    print!("{}", report.observatory.render());

    // Every injection landed in the chaos_* metrics family.
    println!("\nchaos metrics (Prometheus excerpt):");
    for line in registry
        .prometheus()
        .lines()
        .filter(|l| l.contains("chaos_") && !l.starts_with("# "))
    {
        println!("  {line}");
    }
}
