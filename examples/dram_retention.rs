//! DRAM retention characterization on the thermal testbed: regulate the
//! DIMMs to 50 °C and 60 °C, relax refresh 35×, run DPBench campaigns and
//! the Rodinia applications, and report Table I / Fig. 8-style results.
//!
//! ```sh
//! cargo run --example dram_retention
//! ```

use armv8_guardbands::char_fw::dramchar::{
    refresh_savings, rodinia_bers, run_dram_campaign, DramCampaignConfig,
};
use armv8_guardbands::power_model::units::{Celsius, Milliseconds, Watts};
use armv8_guardbands::thermal_sim::testbed::ThermalTestbed;
use armv8_guardbands::workload_sim::rodinia::{self, KernelConfig};
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    for config in [
        DramCampaignConfig::dsn18_50c(),
        DramCampaignConfig::dsn18_60c(),
    ] {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 11);
        let mut testbed = ThermalTestbed::new(Celsius::new(25.0), 11);
        let report = run_dram_campaign(&mut server, &mut testbed, &config);
        println!(
            "=== {} (regulated to within {:.2} °C) ===",
            config.temperature, report.regulation_deviation
        );
        println!(
            "unique error locations per bank: {:?}",
            report.unique_per_bank
        );
        println!(
            "bank-to-bank spread: {:.0}%  |  CEs {}  UEs {}",
            report.bank_spread() * 100.0,
            report.ce_total,
            report.ue_total
        );
        for (pattern, ber) in &report.pattern_bers {
            println!("  {pattern:<18} BER {ber:.3e}");
        }
        println!();
    }

    // Fig. 8: the HPC applications under the relaxed refresh at 60 °C.
    let mut server = XGene2Server::new(SigmaBin::Ttt, 11);
    server.set_dram_temperature(Celsius::new(60.0));
    server
        .set_trefp(Milliseconds::DSN18_RELAXED_TREFP)
        .expect("relaxed TREFP is valid");
    let kernels = rodinia::suite();
    let cfg = KernelConfig {
        scale: 96,
        iterations: 6,
        seed: 11,
        runtime_ms: 5000.0,
    };
    println!(
        "=== Rodinia under TREFP {} @60 °C ===",
        Milliseconds::DSN18_RELAXED_TREFP
    );
    for (name, ber, correct) in rodinia_bers(&mut server, &kernels, &cfg) {
        println!(
            "  {name:<10} BER {ber:.3e}  output {}",
            if correct {
                "correct (ECC absorbed all flips)"
            } else {
                "CORRUPTED"
            }
        );
    }
    println!("=== Fig. 8b: DRAM power saving from the 35x relaxation ===");
    for (name, saving) in
        refresh_savings(&kernels, Milliseconds::DSN18_RELAXED_TREFP, Watts::new(9.0))
    {
        println!("  {name:<10} {:.1}%", saving * 100.0);
    }
}
