//! A full Fig. 4-style undervolting campaign: the 10-program SPEC suite
//! across all three process corners (TTT / TFF / TSS), reported as a
//! per-chip Vmin table with CSV output.
//!
//! ```sh
//! cargo run --example undervolt_campaign
//! ```

use armv8_guardbands::char_fw::report::vmins_to_csv;
use armv8_guardbands::char_fw::runner::CampaignRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::workload_sim::spec::SPEC_SUITE;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;
use armv8_guardbands::xgene_sim::topology::CoreId;

fn main() {
    let suite: Vec<_> = SPEC_SUITE.iter().map(|b| b.profile()).collect();

    for bin in SigmaBin::ALL {
        let mut server = XGene2Server::new(bin, 7);
        // Characterize every core individually — heterogeneity exists even
        // between cores of the same chip.
        let cores: Vec<CoreId> = CoreId::all().collect();
        let campaign = VminCampaign::dsn18(suite.clone(), cores);
        let result = CampaignRunner::new(&mut server).run(&campaign);

        println!("=== chip {bin} ===");
        for b in &SPEC_SUITE {
            let (core, vmin) = result
                .most_robust_core(b.name)
                .expect("every benchmark completes its campaign");
            println!("{:<12} most robust core {core}: Vmin {vmin}", b.name);
        }
        let per_core: Vec<String> = CoreId::all()
            .map(|c| {
                let worst = SPEC_SUITE
                    .iter()
                    .filter_map(|b| result.vmin(b.name, c))
                    .max()
                    .map(|v| v.as_u32().to_string())
                    .unwrap_or_else(|| "-".into());
                format!("{c}:{worst}")
            })
            .collect();
        println!("per-core worst-benchmark Vmin [mV]: {}", per_core.join(" "));
        println!("watchdog resets: {}", result.watchdog_resets);

        // The framework's parsing phase emits CSV for downstream analysis.
        let csv = vmins_to_csv(&result);
        println!(
            "CSV preview:\n{}",
            csv.lines().take(4).collect::<Vec<_>>().join("\n")
        );
        println!();
    }
}
