//! The §IV.D online voltage governor in action: train the Vmin predictor
//! from a characterization campaign, attach a droop history, and let the
//! governor drive a core through shifting workload phases — saving power
//! with zero disruptions.
//!
//! ```sh
//! cargo run --example online_governor
//! ```

use armv8_guardbands::guardband_core::droop_history::{DroopHistory, FailurePredictor};
use armv8_guardbands::guardband_core::governor::{simulate, GovernorConfig, OnlineGovernor};
use armv8_guardbands::guardband_core::predictor::VminPredictor;
use armv8_guardbands::power_model::units::{Megahertz, Millivolts};
use armv8_guardbands::workload_sim::spec::SPEC_SUITE;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 31);
    let chip = server.chip().clone();
    let core = chip.most_robust_core();

    // Train the predictor from the chip model's characterization results
    // (in deployment these come from the offline campaign).
    let training: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            let v = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            (p, v)
        })
        .collect();
    let predictor = VminPredictor::train(&training).expect("well-posed training set");
    println!(
        "predictor trained on {} SPEC programs (RMSE {:.2} mV)",
        training.len(),
        predictor.training_rmse_mv(&training)
    );

    // Seed a droop history from the idle-Vmin test plus observed noise.
    let mut history = DroopHistory::new(256);
    for i in 0..256 {
        history.record(18.0 + (i % 13) as f64);
    }
    let floor = FailurePredictor::new(chip.intrinsic_vmin(), history);
    println!(
        "droop floor: intrinsic Vmin {}, floor voltage for 1e-5 target: {}",
        chip.intrinsic_vmin(),
        floor.voltage_for(1e-5)
    );

    // Run 1000 epochs cycling through the SPEC phases.
    let schedule: Vec<_> = SPEC_SUITE.iter().map(|b| b.profile()).collect();
    let mut governor =
        OnlineGovernor::new(Some(predictor), Some(floor), GovernorConfig::conservative());
    let stats = simulate(&mut server, &mut governor, &schedule, core, 1000);

    println!("\nafter {} epochs:", stats.epochs);
    println!(
        "  mean commanded voltage: {:.0} mV (nominal 980 mV)",
        stats.mean_voltage_mv()
    );
    println!(
        "  dynamic-power savings proxy: {:.1}%",
        (1.0 - stats.mean_power_ratio()) * 100.0
    );
    println!(
        "  CE backoffs: {}, disruptions: {}, watchdog resets: {}",
        stats.ce_backoffs,
        stats.disruptions,
        server.reset_count()
    );
    let milc = SPEC_SUITE
        .iter()
        .find(|b| b.name == "milc")
        .unwrap()
        .profile();
    let mcf = SPEC_SUITE
        .iter()
        .find(|b| b.name == "mcf")
        .unwrap()
        .profile();
    println!(
        "  phase awareness: chooses {} for mcf vs {} for milc",
        governor.choose(&mcf),
        governor.choose(&milc)
    );
    assert!(governor.choose(&milc) <= Millivolts::XGENE2_NOMINAL);
}
