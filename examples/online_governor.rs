//! The §IV.D online voltage governor in action: train the Vmin predictor
//! from a characterization campaign, attach a droop history, and let the
//! governor drive a core through shifting workload phases — saving power
//! with zero disruptions. A second act wraps the governor in the
//! production safety net and injects silent corruptions below Vmin: the
//! DMR sentinels catch every one, the circuit breaker trips, refresh and
//! margin roll back, and scaled operation is re-earned after cooldown.
//!
//! ```sh
//! cargo run --example online_governor
//! ```

use armv8_guardbands::guardband_core::droop_history::{DroopHistory, FailurePredictor};
use armv8_guardbands::guardband_core::governor::{simulate, GovernorConfig, OnlineGovernor};
use armv8_guardbands::guardband_core::predictor::VminPredictor;
use armv8_guardbands::guardband_core::safety::{SafetyNet, SafetyNetConfig};
use armv8_guardbands::power_model::units::{Megahertz, Millivolts};
use armv8_guardbands::workload_sim::spec::{by_name, SPEC_SUITE};
use armv8_guardbands::xgene_sim::fault::FaultPlan;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::{ChipProfile, SigmaBin};

fn main() {
    let mut server = XGene2Server::new(SigmaBin::Ttt, 31);
    let chip = server.chip().clone();
    let core = chip.most_robust_core();

    // Train the predictor from the chip model's characterization results
    // (in deployment these come from the offline campaign).
    let training: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            let v = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            (p, v)
        })
        .collect();
    let predictor = VminPredictor::train(&training).expect("well-posed training set");
    println!(
        "predictor trained on {} SPEC programs (RMSE {:.2} mV)",
        training.len(),
        predictor.training_rmse_mv(&training)
    );

    // Seed a droop history from the idle-Vmin test plus observed noise.
    let mut history = DroopHistory::new(256);
    for i in 0..256 {
        history.record(18.0 + (i % 13) as f64);
    }
    let floor = FailurePredictor::new(chip.intrinsic_vmin(), history);
    println!(
        "droop floor: intrinsic Vmin {}, floor voltage for 1e-5 target: {}",
        chip.intrinsic_vmin(),
        floor.voltage_for(1e-5)
    );

    // Run 1000 epochs cycling through the SPEC phases.
    let schedule: Vec<_> = SPEC_SUITE.iter().map(|b| b.profile()).collect();
    let mut governor =
        OnlineGovernor::new(Some(predictor), Some(floor), GovernorConfig::conservative());
    let stats = simulate(&mut server, &mut governor, &schedule, core, 1000);

    println!("\nafter {} epochs:", stats.epochs);
    println!(
        "  mean commanded voltage: {:.0} mV (nominal 980 mV)",
        stats.mean_voltage_mv()
    );
    println!(
        "  dynamic-power savings proxy: {:.1}%",
        (1.0 - stats.mean_power_ratio()) * 100.0
    );
    println!(
        "  CE backoffs: {}, disruptions: {}, watchdog resets: {}",
        stats.ce_backoffs,
        stats.disruptions,
        server.reset_count()
    );
    let milc = SPEC_SUITE
        .iter()
        .find(|b| b.name == "milc")
        .unwrap()
        .profile();
    let mcf = SPEC_SUITE
        .iter()
        .find(|b| b.name == "mcf")
        .unwrap()
        .profile();
    println!(
        "  phase awareness: chooses {} for mcf vs {} for milc",
        governor.choose(&mcf),
        governor.choose(&milc)
    );
    assert!(governor.choose(&milc) <= Millivolts::XGENE2_NOMINAL);

    safety_net_act();
}

/// Act two: the same governor family on a hostile slow-corner chip, with
/// silent corruptions injected below Vmin — kept safe by the net.
fn safety_net_act() {
    println!("\n=== production safety net ===");
    const SEED: u64 = 2018;
    let mut server = XGene2Server::new(SigmaBin::Tss, SEED);
    // Every run below its Vmin silently corrupts instead of crashing —
    // the nastiest possible failure mode: no error report, no hang.
    server.install_fault_plan(FaultPlan::quiet(SEED).with_sub_vmin_sdc());
    let chip = ChipProfile::corner(SigmaBin::Tss);
    let weak = chip.weakest_core();
    let mcf = by_name("mcf").expect("mcf is in the suite").profile();

    // A predictor trained on the *robust* core steers the weak one: the
    // miscalibration puts the canaries below their Vmin while the
    // workload itself stays (barely) clean. Exactly the blind spot the
    // sentinels exist for.
    let robust = chip.most_robust_core();
    let training: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            (p.clone(), chip.vmin(robust, &p, Megahertz::XGENE2_NOMINAL))
        })
        .collect();
    let predictor = VminPredictor::train(&training).expect("well-posed training set");
    let mut governor = OnlineGovernor::new(Some(predictor), None, GovernorConfig::conservative());

    let config = SafetyNetConfig {
        sentinel_every_epochs: 5,
        ..SafetyNetConfig::dsn18()
    };
    let mut net = SafetyNet::new(config);
    println!(
        "sentinels every {} epochs, trip widens margin by {} mV",
        config.sentinel_every_epochs, config.trip_margin_widen_mv
    );

    let mut last_state = net.breaker_state();
    for epoch in 0..80u32 {
        let report = net.run_epoch(&mut server, &mut governor, weak, &mcf);
        if report.breaker_state != last_state {
            println!(
                "epoch {epoch:>3}: breaker {last_state} -> {} at {} (refresh {} ms)",
                report.breaker_state,
                report.commanded,
                report.trefp.as_f64()
            );
            last_state = report.breaker_state;
        }
    }

    let sentinel = net.sentinel_stats();
    println!("after 80 guarded epochs:");
    println!(
        "  sentinel checks: {} (checksum hits {}, vote splits {}, timeouts {})",
        sentinel.checks,
        sentinel.detected_by_checksum,
        sentinel.detected_by_vote,
        sentinel.timeouts
    );
    println!(
        "  injected SDCs seen by canaries: {}, undetected: {}",
        sentinel.true_sdcs, sentinel.undetected_sdcs
    );
    println!(
        "  breaker trips: {} (last reason: {}), refresh rollbacks: {}, restores: {}",
        net.breaker_trips(),
        governor
            .stats()
            .last_trip_reason
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into()),
        net.stats().refresh_rollbacks,
        net.stats().refresh_restores
    );
    println!(
        "  guarded power savings vs nominal: {:.1}% over {} epochs ({} at nominal)",
        (1.0 - governor.stats().mean_power_ratio()) * 100.0,
        net.stats().epochs,
        net.stats().nominal_epochs
    );
    assert_eq!(sentinel.undetected_sdcs, 0, "an SDC escaped the net");
}
