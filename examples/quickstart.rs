//! Quickstart: boot a simulated X-Gene2, find one benchmark's Vmin with
//! the characterization framework, and report its guardband.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use armv8_guardbands::char_fw::runner::CampaignRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::guardband_core::guardband::Guardband;
use armv8_guardbands::power_model::units::Millivolts;
use armv8_guardbands::workload_sim::spec::by_name;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    // Boot a typical (TTT) chip. Everything is deterministic in the seed.
    let mut server = XGene2Server::new(SigmaBin::Ttt, 42);
    let core = server.chip().most_robust_core();
    println!("booted TTT X-Gene2; most robust core is {core}");

    // Undervolting campaign for one SPEC benchmark, 10 repetitions per
    // 5 mV step, exactly as in the paper.
    let bench = by_name("milc")
        .expect("milc is part of the suite")
        .profile();
    let campaign = VminCampaign::dsn18(vec![bench], vec![core]);
    let result = CampaignRunner::new(&mut server).run(&campaign);

    let vmin = result
        .vmin("milc", core)
        .expect("the schedule reaches below Vmin");
    let guardband = Guardband::new("milc", SigmaBin::Ttt, vmin, Millivolts::XGENE2_NOMINAL);
    println!(
        "milc Vmin on {core}: {vmin} (nominal {})",
        Millivolts::XGENE2_NOMINAL
    );
    println!(
        "guardband: {} mV of headroom = {:.1}% voltage / {:.1}% power-equivalent",
        guardband.margin_mv(),
        guardband.voltage_fraction() * 100.0,
        guardband.power_fraction() * 100.0
    );
    println!(
        "campaign: {} runs, {} watchdog resets",
        result.records.len(),
        result.watchdog_resets
    );
}
