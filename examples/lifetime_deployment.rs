//! Multi-year lifetime deployment: aging silicon, drifting DRAM, and
//! the maintenance discipline that keeps exploited guardbands safe.
//!
//! A 12-board fleet is cold-characterized and deployed below its
//! guardband, then aged through 48 simulated months of datacenter
//! stress. Every month the drift monitor projects each board's
//! remaining margin and CE pressure; the maintenance scheduler
//! re-characterizes the most urgent boards (warm-started from their
//! previous epoch, under a concurrency budget) before any board's
//! modeled margin reaches zero. The same fleet is then re-aged with
//! maintenance ablated, demonstrating the SDC exposure that accumulates
//! when nobody watches the drift.
//!
//! ```sh
//! cargo run --example lifetime_deployment
//! ```

use armv8_guardbands::lifetime::{run_deployment, DeploymentSpec, LifetimeConfig};

fn main() {
    let spec = DeploymentSpec::quick(12, 2018, 48);

    let maintained = run_deployment(&spec, &LifetimeConfig::with_workers(4));
    println!("{}", maintained.render());

    let ablation = run_deployment(
        &spec.clone().without_maintenance(),
        &LifetimeConfig::with_workers(4),
    );
    println!("{}", ablation.render());

    // The headline: the scheduler re-characterizes every drifting board
    // before its margin runs out — zero SDC exposure over four years —
    // while the ablated fleet operates below its aged Vmin for months.
    assert_eq!(
        maintained.chronicle.production_sdc_board_months, 0,
        "maintenance must keep every board above its aged Vmin"
    );
    assert!(
        ablation.chronicle.production_sdc_board_months > 0,
        "the ablation must show why maintenance exists"
    );
    assert!(maintained.chronicle.recharacterizations > 0);
    // Warm starts do the re-characterizations at a fraction of the cold
    // walk, and the fleet keeps most of its power savings across epochs.
    assert!(
        maintained.chronicle.warm_walked_steps * 2 <= maintained.chronicle.cold_equivalent_steps,
        "warm-started walks must cost at most half the cold walks"
    );
    assert!(maintained.chronicle.final_savings_watts() > 0.0);

    // And the whole four-year chronicle is byte-reproducible regardless
    // of how many workers play it.
    let serial = run_deployment(&spec, &LifetimeConfig::with_workers(1));
    assert_eq!(
        serial.chronicle_json(),
        maintained.chronicle_json(),
        "serial and pooled lifetime chronicles must be byte-identical"
    );
    println!("serial re-run produced byte-identical lifetime chronicle ✔");
}
