//! Fleet-scale characterization: shard the paper's campaign across a
//! simulated datacenter of X-Gene2 boards.
//!
//! A 24-board fleet is sampled from the process-corner mix, characterized
//! by a 4-worker pool through the resilient `char-fw` runner, and merged
//! into one safe-point database with population statistics and a
//! fleet-wide power projection. Boards whose safety net trips (the DMR
//! sentinels catching real sub-Vmin corruption) are evicted back to
//! nominal and re-queued once with a raised search floor — watch the
//! `fleet_board_evicted` warnings on stderr.
//!
//! The run finishes by re-running the same fleet serially and asserting
//! the headline invariant: the characterization output is byte-identical
//! to the pooled run's.
//!
//! ```sh
//! cargo run --example fleet_campaign
//! ```

use std::rc::Rc;

use armv8_guardbands::fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};
use armv8_guardbands::telemetry::sink::PrettySink;
use armv8_guardbands::telemetry::{Level, Registry, Telemetry};

fn main() {
    let spec = FleetSpec::new(24, 2018);
    let campaign = FleetCampaign::quick();

    // Coordinator-side telemetry: eviction warnings on stderr, fleet
    // counters and the margin histogram in the registry. (Each job keeps
    // its own per-thread registry; the campaign counters come back merged
    // in the report.)
    let registry = Rc::new(Registry::new());
    let pooled = {
        let _telemetry = Telemetry::new()
            .with_sink(PrettySink::stderr().with_min_level(Level::Warn))
            .with_registry(registry.clone())
            .install();
        run_fleet(&spec, &campaign, &FleetConfig::with_workers(4))
    };
    println!("{}", pooled.render());

    println!("fleet metrics:");
    for name in [
        "fleet_jobs_total",
        "fleet_requeues_total",
        "fleet_boards_characterized",
    ] {
        println!("  {name} = {}", registry.counter(name));
    }
    if let Some(margins) = registry.histogram("fleet_margin_mv") {
        println!(
            "  fleet_margin_mv: count {}, p50 {:.0} mV, p95 {:.0} mV",
            margins.count,
            margins.p50().unwrap_or(0.0),
            margins.p95().unwrap_or(0.0),
        );
    }

    // The invariant the whole crate is built around.
    let serial = run_fleet(&spec, &campaign, &FleetConfig::with_workers(1));
    assert_eq!(
        serial.characterization_json(),
        pooled.characterization_json(),
        "serial and pooled characterization must be byte-identical"
    );
    println!("\nserial re-run produced byte-identical characterization output ✔");
}
