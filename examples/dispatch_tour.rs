//! Dispatch tour: characterize a small fleet, route a minute of
//! diurnal + flash-crowd traffic across its exploited guardbands, race
//! the economic dispatcher against the nominal-only ablation, then
//! publish the run to the control plane and read it back over
//! `GET /v1/dispatch` — including the ETag revalidation path on the
//! safe-point endpoint.
//!
//! ```text
//! cargo run --release --example dispatch_tour
//! ```

use armv8_guardbands::control_plane::{
    CampaignRunner, ControlState, Method, Request, Router, ServerMetrics,
};
use armv8_guardbands::dispatch::{run_dispatch_with_store, DispatchSpec};
use armv8_guardbands::fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};
use armv8_guardbands::observatory::IncidentKind;
use std::sync::Arc;

fn get(target: &str, headers: Vec<(String, String)>) -> Request {
    Request {
        method: Method::Get,
        target: target.to_owned(),
        headers,
        body: Vec::new(),
    }
}

fn main() {
    // --- Characterize: one quick campaign over 8 boards, 4 workers.
    let boards = 8;
    let seed = 2018;
    let fleet = run_fleet(
        &FleetSpec::new(boards, seed),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(4),
    );
    let store = fleet.characterization.store;
    println!("== fleet characterized: {} safe points ==\n", store.len());

    // --- Dispatch: economic arm vs nominal-only ablation, same trace.
    let mut spec = DispatchSpec::quick(boards, seed);
    spec.maintenance.margin_threshold_mv = 100; // drain aggressively for the tour
    let economic = run_dispatch_with_store(&spec, 4, &store);
    let nominal = run_dispatch_with_store(&spec.nominal_arm(), 4, &store);
    println!("{}", economic.render());
    println!("{}", nominal.render());
    let saved = 100.0 * (1.0 - economic.chronicle.watts_per_qps / nominal.chronicle.watts_per_qps);
    println!(
        "economic dispatch serves the same {} requests {saved:.1} % cheaper per QPS\n",
        economic.chronicle.served
    );

    // --- The observatory reconstructed the maintenance drains.
    let drains = economic
        .observatory
        .incidents_of(IncidentKind::TrafficDrain)
        .count();
    println!("observatory: {drains} traffic-drain incidents reconstructed\n");

    // --- Publish to the control plane and read it back.
    let state = Arc::new(ControlState::new());
    state.roll_epoch(0, &store);
    state.set_dispatch(economic.status());
    let runner = CampaignRunner::in_memory(state.clone());
    let router = Router::new(state, runner, Arc::new(ServerMetrics::new()));

    let response = router.handle(&get("/v1/dispatch", Vec::new()));
    println!(
        "GET /v1/dispatch -> {} ({} bytes)",
        response.status,
        response.body.len()
    );

    // --- ETag revalidation on the safe-point hot path.
    let first = router.handle(&get("/v1/safe-point/0", Vec::new()));
    let tag = first.etag.clone().expect("safe points carry an etag");
    println!("GET /v1/safe-point/0 -> {} etag {tag}", first.status);
    let revalidated = router.handle(&get(
        "/v1/safe-point/0",
        vec![("if-none-match".to_owned(), tag.clone())],
    ));
    println!(
        "GET /v1/safe-point/0 (if-none-match {tag}) -> {} ({} bytes)",
        revalidated.status,
        revalidated.body.len()
    );
    assert_eq!(revalidated.status, 304);
    router.runner().drain();
    println!("\n== tour complete ==");
}
