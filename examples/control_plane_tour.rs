//! Control-plane tour: boot the serving layer, submit a characterization
//! campaign over real TCP, watch it publish an epoch, query the served
//! safe points / fleet status / Prometheus metrics, then drain and shut
//! the server down gracefully.
//!
//! ```text
//! cargo run --release --example control_plane_tour
//! ```

use armv8_guardbands::control_plane::{
    serve, CampaignRecord, CampaignRunner, CampaignSpec, CampaignState, ControlState, Router,
    SafePointView, ServerConfig, ServerMetrics, StatusSnapshot,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `connection: close` round trip; returns (status, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: tour\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

fn main() {
    // --- Boot: empty safe-point database, in-memory campaign journals,
    // four serving workers on an ephemeral port.
    let state = Arc::new(ControlState::new());
    let runner = CampaignRunner::in_memory(state.clone());
    let router = Arc::new(Router::new(state, runner, Arc::new(ServerMetrics::new())));
    let server = serve(router, ServerConfig::default()).expect("bind");
    let addr = server.addr();
    println!("== control plane serving on {addr} ==\n");

    // Before any campaign: the database is empty, lookups 404.
    let (status, _) = request(addr, "GET", "/v1/safe-point/0", "");
    println!("GET /v1/safe-point/0 before any campaign -> {status}");

    // --- Submit a campaign over the wire and poll it to completion.
    let spec = CampaignSpec::new(8, 2018);
    let (status, body) = request(
        addr,
        "POST",
        "/v1/campaigns",
        &serde::json::to_string(&spec),
    );
    println!("POST /v1/campaigns {{boards:8, seed:2018}} -> {status} {body}");
    assert_eq!(status, 202, "submission accepted");

    let deadline = Instant::now() + Duration::from_secs(60);
    let record: CampaignRecord = loop {
        let (_, body) = request(addr, "GET", "/v1/campaigns/0", "");
        let record: CampaignRecord = serde::json::from_str(&body).expect("campaign record");
        if record.state == CampaignState::Completed {
            break record;
        }
        assert!(
            Instant::now() < deadline,
            "campaign stuck in {}",
            record.state
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    println!(
        "campaign 0 completed: {} jobs, {} boards characterized, {:.1} W fleet savings, published epoch {}",
        record.executed_jobs, record.boards_characterized, record.total_savings_watts, record.epoch
    );

    // --- The published epoch is now served lock-free from the snapshot.
    println!("\nsafe points served after the rollover:");
    for board in 0..4 {
        let (_, body) = request(addr, "GET", &format!("/v1/safe-point/{board}"), "");
        let view: SafePointView = serde::json::from_str(&body).expect("safe-point view");
        println!(
            "  board {board}: epoch {} v{} pmd {:?} mV, trefp {:?} ms, margin {:?} mV, {:.1} W saved",
            view.epoch, view.snapshot_version, view.pmd_mv, view.trefp_ms, view.margin_mv,
            view.savings_watts
        );
    }

    let (_, body) = request(addr, "GET", "/v1/status", "");
    let health: StatusSnapshot = serde::json::from_str(&body).expect("status snapshot");
    println!(
        "\nfleet status: breaker {}, {} trips, {} sentinel detections, {} boards served at epoch {:?}",
        health.breaker,
        health.breaker_trips,
        health.sentinel_detections,
        health.boards_served,
        health.latest_epoch
    );

    // --- /metrics merges campaign-derived series with the server's own
    // control_plane_* family (counters, gauges, latency histograms).
    let (_, exposition) = request(addr, "GET", "/metrics", "");
    let lines: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("control_plane_requests_total") || l.starts_with("campaign_"))
        .take(8)
        .collect();
    println!("\n/metrics excerpt ({} bytes total):", exposition.len());
    for line in lines {
        println!("  {line}");
    }

    // --- Graceful shutdown: stop accepting, finish in-flight work,
    // drain the campaign runner (queued work persists for next boot).
    server.shutdown();
    println!("\nserver drained and shut down; new connections are refused:");
    println!(
        "  connect after shutdown -> {:?}",
        TcpStream::connect(addr).is_err()
    );
}
