//! Evolve a dI/dt virus with the genetic algorithm, then use it to expose
//! inter-chip process variation (Figs. 6 and 7).
//!
//! ```sh
//! cargo run --example virus_evolution
//! ```

use armv8_guardbands::guardband_core::vmin::{characterize_chip, virus_margins};
use armv8_guardbands::stress_gen::ga::{evolve, GaConfig};
use armv8_guardbands::stress_gen::micro::MicroVirus;
use armv8_guardbands::workload_sim::nas::NAS_SUITE;
use armv8_guardbands::xgene_sim::em::EmProbe;
use armv8_guardbands::xgene_sim::pdn::PdnModel;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    // The X-Gene2 exposes no on-die droop probe, so fitness is the
    // amplitude of simulated electromagnetic emanations at the PDN's
    // resonance (~50 MHz).
    let pdn = PdnModel::xgene2();
    println!(
        "PDN first-order resonance: {:.1} MHz, peak impedance {:.2} mΩ",
        pdn.resonant_frequency_hz() / 1e6,
        pdn.peak_impedance_ohms() * 1000.0
    );

    let mut probe = EmProbe::new(pdn, 3);
    let result = evolve(&GaConfig::dsn18(), &mut probe);
    println!(
        "GA evolved {} generations: best EM amplitude {:.2} -> {:.2}",
        result.best_per_generation.len(),
        result.best_per_generation.first().unwrap_or(&0.0),
        result.champion_fitness
    );
    let (_, period) = result.champion.current_trace();
    println!(
        "champion loop: {} ({:.1} MHz repetition rate)",
        result.champion,
        1.0 / period / 1e6
    );
    let virus = result.champion_profile(&pdn);
    println!(
        "champion profile: activity {:.2}, swing {:.2}, resonance alignment {:.2}\n",
        virus.activity(),
        virus.swing(),
        virus.resonance_alignment()
    );

    // Fig. 6: virus Vmin vs the NAS suite on the TTT chip.
    let nas: Vec<_> = NAS_SUITE.iter().map(|k| k.profile()).collect();
    let nas_series = characterize_chip(SigmaBin::Ttt, &nas, 3);
    println!("Fig. 6 — Vmin on TTT (most robust core):");
    for (name, vmin) in &nas_series.vmins {
        println!("  {name:<6} {vmin}");
    }

    // Fig. 7: the virus exposes inter-chip variation.
    println!("\nFig. 7 — virus margins per corner:");
    for (bin, vmin, margin) in virus_margins(&virus, 3) {
        println!("  {bin}: virus Vmin {vmin}, margin {margin} mV below nominal");
    }

    // Component-targeted micro-viruses isolate cache vs pipeline failures.
    println!("\ncomponent micro-viruses (residency verified in the cache simulator):");
    for v in MicroVirus::component_suite() {
        match v.residency_hit_ratio() {
            Some(hit) => println!("  {:<12} target {}, hit ratio {:.3}", v.name, v.target, hit),
            None => println!("  {:<12} target {} (no memory footprint)", v.name, v.target),
        }
    }
}
