//! Fleet observatory tour: replay the red-team attack and the aging
//! ablation under full observation, then walk the merged timeline, the
//! reconstructed incidents, the early warnings, and the Chrome trace
//! export.
//!
//! ```text
//! cargo run --release --example observatory_tour
//! ```

use armv8_guardbands::fleet::population::FleetSpec;
use armv8_guardbands::lifetime::deployment::{
    run_deployment, DeploymentSpec, LifetimeConfig, LIFETIME_MARGIN_METRIC,
};
use armv8_guardbands::observatory::IncidentKind;
use armv8_guardbands::redteam::{replay_observatory, AttackScenario, REDTEAM_DROOP_METRIC};
use armv8_guardbands::workload_sim::tenant::benign_neighbor;
use armv8_guardbands::xgene_sim::workload::WorkloadProfile;

fn main() {
    // --- Scenario 1: a crafted dI/dt virus against the hardened net.
    // The attack stays dormant for 8 epochs, then couples its droop
    // into every victim on the shared PDN.
    let fleet = FleetSpec::new(6, 2018);
    let scenario = AttackScenario::hardened(40).with_onset(8);
    let virus = WorkloadProfile::builder("tour-virus")
        .activity(1.0)
        .swing(1.0)
        .resonance_alignment(0.9)
        .build();

    println!("== red-team attack under observation ==\n");
    let (reports, observatory) = replay_observatory(&fleet, Some(&virus), &scenario, 4);
    print!("{}", observatory.render());

    println!("\nearly warnings vs the net's own detection:");
    for report in &reports {
        let Some(warning) = observatory.first_warning(report.board, REDTEAM_DROOP_METRIC) else {
            continue;
        };
        println!(
            "  board {}: droop spike warned at epoch {:>2} (z={:>5.1}); net detected at {:?}, quarantined {}",
            report.board, warning.epoch, warning.zscore, report.detection_epoch, report.attacker_quarantined
        );
    }

    // The merged timeline is byte-identical for any worker count and
    // exports straight into chrome://tracing / Perfetto.
    let trace = observatory.timeline.to_chrome_trace();
    println!(
        "\ntimeline: {} causally ordered events, {} bytes of Chrome trace JSON",
        observatory.timeline.len(),
        trace.len()
    );

    // Control arm: a benign off-resonance neighbor raises nothing.
    let (_, benign) = replay_observatory(&fleet, Some(&benign_neighbor()), &scenario, 4);
    println!(
        "benign-neighbor control arm: {} incidents, {} warnings, {} alerts",
        benign.incidents.len(),
        benign.warnings.len(),
        benign.alerts.len()
    );

    // --- Scenario 2: the aging ablation. With maintenance disabled,
    // silicon margins decay until production SDCs appear; the
    // margin-drift detector sees them coming months ahead.
    println!("\n== aging ablation under observation ==\n");
    let spec = DeploymentSpec::quick(12, 2018, 48).without_maintenance();
    let deployment = run_deployment(&spec, &LifetimeConfig::with_workers(4));
    print!("{}", deployment.observatory.render());

    println!("\nmargin-drift warnings vs first SDC exposure:");
    let mut exposed: Vec<u32> = deployment
        .observatory
        .incidents_of(IncidentKind::ProductionSdc)
        .map(|i| i.board)
        .collect();
    exposed.sort_unstable();
    exposed.dedup();
    for board in exposed {
        let warning = deployment
            .observatory
            .first_warning(board, LIFETIME_MARGIN_METRIC)
            .expect("every exposed board warned first");
        let first_sdc = deployment
            .observatory
            .incidents_of(IncidentKind::ProductionSdc)
            .filter(|i| i.board == board)
            .map(|i| i.trigger_epoch)
            .min()
            .expect("board has an exposure");
        println!(
            "  board {board}: drift warned at month {:>2}, first SDC at month {:>2} ({} months of lead)",
            warning.epoch,
            first_sdc,
            first_sdc.saturating_sub(warning.epoch)
        );
    }
}
