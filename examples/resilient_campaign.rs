//! Resilient campaign execution: a Vmin campaign that survives a hostile
//! harness — failed power cycles, boot loops, silently dropped V/F
//! restores — retries with exponential backoff, quarantines setups that
//! keep crashing the board, and resumes bit-identically from a JSON
//! checkpoint after being "killed" mid-flight.
//!
//! The first pass runs with the telemetry layer installed: a pretty
//! printer on stderr shows the live `campaign` / `setup` / `run` span
//! tree with retry and quarantine events, a flight recorder snapshots
//! the lead-up to the first quarantine, and a metrics registry counts
//! everything for a Prometheus-style exposition at the end.
//!
//! ```sh
//! cargo run --example resilient_campaign
//! ```

use std::rc::Rc;

use armv8_guardbands::char_fw::report::{campaign_metrics, quarantine_to_csv};
use armv8_guardbands::char_fw::resilience::{CampaignCheckpoint, ResilienceConfig};
use armv8_guardbands::char_fw::runner::ResilientRunner;
use armv8_guardbands::char_fw::setup::VminCampaign;
use armv8_guardbands::telemetry::sink::PrettySink;
use armv8_guardbands::telemetry::{FlightRecorder, Level, Registry, Telemetry};
use armv8_guardbands::workload_sim::spec::by_name;
use armv8_guardbands::xgene_sim::fault::FaultPlan;
use armv8_guardbands::xgene_sim::server::XGene2Server;
use armv8_guardbands::xgene_sim::sigma::SigmaBin;

fn main() {
    // A slow-corner chip, its weakest core, and coarse 150 mV steps: the
    // second setup sits deep in the crash zone, so the board goes down
    // hard — exactly what the recovery machinery is for.
    let bench = by_name("milc")
        .expect("milc is part of the suite")
        .profile();
    let make_campaign = || {
        let mut c = VminCampaign::dsn18(vec![bench.clone()], vec![]);
        c.step_mv = 150;
        c
    };

    // The hostile harness: a 40 % chance that a power cycle leaves the
    // board hung, occasional boot loops and lost voltage restores — plus
    // one forced hang (reset 0) and one forced lost restore (write 10,
    // the first write at the second voltage step) so the demo always
    // shows every failure class.
    let plan = FaultPlan::quiet(7)
        .with_power_cycle_failure_rate(0.4)
        .with_boot_loop_rate(0.1)
        .with_setup_loss_rate(0.02)
        .force_hang_at(0)
        .force_setup_loss_at(10);

    let mut server = XGene2Server::new(SigmaBin::Tss, 56);
    let core = server.chip().weakest_core();
    server.install_fault_plan(plan.clone());
    let mut campaign = make_campaign();
    campaign.cores = vec![core];
    println!("booted TSS X-Gene2 under a hostile fault plan; testing {core}");

    // Reference: the same campaign uninterrupted — and fully observed.
    // The pretty printer narrates the span tree on stderr, the flight
    // recorder keeps the last 256 events for the post-mortem, and the
    // registry counts everything.
    let recorder = Rc::new(FlightRecorder::new());
    let registry = Rc::new(Registry::new());
    let reference = {
        let _telemetry = Telemetry::new()
            .with_sink(PrettySink::stderr().with_min_level(Level::Debug))
            .with_shared_sink(recorder.clone())
            .with_registry(registry.clone())
            .install();
        ResilientRunner::new(&mut server, campaign.clone(), ResilienceConfig::dsn18())
            .run_to_completion()
    };

    // The quarantine event fires at `Error` level, so the recorder took a
    // post-mortem snapshot of everything leading up to it.
    let dumps = recorder.dumps();
    assert!(
        !dumps.is_empty(),
        "the quarantine must have triggered a dump"
    );
    let dump = &dumps[0];
    assert_eq!(dump.trigger_name, "quarantine");
    assert!(
        dump.events.len() >= 64,
        "the post-mortem retains plenty of context, got {}",
        dump.events.len()
    );
    println!(
        "\nflight recorder: {} dump(s); first triggered by `{}` at seq {} with {} events of lead-up",
        dumps.len(),
        dump.trigger_name,
        dump.trigger_seq,
        dump.events.len() - 1
    );
    println!("last five events before the quarantine:");
    for e in dump.events.iter().rev().take(6).rev() {
        println!("  {}", e.render());
    }

    // Now the same campaign, "killed" after 5 runs and resumed from the
    // serialized checkpoint on a brand-new server object. This pass runs
    // without any telemetry context — the instrumentation is inert.
    let mut victim = XGene2Server::new(SigmaBin::Tss, 56);
    victim.install_fault_plan(plan);
    let mut runner = ResilientRunner::new(&mut victim, campaign, ResilienceConfig::dsn18());
    for _ in 0..5 {
        runner.step();
    }
    let json = runner.checkpoint().to_json();
    drop(runner);
    println!(
        "\nkilled the campaign mid-flight; checkpoint is {} bytes of JSON",
        json.len()
    );

    let mut fresh = XGene2Server::new(SigmaBin::Tff, 0); // any state: overwritten
    let checkpoint = CampaignCheckpoint::from_json(&json).expect("checkpoint decodes");
    let resumed = ResilientRunner::resume(&mut fresh, checkpoint).run_to_completion();
    assert_eq!(reference, resumed, "resume must be bit-identical");
    println!("resumed campaign is bit-identical to the uninterrupted one");

    let vmin = resumed.vmin("milc", core).expect("a safe setup exists");
    println!("\nmilc Vmin on {core}: {vmin} — measured through the hostile harness");

    let r = &resumed.recovery;
    println!("\nrecovery summary:");
    println!("  failed power cycles : {}", r.failed_power_cycles);
    println!("  reset retries       : {}", r.reset_retries);
    println!("  backoff bookkept    : {} ms", r.total_backoff_ms);
    println!("  V/F restores        : {}", r.setup_restores);
    println!("  quarantined points  : {}", r.quarantined_points);
    assert!(r.failed_power_cycles >= 1, "the forced hang fired");
    assert!(r.setup_restores >= 1, "the forced lost restore fired");
    assert!(r.quarantined_points >= 1, "the crash point was quarantined");

    println!("\nquarantine report:\n{}", quarantine_to_csv(&resumed));

    // Live counters from the observed pass, Prometheus-style.
    println!("live metrics from the observed pass (excerpt):");
    for line in registry
        .prometheus()
        .lines()
        .filter(|l| !l.starts_with("# ") && !l.contains("_bucket"))
        .take(12)
    {
        println!("  {line}");
    }

    // And the post-hoc registry derived from the result alone — same
    // families of numbers, no telemetry context required.
    let derived = campaign_metrics(&resumed);
    assert_eq!(
        derived.counter("campaign_runs_total"),
        registry.counter("campaign_runs_total"),
        "live and derived run counters agree"
    );
    println!(
        "\npost-hoc campaign_metrics agrees: {} runs, {} quarantines",
        derived.counter("campaign_runs_total"),
        derived.counter("campaign_quarantines_total")
    );
}
