//! Genetic algorithm that evolves dI/dt viruses guided by EM emanations.
//!
//! Following the methodology of \[14\] (Hadjilambrou, IEEE CAL'17), the GA
//! "crafts a loop of instructions that maximizes radiated EM amplitude":
//! tournament selection, single-point crossover, per-slot mutation, and
//! elitism, with the simulated near-field probe as the fitness function.
//! The winning loops alternate between high- and low-power instruction
//! bursts at a period matching the PDN's first-order resonance.

use crate::isa::{InstrClass, VirusGenome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xgene_sim::em::EmProbe;
use xgene_sim::pdn::PdnModel;
use xgene_sim::workload::WorkloadProfile;

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Genome length in instruction slots.
    pub genome_slots: usize,
    /// Per-slot mutation probability.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GaConfig {
    /// The configuration used for the paper-style virus search.
    pub fn dsn18() -> Self {
        GaConfig {
            population: 40,
            generations: 80,
            genome_slots: 48,
            mutation_rate: 0.06,
            tournament: 3,
            elites: 2,
            seed: 7,
        }
    }
}

/// Fitness trajectory and winner of one evolution run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionResult {
    /// The fittest genome found.
    pub champion: VirusGenome,
    /// The champion's EM amplitude (probe units).
    pub champion_fitness: f64,
    /// Best fitness per generation.
    pub best_per_generation: Vec<f64>,
}

impl EvolutionResult {
    /// Converts the champion into a workload profile for the Vmin model.
    ///
    /// Activity, swing and resonance alignment are derived from the
    /// evolved loop's actual current waveform.
    pub fn champion_profile(&self, pdn: &PdnModel) -> WorkloadProfile {
        genome_profile("em-virus", &self.champion, pdn)
    }
}

/// Derives a [`WorkloadProfile`] from a genome's electrical behaviour.
pub fn genome_profile(name: &str, genome: &VirusGenome, pdn: &PdnModel) -> WorkloadProfile {
    let (trace, period) = genome.current_trace();
    let max_draw = InstrClass::SimdFma.current_amps();
    let min_draw = InstrClass::Nop.current_amps();
    let activity = ((genome.mean_current() - min_draw) / (max_draw - min_draw)).clamp(0.0, 1.0);
    let swing = (genome.current_swing() / (max_draw - min_draw)).clamp(0.0, 1.0);

    // Resonance alignment: fraction of the waveform's harmonic content
    // that lands inside the PDN's resonance band, normalized so an ideal
    // square wave at the resonant frequency saturates at 1.0 (its
    // fundamental carries ~59 % of the summed harmonic amplitudes; the
    // 0.55 normalizer leaves slack for imperfect evolved loops).
    let spec = xgene_sim::pdn::spectrum(&trace, period, 8);
    let f0 = pdn.resonant_frequency_hz();
    let bw = f0 / 3.0;
    let total: f64 = spec.iter().map(|(_, a)| a).sum();
    let in_band: f64 = spec
        .iter()
        .filter(|(f, _)| (f - f0).abs() < bw)
        .map(|(_, a)| a)
        .sum();
    let alignment = if total <= 1e-12 {
        0.0
    } else {
        ((in_band / total) / 0.55).clamp(0.0, 1.0)
    };

    WorkloadProfile::builder(name)
        .activity(activity)
        .swing(swing)
        .resonance_alignment(alignment)
        .memory_intensity(0.02)
        .ipc(1.0)
        .build()
}

/// Evolves a dI/dt virus against the given probe.
///
/// # Examples
///
/// ```no_run
/// use stress_gen::ga::{evolve, GaConfig};
/// use xgene_sim::em::EmProbe;
/// use xgene_sim::pdn::PdnModel;
///
/// let pdn = PdnModel::xgene2();
/// let mut probe = EmProbe::new(pdn, 1);
/// let result = evolve(&GaConfig::dsn18(), &mut probe);
/// println!("virus EM amplitude: {:.2}", result.champion_fitness);
/// ```
pub fn evolve(config: &GaConfig, probe: &mut EmProbe) -> EvolutionResult {
    evolve_batched(config, |genomes| {
        genomes.iter().map(|g| fitness(g, probe)).collect()
    })
}

/// Evolves with a caller-supplied batch fitness function.
///
/// `eval` receives the whole generation at once (in population order) and
/// must return one score per genome, in the same order. This lets callers
/// farm the expensive evaluations out to a worker pool — the GA's own RNG
/// is never touched during evaluation, so any parallel schedule that
/// returns scores in population order reproduces [`evolve`] exactly.
///
/// # Panics
///
/// Panics if `eval` returns a different number of scores than genomes, or
/// on the same config violations as [`evolve`].
pub fn evolve_batched(
    config: &GaConfig,
    mut eval: impl FnMut(&[VirusGenome]) -> Vec<f64>,
) -> EvolutionResult {
    assert!(config.population >= 2, "population must be at least 2");
    assert!(
        config.elites < config.population,
        "elites must leave room for offspring"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut population: Vec<VirusGenome> = (0..config.population)
        .map(|_| random_genome(&mut rng, config.genome_slots))
        .collect();

    let mut best_per_generation = Vec::with_capacity(config.generations);
    let mut champion = population[0].clone();
    let mut champion_fitness = f64::MIN;

    for _gen in 0..config.generations {
        let scores = eval(&population);
        assert_eq!(
            scores.len(),
            population.len(),
            "eval must score every genome"
        );
        let mut scored: Vec<(f64, VirusGenome)> =
            scores.into_iter().zip(population.drain(..)).collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        if scored[0].0 > champion_fitness {
            champion_fitness = scored[0].0;
            champion = scored[0].1.clone();
        }
        best_per_generation.push(scored[0].0);

        // Elites survive unchanged.
        let mut next: Vec<VirusGenome> = scored
            .iter()
            .take(config.elites)
            .map(|(_, g)| g.clone())
            .collect();
        // Offspring by tournament selection + crossover + mutation.
        while next.len() < config.population {
            let a = tournament(&scored, config.tournament, &mut rng);
            let b = tournament(&scored, config.tournament, &mut rng);
            let mut child = crossover(a, b, &mut rng);
            mutate(&mut child, config.mutation_rate, &mut rng);
            next.push(child);
        }
        population = next;
    }

    EvolutionResult {
        champion,
        champion_fitness,
        best_per_generation,
    }
}

/// EM-amplitude fitness of one genome.
pub fn fitness(genome: &VirusGenome, probe: &mut EmProbe) -> f64 {
    let (trace, period) = genome.current_trace();
    probe.measure(&trace, period)
}

fn random_genome(rng: &mut StdRng, slots: usize) -> VirusGenome {
    VirusGenome::new(
        (0..slots.max(1))
            .map(|_| InstrClass::ALL[rng.gen_range(0..InstrClass::ALL.len())])
            .collect(),
    )
}

fn tournament<'a>(scored: &'a [(f64, VirusGenome)], k: usize, rng: &mut StdRng) -> &'a VirusGenome {
    let mut best: Option<&(f64, VirusGenome)> = None;
    for _ in 0..k.max(1) {
        let cand = &scored[rng.gen_range(0..scored.len())];
        if best.map(|b| cand.0 > b.0).unwrap_or(true) {
            best = Some(cand);
        }
    }
    &best.expect("tournament saw at least one candidate").1
}

fn crossover(a: &VirusGenome, b: &VirusGenome, rng: &mut StdRng) -> VirusGenome {
    let cut = rng.gen_range(1..a.slots().len().min(b.slots().len()));
    let mut slots = a.slots()[..cut].to_vec();
    slots.extend_from_slice(&b.slots()[cut..]);
    VirusGenome::new(slots)
}

fn mutate(genome: &mut VirusGenome, rate: f64, rng: &mut StdRng) {
    for slot in genome.slots_mut() {
        if rng.gen::<f64>() < rate {
            *slot = InstrClass::ALL[rng.gen_range(0..InstrClass::ALL.len())];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_small() -> EvolutionResult {
        let pdn = PdnModel::xgene2();
        let mut probe = EmProbe::new(pdn, 3);
        let config = GaConfig {
            population: 24,
            generations: 40,
            genome_slots: 48,
            mutation_rate: 0.08,
            tournament: 3,
            elites: 2,
            seed: 11,
        };
        evolve(&config, &mut probe)
    }

    #[test]
    fn fitness_improves_over_generations() {
        let result = run_small();
        let early: f64 = result.best_per_generation[..5].iter().sum::<f64>() / 5.0;
        let late: f64 = result.best_per_generation[result.best_per_generation.len() - 5..]
            .iter()
            .sum::<f64>()
            / 5.0;
        assert!(late > early * 1.3, "early {early}, late {late}");
    }

    #[test]
    fn champion_beats_steady_loops() {
        let pdn = PdnModel::xgene2();
        let mut probe = EmProbe::new(pdn, 3);
        let result = run_small();
        let steady_hot = VirusGenome::new(vec![InstrClass::SimdFma; 48]);
        let steady_cold = VirusGenome::new(vec![InstrClass::Nop; 48]);
        assert!(result.champion_fitness > 2.0 * fitness(&steady_hot, &mut probe));
        assert!(result.champion_fitness > 2.0 * fitness(&steady_cold, &mut probe));
    }

    #[test]
    fn champion_oscillates_near_resonance() {
        let pdn = PdnModel::xgene2();
        let result = run_small();
        let (trace, period) = result.champion.current_trace();
        // The loop's strongest harmonic should fall within a third of an
        // octave of the PDN resonance.
        let spec = xgene_sim::pdn::spectrum(&trace, period, 8);
        let (f_peak, _) = spec
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let f0 = pdn.resonant_frequency_hz();
        assert!(
            f_peak / f0 > 0.55 && f_peak / f0 < 1.8,
            "peak harmonic at {f_peak}, resonance {f0}"
        );
    }

    #[test]
    fn champion_profile_has_high_resonant_energy() {
        let pdn = PdnModel::xgene2();
        let result = run_small();
        let profile = result.champion_profile(&pdn);
        assert!(profile.resonance_alignment() > 0.6, "{profile:?}");
        assert!(profile.swing() > 0.7, "{profile:?}");
    }

    #[test]
    fn evolution_is_deterministic() {
        let a = run_small();
        let b = run_small();
        assert_eq!(a.champion, b.champion);
    }

    #[test]
    fn batched_evolution_reproduces_the_sequential_path() {
        let pdn = PdnModel::xgene2();
        let mut probe = EmProbe::new(pdn, 3);
        let config = GaConfig {
            population: 24,
            generations: 40,
            genome_slots: 48,
            mutation_rate: 0.08,
            tournament: 3,
            elites: 2,
            seed: 11,
        };
        let batched = evolve_batched(&config, |genomes| {
            genomes.iter().map(|g| fitness(g, &mut probe)).collect()
        });
        let sequential = run_small();
        assert_eq!(batched, sequential);
    }
}
