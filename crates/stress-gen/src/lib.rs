//! Stress-test generation for the DSN'18 guardband study.
//!
//! Two families of diagnostics:
//!
//! * [`ga`] — the genetic algorithm that evolves **dI/dt viruses** (loops
//!   maximizing simulated EM emanations, and therefore resonant voltage
//!   noise), reproducing the methodology the paper uses because the
//!   X-Gene2 has no fine-grained on-die voltage probe;
//! * [`micro`] — hand-crafted **micro-viruses** isolating individual
//!   components (L1I/L1D/L2/L3 SRAM arrays, integer and FP ALUs) so
//!   failures can be attributed to cache or pipeline logic;
//!
//! with [`isa`] providing the instruction-class and virus-genome
//! representation both build on, and [`exec`] lowering viruses to
//! micro-ops and *executing* them on the in-order core model so their
//! electrical profiles are measured rather than annotated.
//!
//! # Examples
//!
//! Evolve a dI/dt virus and inspect its electrical profile:
//!
//! ```no_run
//! use stress_gen::ga::{evolve, GaConfig};
//! use xgene_sim::em::EmProbe;
//! use xgene_sim::pdn::PdnModel;
//!
//! let pdn = PdnModel::xgene2();
//! let mut probe = EmProbe::new(pdn, 1);
//! let result = evolve(&GaConfig::dsn18(), &mut probe);
//! let profile = result.champion_profile(&pdn);
//! assert!(profile.resonance_alignment() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod ga;
pub mod isa;
pub mod micro;

pub use exec::{execute_genome, lower_genome, measured_profile};
pub use ga::{evolve, EvolutionResult, GaConfig};
pub use isa::{InstrClass, VirusGenome};
pub use micro::MicroVirus;
