//! Instruction classes and virus-loop genomes.
//!
//! dI/dt viruses are instruction loops; what matters electrically is each
//! instruction's current draw and duration. We model the ARMv8 classes the
//! GA composes loops from — from idle NOPs up to 128-bit SIMD FMA bursts —
//! and synthesize the loop's periodic current waveform, which the PDN/EM
//! models consume.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Core clock used for trace synthesis (2.4 GHz).
pub const CORE_CLOCK_HZ: f64 = 2.4e9;

/// An instruction class with its electrical character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstrClass {
    /// `nop` — pipeline idles.
    Nop,
    /// Dependent integer add chain — low draw.
    IntAdd,
    /// Integer multiply — moderate draw.
    IntMul,
    /// Scalar FP multiply-add.
    FpMadd,
    /// 128-bit SIMD fused multiply-add — the highest-draw instruction.
    SimdFma,
    /// L1-resident load.
    L1Load,
    /// L2-resident load (stalls the pipeline briefly).
    L2Load,
    /// Branch with predictable target.
    Branch,
}

impl InstrClass {
    /// Every class the generator may pick.
    pub const ALL: [InstrClass; 8] = [
        InstrClass::Nop,
        InstrClass::IntAdd,
        InstrClass::IntMul,
        InstrClass::FpMadd,
        InstrClass::SimdFma,
        InstrClass::L1Load,
        InstrClass::L2Load,
        InstrClass::Branch,
    ];

    /// Per-core current draw while this instruction executes, in amps.
    pub fn current_amps(self) -> f64 {
        match self {
            InstrClass::Nop => 0.6,
            InstrClass::IntAdd => 1.4,
            InstrClass::IntMul => 1.9,
            InstrClass::FpMadd => 2.6,
            InstrClass::SimdFma => 3.4,
            InstrClass::L1Load => 1.7,
            InstrClass::L2Load => 1.1,
            InstrClass::Branch => 1.2,
        }
    }

    /// Occupancy in core cycles (issue-to-issue, single-issue model).
    pub fn cycles(self) -> u32 {
        match self {
            InstrClass::Nop => 1,
            InstrClass::IntAdd => 1,
            InstrClass::IntMul => 3,
            InstrClass::FpMadd => 4,
            InstrClass::SimdFma => 4,
            InstrClass::L1Load => 2,
            InstrClass::L2Load => 9,
            InstrClass::Branch => 1,
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Nop => "nop",
            InstrClass::IntAdd => "add",
            InstrClass::IntMul => "mul",
            InstrClass::FpMadd => "fmadd",
            InstrClass::SimdFma => "simd-fma",
            InstrClass::L1Load => "ldr-l1",
            InstrClass::L2Load => "ldr-l2",
            InstrClass::Branch => "b",
        };
        f.write_str(s)
    }
}

/// A candidate virus: a loop of instruction slots.
///
/// # Examples
///
/// ```
/// use stress_gen::isa::{InstrClass, VirusGenome};
///
/// let genome = VirusGenome::new(vec![InstrClass::SimdFma; 8]);
/// let (trace, period) = genome.current_trace();
/// assert!(!trace.is_empty());
/// assert!(period > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VirusGenome {
    slots: Vec<InstrClass>,
}

impl VirusGenome {
    /// Creates a genome from explicit slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty.
    pub fn new(slots: Vec<InstrClass>) -> Self {
        assert!(!slots.is_empty(), "genome must have at least one slot");
        VirusGenome { slots }
    }

    /// The loop body.
    pub fn slots(&self) -> &[InstrClass] {
        &self.slots
    }

    /// Mutable access for GA operators.
    pub(crate) fn slots_mut(&mut self) -> &mut Vec<InstrClass> {
        &mut self.slots
    }

    /// Loop duration in core cycles.
    pub fn cycles(&self) -> u32 {
        self.slots.iter().map(|i| i.cycles()).sum()
    }

    /// Loop period in seconds at the nominal clock.
    pub fn period_s(&self) -> f64 {
        f64::from(self.cycles()) / CORE_CLOCK_HZ
    }

    /// Synthesizes one period of the loop's current waveform, one sample
    /// per core cycle: `(samples, period_seconds)`.
    pub fn current_trace(&self) -> (Vec<f64>, f64) {
        let mut samples = Vec::with_capacity(self.cycles() as usize);
        for instr in &self.slots {
            for _ in 0..instr.cycles() {
                samples.push(instr.current_amps());
            }
        }
        (samples, self.period_s())
    }

    /// Mean current over the loop, in amps.
    pub fn mean_current(&self) -> f64 {
        let (trace, _) = self.current_trace();
        trace.iter().sum::<f64>() / trace.len() as f64
    }

    /// Peak-to-trough current swing over the loop, in amps.
    pub fn current_swing(&self) -> f64 {
        let (trace, _) = self.current_trace();
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        let min = trace.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

impl fmt::Display for VirusGenome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop[{} slots, {} cycles]",
            self.slots.len(),
            self.cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_is_the_hungriest() {
        for class in InstrClass::ALL {
            assert!(class.current_amps() <= InstrClass::SimdFma.current_amps());
        }
    }

    #[test]
    fn trace_length_matches_cycles() {
        let g = VirusGenome::new(vec![
            InstrClass::IntMul,
            InstrClass::Nop,
            InstrClass::SimdFma,
        ]);
        let (trace, period) = g.current_trace();
        assert_eq!(trace.len(), 8); // 3 + 1 + 4 cycles
        assert!((period - 8.0 / CORE_CLOCK_HZ).abs() < 1e-18);
    }

    #[test]
    fn swing_of_alternating_loop() {
        let g = VirusGenome::new(vec![InstrClass::SimdFma, InstrClass::Nop]);
        let expected = InstrClass::SimdFma.current_amps() - InstrClass::Nop.current_amps();
        assert!((g.current_swing() - expected).abs() < 1e-12);
    }

    #[test]
    fn mean_current_is_bounded_by_extremes() {
        let g = VirusGenome::new(vec![
            InstrClass::IntAdd,
            InstrClass::FpMadd,
            InstrClass::L2Load,
        ]);
        let m = g.mean_current();
        assert!(m > InstrClass::Nop.current_amps());
        assert!(m < InstrClass::SimdFma.current_amps());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_empty_genome() {
        let _ = VirusGenome::new(vec![]);
    }
}
