//! Executing viruses on the core model: instead of annotating a virus's
//! electrical profile by hand, lower its instruction loop to micro-ops,
//! run it on the in-order pipeline against the cache hierarchy, and derive
//! the profile from the *measured* waveform and counters.

use crate::isa::{InstrClass, VirusGenome};
use crate::micro::MicroVirus;
use xgene_sim::hierarchy::CacheHierarchy;
use xgene_sim::pdn::PdnModel;
use xgene_sim::pipeline::{ExecUnit, ExecutionReport, InOrderCore, MicroOp};
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// Lowers one instruction class to a micro-op (memory ops walk `addr`).
fn lower(instr: InstrClass, next_addr: &mut u64) -> MicroOp {
    let unit = match instr {
        InstrClass::Nop => ExecUnit::None,
        InstrClass::IntAdd | InstrClass::IntMul => ExecUnit::IntAlu,
        InstrClass::FpMadd | InstrClass::SimdFma => ExecUnit::FpSimd,
        InstrClass::L1Load | InstrClass::L2Load => ExecUnit::LoadStore,
        InstrClass::Branch => ExecUnit::Branch,
    };
    match instr {
        InstrClass::L1Load => {
            // Walk a 16 KiB window — stays L1-resident.
            let addr = *next_addr % (16 * 1024);
            *next_addr = next_addr.wrapping_add(64);
            MicroOp::load(addr, instr.current_amps())
        }
        InstrClass::L2Load => {
            // Walk a 192 KiB window — fits L2, overflows L1.
            let addr = *next_addr % (192 * 1024);
            *next_addr = next_addr.wrapping_add(64);
            MicroOp::load(addr, instr.current_amps())
        }
        _ => MicroOp::compute(unit, instr.cycles(), instr.current_amps()),
    }
}

/// Lowers a genome to its micro-op loop body.
pub fn lower_genome(genome: &VirusGenome) -> Vec<MicroOp> {
    let mut next_addr = 0u64;
    genome
        .slots()
        .iter()
        .map(|i| lower(*i, &mut next_addr))
        .collect()
}

/// Executes a genome on `core` and returns the execution report.
pub fn execute_genome(
    genome: &VirusGenome,
    hierarchy: &mut CacheHierarchy,
    core: CoreId,
    iterations: u32,
) -> ExecutionReport {
    let body = lower_genome(genome);
    InOrderCore::new(core).execute(hierarchy, &body, iterations)
}

/// A virus profile derived from *measured* execution: activity/swing from
/// the waveform, memory intensity from the counters, and resonance
/// alignment from the measured loop period against the PDN.
pub fn measured_profile(
    name: &str,
    genome: &VirusGenome,
    hierarchy: &mut CacheHierarchy,
    pdn: &PdnModel,
) -> WorkloadProfile {
    let report = execute_genome(genome, hierarchy, CoreId::new(0), 64);
    let base = report.profile(
        name,
        InstrClass::Nop.current_amps(),
        InstrClass::SimdFma.current_amps(),
    );
    // Recover the resonance alignment from the executed waveform.
    let period_s = report.current_trace.len() as f64 / crate::isa::CORE_CLOCK_HZ;
    if report.current_trace.is_empty() || period_s <= 0.0 {
        return base;
    }
    let spec = xgene_sim::pdn::spectrum(&report.current_trace, period_s, 8);
    let f0 = pdn.resonant_frequency_hz();
    let bw = f0 / 3.0;
    let total: f64 = spec.iter().map(|(_, a)| a).sum();
    let in_band: f64 = spec
        .iter()
        .filter(|(f, _)| (f - f0).abs() < bw)
        .map(|(_, a)| a)
        .sum();
    let alignment = if total <= 1e-12 {
        0.0
    } else {
        ((in_band / total) / 0.55).clamp(0.0, 1.0)
    };
    WorkloadProfile::builder(name)
        .activity(base.activity())
        .swing(base.swing())
        .resonance_alignment(alignment)
        .memory_intensity(base.memory_intensity())
        .ipc(base.ipc())
        .target(base.target())
        .build()
}

impl MicroVirus {
    /// Executes this micro-virus on the pipeline and reports its measured
    /// IPC and DRAM ratio (ALU viruses never touch memory; cache viruses
    /// stay inside their target level, so neither reaches DRAM).
    pub fn execute(&self, hierarchy: &mut CacheHierarchy, iterations: u32) -> ExecutionReport {
        execute_genome(&self.genome, hierarchy, CoreId::new(0), iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::{evolve, GaConfig};
    use xgene_sim::em::EmProbe;

    #[test]
    fn evolved_virus_measures_resonant_on_the_pipeline() {
        let pdn = PdnModel::xgene2();
        let mut probe = EmProbe::new(pdn, 5);
        let config = GaConfig {
            population: 24,
            generations: 30,
            ..GaConfig::dsn18()
        };
        let result = evolve(&config, &mut probe);
        let mut h = CacheHierarchy::xgene2();
        let profile = measured_profile("em-virus", &result.champion, &mut h, &pdn);
        assert!(profile.swing() > 0.6, "{profile:?}");
        assert!(profile.resonance_alignment() > 0.4, "{profile:?}");
    }

    #[test]
    fn alu_viruses_never_reach_dram() {
        let mut h = CacheHierarchy::xgene2();
        let report = MicroVirus::fp_alu().execute(&mut h, 16);
        assert_eq!(report.dram_ratio, 0.0);
        assert!((report.ipc() - 0.25).abs() < 0.01, "SIMD FMA is 4 cycles");
    }

    #[test]
    fn cache_viruses_settle_into_their_level() {
        let mut h = CacheHierarchy::xgene2();
        let virus = MicroVirus::cache(xgene_sim::topology::CacheLevel::L1D);
        let report = virus.execute(&mut h, 512);
        assert!(report.dram_ratio < 0.01, "dram ratio {}", report.dram_ratio);
    }

    #[test]
    fn simd_loop_draws_more_than_nop_loop() {
        let mut h = CacheHierarchy::xgene2();
        let hot = execute_genome(
            &VirusGenome::new(vec![InstrClass::SimdFma; 16]),
            &mut h,
            CoreId::new(0),
            8,
        );
        let cold = execute_genome(
            &VirusGenome::new(vec![InstrClass::Nop; 16]),
            &mut h,
            CoreId::new(1),
            8,
        );
        assert!(hot.mean_current > 3.0);
        assert!(cold.mean_current < 1.0);
    }
}
