//! Hand-crafted micro-viruses targeting individual chip components.
//!
//! Because the CPU pipeline and the cache SRAM arrays share one voltage
//! domain, the paper isolates *where* low-voltage failures originate by
//! crafting "synthetic programs that specifically target components"
//! — L1I, L1D, L2, L3, and the integer/FP ALUs — exploiting the
//! microarchitecture (cache geometries, inclusive hierarchy) to pin each
//! program's working set into exactly one level.

use crate::isa::{InstrClass, VirusGenome};
use serde::{Deserialize, Serialize};
use xgene_sim::cache::Cache;
use xgene_sim::topology::CacheLevel;
use xgene_sim::workload::{StressTarget, WorkloadProfile};

/// A targeted micro-virus: an access/instruction pattern plus the
/// component it isolates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroVirus {
    /// Virus name.
    pub name: String,
    /// The component this virus stresses.
    pub target: StressTarget,
    /// Instruction loop driving the pipeline (for ALU viruses this *is*
    /// the virus; for cache viruses it is the load loop).
    pub genome: VirusGenome,
    /// Stride-walked working set in bytes (0 for pure ALU viruses).
    pub working_set_bytes: usize,
}

impl MicroVirus {
    /// The integer-ALU virus: dependent multiply chain, no memory traffic.
    pub fn int_alu() -> Self {
        MicroVirus {
            name: "int-alu-virus".into(),
            target: StressTarget::IntAlu,
            genome: VirusGenome::new(vec![InstrClass::IntMul; 16]),
            working_set_bytes: 0,
        }
    }

    /// The FP/SIMD virus: back-to-back fused multiply-adds.
    pub fn fp_alu() -> Self {
        MicroVirus {
            name: "fp-alu-virus".into(),
            target: StressTarget::FpAlu,
            genome: VirusGenome::new(vec![InstrClass::SimdFma; 16]),
            working_set_bytes: 0,
        }
    }

    /// A cache virus for `level`: a load loop over a working set sized to
    /// fill the target level while overflowing every level above it.
    pub fn cache(level: CacheLevel) -> Self {
        // Fit the working set into the target level but beyond the level
        // above: 75 % of the target capacity does both on the X-Gene2
        // (each level is ≥ 8× larger than its predecessor).
        let working_set_bytes = level.capacity() * 3 / 4;
        let load = match level {
            CacheLevel::L1I | CacheLevel::L1D => InstrClass::L1Load,
            CacheLevel::L2 | CacheLevel::L3 => InstrClass::L2Load,
        };
        MicroVirus {
            name: format!("{level}-virus").to_lowercase(),
            target: StressTarget::Cache(level),
            genome: VirusGenome::new(vec![load; 16]),
            working_set_bytes,
        }
    }

    /// All six targeted viruses of the methodology.
    pub fn component_suite() -> Vec<MicroVirus> {
        vec![
            MicroVirus::cache(CacheLevel::L1I),
            MicroVirus::cache(CacheLevel::L1D),
            MicroVirus::cache(CacheLevel::L2),
            MicroVirus::cache(CacheLevel::L3),
            MicroVirus::int_alu(),
            MicroVirus::fp_alu(),
        ]
    }

    /// The virus's address stream over one pass of its working set
    /// (line-strided loads; empty for ALU viruses).
    pub fn address_stream(&self) -> Vec<u64> {
        (0..self.working_set_bytes as u64).step_by(64).collect()
    }

    /// The workload profile this virus presents to the Vmin model.
    pub fn profile(&self) -> WorkloadProfile {
        let activity = (self.genome.mean_current() - InstrClass::Nop.current_amps())
            / (InstrClass::SimdFma.current_amps() - InstrClass::Nop.current_amps());
        WorkloadProfile::builder(self.name.clone())
            .activity(activity.clamp(0.0, 1.0))
            .swing(0.15)
            .resonance_alignment(0.0)
            .target(self.target)
            .build()
    }

    /// Verifies (against the cache simulator) that the working set indeed
    /// resides in the target level: returns the steady-state hit ratio in
    /// the target cache after a warmup pass.
    pub fn residency_hit_ratio(&self) -> Option<f64> {
        let level = match self.target {
            StressTarget::Cache(level) => level,
            _ => return None,
        };
        let mut cache = Cache::for_level(level);
        let stream = self.address_stream();
        for addr in &stream {
            cache.access(*addr);
        }
        cache.reset_stats();
        for _ in 0..3 {
            for addr in &stream {
                cache.access(*addr);
            }
        }
        Some(1.0 - cache.stats().miss_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_viruses_stay_resident_in_their_level() {
        for level in CacheLevel::ALL {
            let virus = MicroVirus::cache(level);
            let hit = virus.residency_hit_ratio().unwrap();
            assert!(hit > 0.99, "{level}: hit ratio {hit}");
        }
    }

    #[test]
    fn cache_virus_overflows_the_level_above() {
        // The L2 virus's working set must miss badly in L1.
        let virus = MicroVirus::cache(CacheLevel::L2);
        let mut l1 = Cache::for_level(CacheLevel::L1D);
        let stream = virus.address_stream();
        for _ in 0..2 {
            for a in &stream {
                l1.access(*a);
            }
        }
        l1.reset_stats();
        for a in &stream {
            l1.access(*a);
        }
        assert!(
            l1.stats().miss_ratio() > 0.95,
            "L1 miss {}",
            l1.stats().miss_ratio()
        );
    }

    #[test]
    fn alu_viruses_have_no_memory_footprint() {
        assert!(MicroVirus::int_alu().address_stream().is_empty());
        assert!(MicroVirus::fp_alu().residency_hit_ratio().is_none());
    }

    #[test]
    fn fp_virus_draws_more_than_int_virus() {
        let fp = MicroVirus::fp_alu().profile();
        let int = MicroVirus::int_alu().profile();
        assert!(fp.activity() > int.activity());
    }

    #[test]
    fn suite_covers_all_components() {
        let suite = MicroVirus::component_suite();
        assert_eq!(suite.len(), 6);
        let cache_targets = suite
            .iter()
            .filter(|v| matches!(v.target, StressTarget::Cache(_)))
            .count();
        assert_eq!(cache_targets, 4);
    }

    #[test]
    fn cache_virus_raises_vmin_with_level_ordering() {
        use power_model::units::Megahertz;
        use xgene_sim::sigma::{ChipProfile, SigmaBin};
        // On the shared rail, L1 viruses expose the weakest (smallest)
        // bitcells: their SRAM-limited Vmin exceeds the L3 virus's.
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let core = chip.most_robust_core();
        let vmin = |v: &MicroVirus| {
            chip.vmin(core, &v.profile(), Megahertz::XGENE2_NOMINAL)
                .as_u32()
        };
        let l1 = vmin(&MicroVirus::cache(CacheLevel::L1D));
        let l2 = vmin(&MicroVirus::cache(CacheLevel::L2));
        let l3 = vmin(&MicroVirus::cache(CacheLevel::L3));
        assert!(l1 >= l2 && l2 >= l3, "L1 {l1}, L2 {l2}, L3 {l3}");
    }
}
