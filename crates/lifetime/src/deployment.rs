//! The multi-year deployment loop: age, watch, re-characterize, repeat.
//!
//! [`run_deployment`] plays a fleet's whole service life in simulated
//! months. Month 0 cold-characterizes every board and deploys the
//! resulting safe points (epoch 0). Every later month it
//!
//! 1. projects each board's drift signals with the [`DriftModel`] —
//!    modeled margin, failing-cell pressure, safe-point age;
//! 2. counts any board whose margin went negative as a production SDC
//!    exposure (the quantity the scheduler exists to keep at zero, and
//!    the ablation run demonstrably does not);
//! 3. asks the [`MaintenancePolicy`] for a budget-capped plan;
//! 4. runs the scheduled boards' re-characterization campaigns on a
//!    worker pool — each against its *aged* silicon and DRAM, each
//!    warm-started from the board's previous epoch — and commits the
//!    fresh safe points as a new epoch.
//!
//! Determinism is inherited, not re-argued: board specs and job
//! execution are pure ([`fleet`]'s pillars), planning is pure
//! ([`fleet::maintenance`]), aging is seeded, and each round's outcomes
//! are sorted by board before any aggregation — so the chronicle is
//! byte-identical across runs and worker counts.

use crate::drift::DriftModel;
use crate::report::{LifetimeChronicle, LifetimeExecution, LifetimeReport, MonthRecord};
use char_fw::warmstart::{cold_walk_setups, WarmStartConfig};
use dram_sim::retention::{RetentionModel, WeakCellPopulation};
use fleet::job::{
    execute_in_env, BoardOutcome, FleetCampaign, FleetJob, JobEnvironment, WarmStartPriors,
};
use fleet::journal::{FleetJournal, JournalEntry, JournalStore};
use fleet::maintenance::{BoardHealth, MaintenancePlan, MaintenancePolicy};
use fleet::population::{BoardSpec, FleetSpec};
use guardband_core::epoch::VersionedSafePointStore;
use guardband_core::safepoint::BoardSafePoint;
use observatory::{BoardStream, DetectorConfig, Direction, Observatory, SloSpec, StreamBuilder};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use telemetry::metrics::Registry;
use telemetry::{counter, event, gauge, span, FieldValue, Level, Telemetry};
use xgene_sim::topology::CORE_COUNT;

/// Everything a lifetime run is a function of.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// The fleet: seed, size, corner mix, DRAM envelope.
    pub fleet: FleetSpec,
    /// The characterization campaign every epoch runs.
    pub campaign: FleetCampaign,
    /// The degradation physics boards age under.
    pub drift: DriftModel,
    /// Service horizon, months.
    pub months: u32,
    /// When and how much to re-characterize.
    pub maintenance: MaintenancePolicy,
    /// Warm-start window shape for re-characterization walks.
    pub warm_start: WarmStartConfig,
    /// `false` runs the ablation: deploy once, never re-characterize,
    /// and count the SDC exposure that accumulates.
    pub recharacterize: bool,
}

impl DeploymentSpec {
    /// The paper-shaped lifetime study: full campaign, datacenter
    /// stress, default maintenance policy.
    pub fn dsn18(boards: u32, seed: u64, months: u32) -> Self {
        let mut campaign = FleetCampaign::dsn18();
        campaign.inject_sub_vmin_sdc = false;
        DeploymentSpec {
            fleet: FleetSpec::new(boards, seed),
            campaign,
            drift: DriftModel::dsn18(),
            months,
            maintenance: MaintenancePolicy::dsn18(),
            warm_start: WarmStartConfig::dsn18(),
            recharacterize: true,
        }
    }

    /// A cut-down shape for tests and benches: the quick fleet campaign
    /// (one benchmark, four cores, 10 mV steps) without fault injection.
    pub fn quick(boards: u32, seed: u64, months: u32) -> Self {
        let mut campaign = FleetCampaign::quick();
        campaign.inject_sub_vmin_sdc = false;
        DeploymentSpec {
            campaign,
            ..DeploymentSpec::dsn18(boards, seed, months)
        }
    }

    /// The ablation variant: same fleet, same physics, no maintenance.
    pub fn without_maintenance(mut self) -> Self {
        self.recharacterize = false;
        self
    }
}

/// Execution knobs. Like the fleet's config, changing these may change
/// how fast the life plays out, never what happens in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeConfig {
    /// Worker threads per characterization round.
    pub workers: usize,
}

impl LifetimeConfig {
    /// A pool of `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        LifetimeConfig { workers }
    }
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig { workers: 4 }
    }
}

/// Name of the zero-SDC-escape SLO declared by [`run_deployment`]: any
/// board-month of sub-Vmin operation pages immediately.
pub const LIFETIME_SDC_SLO: &str = "zero-sdc-exposure";

/// Name of the fleet savings-floor SLO declared by [`run_deployment`].
pub const LIFETIME_SAVINGS_SLO: &str = "fleet-savings-floor";

/// The savings floor, as a fraction of the initial deployment's
/// projected savings: losing more than half the reclaimed watts to
/// drift parking means maintenance is failing its economic purpose.
pub const LIFETIME_SAVINGS_FLOOR_FRACTION: f64 = 0.5;

/// Detector metric fed with each board's modeled margin every month;
/// the drift detector warns on the *decay* long before the margin
/// itself goes negative.
pub const LIFETIME_MARGIN_METRIC: &str = "margin_mv";

/// A durable deployment stopped between rounds — the lifetime analogue
/// of a coordinator crash. Restart [`run_deployment_durable`] on the
/// same journal to resume; committed rounds are not re-executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeInterrupted {
    /// Characterization rounds this incarnation executed live before
    /// the interrupt.
    pub live_rounds: u64,
}

impl std::fmt::Display for LifetimeInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deployment interrupted after {} live round{}",
            self.live_rounds,
            if self.live_rounds == 1 { "" } else { "s" }
        )
    }
}

/// Plays the fleet's whole service life. See the module docs for the
/// loop and the determinism argument.
///
/// # Panics
///
/// Panics if `config.workers` is zero or a worker thread panics.
pub fn run_deployment(spec: &DeploymentSpec, config: &LifetimeConfig) -> LifetimeReport {
    match run_deployment_with(spec, config, &mut |_, jobs| {
        Ok(run_round(jobs, &spec.campaign, config.workers))
    }) {
        Ok(report) => report,
        Err(_) => unreachable!("the plain round executor never interrupts"),
    }
}

/// [`run_deployment`] with crash consistency: every completed
/// characterization round is journaled as a
/// [`JournalEntry::RoundCommitted`] (with per-record epoch merges),
/// and on entry the journal is replayed so a restarted deployment
/// *replays* committed rounds instead of re-executing them — sound
/// because rounds are pure, so the journaled outcomes are byte-identical
/// to what re-execution would produce. Everything between rounds (drift
/// passes, maintenance planning, SLO observations) is recomputed
/// deterministically, so the resumed chronicle and observatory are
/// byte-identical to an uninterrupted run's. While a round's epoch is
/// missing or damaged at the journal tail, deployed boards keep serving
/// from `VersionedSafePointStore::latest_for` — the last good epoch —
/// until the round re-executes.
///
/// `interrupt_after_rounds` injects the crash: the incarnation stops
/// (with [`LifetimeInterrupted`]) once it has executed that many *live*
/// rounds — replayed rounds don't count. `None` runs to completion.
///
/// # Errors
///
/// Returns [`LifetimeInterrupted`] when the injected interrupt fires.
///
/// # Panics
///
/// Panics if `config.workers` is zero or a worker thread panics.
pub fn run_deployment_durable<S: JournalStore>(
    spec: &DeploymentSpec,
    config: &LifetimeConfig,
    journal: &mut FleetJournal<S>,
    interrupt_after_rounds: Option<u64>,
) -> Result<LifetimeReport, LifetimeInterrupted> {
    let replay = journal.replay();
    if let Some(damage) = &replay.damage {
        event!(
            Level::Warn,
            "fleet_journal_damaged",
            detail = damage.to_string(),
        );
    }
    let mut recovered: std::collections::VecDeque<(u32, Vec<BoardOutcome>)> = replay
        .entries
        .into_iter()
        .filter_map(|entry| match entry {
            JournalEntry::RoundCommitted { month, outcomes } => Some((month, outcomes)),
            _ => None,
        })
        .collect();
    let resumed_rounds = recovered.len() as u64;
    if resumed_rounds > 0 {
        event!(Level::Info, "fleet_recovered", resumed = resumed_rounds);
    }
    let mut live_rounds = 0u64;
    run_deployment_with(spec, config, &mut |month, jobs| {
        // Deterministic replanning visits rounds in the same order every
        // incarnation, so committed rounds drain from the front.
        if recovered.front().is_some_and(|(m, _)| *m == month) {
            let (_, outcomes) = recovered.pop_front().expect("front checked");
            return Ok(outcomes);
        }
        if interrupt_after_rounds == Some(live_rounds) {
            return Err(LifetimeInterrupted { live_rounds });
        }
        let outcomes = run_round(jobs, &spec.campaign, config.workers);
        journal.append(&JournalEntry::RoundCommitted {
            month,
            outcomes: outcomes.clone(),
        });
        for outcome in &outcomes {
            journal.append(&JournalEntry::MergeCommitted {
                epoch: month,
                board: outcome.board,
                attempt: outcome.attempt,
            });
        }
        live_rounds += 1;
        Ok(outcomes)
    })
}

/// A round executor: month + scheduled jobs in, the round's outcomes
/// out (or an interrupt).
type RoundFn<'a> = dyn FnMut(u32, &[(FleetJob, JobEnvironment)]) -> Result<Vec<BoardOutcome>, LifetimeInterrupted>
    + 'a;

/// The deployment loop over an abstract round executor: the plain path
/// executes rounds directly, the durable path replays or journals them.
fn run_deployment_with(
    spec: &DeploymentSpec,
    config: &LifetimeConfig,
    round: &mut RoundFn<'_>,
) -> Result<LifetimeReport, LifetimeInterrupted> {
    assert!(config.workers > 0, "lifetime needs at least one worker");
    let registry = Rc::new(Registry::new());
    let guard = Telemetry::new()
        .with_registry(Rc::clone(&registry))
        .install();
    let _lifetime_span = span!(
        Level::Info,
        "lifetime",
        boards = spec.fleet.boards,
        months = spec.months,
    );

    let boards: Vec<BoardSpec> = spec.fleet.all_boards().collect();
    // Each board's as-manufactured weak-cell population, generated once:
    // the aging model derives every month's population (and the analytic
    // CE-pressure query) from this base.
    let model = RetentionModel::xgene2_micron();
    let bases: Vec<WeakCellPopulation> = boards
        .iter()
        .map(|b| WeakCellPopulation::generate(&model, spec.fleet.population, b.boot_seed))
        .collect();
    let cold_steps_per_walk = cold_walk_setups(&spec.campaign.vmin_campaign(None));

    let mut epochs = VersionedSafePointStore::new();
    let mut job_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut months_log: Vec<MonthRecord> = Vec::new();
    let mut recharacterizations = 0u64;
    let mut warm_walked_steps = 0u64;
    let mut sdc_board_months = 0u64;
    let mut rounds = 0u64;

    // Month 0: cold-characterize and deploy the whole fleet.
    let initial: Vec<(FleetJob, JobEnvironment)> = boards
        .iter()
        .zip(&bases)
        .map(|(board, base)| build_job(spec, board, base, 0, None))
        .collect();
    let outcomes = round(0, &initial)?;
    let mut jobs_total = outcomes.len() as u64;
    rounds += 1;
    absorb(&mut epochs, 0, &outcomes, &mut job_counters);

    // The observatory watches the whole life: month = epoch. Job traces
    // live in the per-board seq namespace; the coordinator's monthly
    // health observations use the coordinator namespace, which sorts
    // after same-month job events by convention.
    let mut obs = Observatory::new();
    obs.add_detector(
        LIFETIME_MARGIN_METRIC,
        DetectorConfig::drift(Direction::Low),
    );
    obs.add_slo(SloSpec::zero_escapes(LIFETIME_SDC_SLO));
    let initial_savings = epochs.latest().stats().total_savings_watts;
    obs.add_slo(SloSpec::savings_floor(
        LIFETIME_SAVINGS_SLO,
        LIFETIME_SAVINGS_FLOOR_FRACTION * initial_savings,
    ));
    for outcome in &outcomes {
        obs.ingest_stream(BoardStream::from_events(
            0,
            outcome.board,
            outcome.trace.clone(),
        ));
        obs.ingest_dumps(0, outcome.board, outcome.dumps.clone());
    }

    for month in 1..=spec.months {
        gauge!("lifetime_month", f64::from(month));

        // Drift pass: one health triple per deployed board.
        let mut healths: Vec<BoardHealth> = Vec::with_capacity(boards.len());
        let mut sdc_boards: Vec<u32> = Vec::new();
        let mut min_margin: Option<i64> = None;
        for (board, base) in boards.iter().zip(&bases) {
            let Some((epoch, record)) = epochs.latest_for(board.id) else {
                continue;
            };
            let health = spec
                .drift
                .health(board, &spec.campaign.cores, base, record, epoch, month);
            let mut watch = StreamBuilder::coordinator(u64::from(month), board.id);
            let mut health_fields = vec![
                (
                    "months_since".to_owned(),
                    FieldValue::U64(u64::from(health.months_since_characterization)),
                ),
                (
                    "failing_cells".to_owned(),
                    FieldValue::U64(health.failing_cells),
                ),
            ];
            if let Some(margin) = health.margin_mv {
                health_fields.push(("margin_mv".to_owned(), FieldValue::I64(margin)));
            }
            watch.push(Level::Debug, "board_health", health_fields);
            if let Some(margin) = health.margin_mv {
                min_margin = Some(min_margin.map_or(margin, |m| m.min(margin)));
                obs.detect(
                    board.id,
                    LIFETIME_MARGIN_METRIC,
                    u64::from(month),
                    margin as f64,
                );
                if margin < 0 {
                    sdc_boards.push(board.id);
                    watch.push(
                        Level::Error,
                        "production_sdc",
                        vec![
                            ("month".to_owned(), FieldValue::U64(u64::from(month))),
                            (
                                "months_since".to_owned(),
                                FieldValue::U64(u64::from(health.months_since_characterization)),
                            ),
                            ("margin_mv".to_owned(), FieldValue::I64(margin)),
                        ],
                    );
                }
            }
            obs.ingest_stream(watch.finish());
            healths.push(health);
        }
        if !sdc_boards.is_empty() {
            sdc_board_months += sdc_boards.len() as u64;
            counter!("lifetime_sdc_board_months_total", sdc_boards.len() as u64);
            event!(
                Level::Error,
                "lifetime_production_sdc",
                month = month,
                boards = sdc_boards.len() as u64,
            );
        }
        obs.slo_observe(
            LIFETIME_SDC_SLO,
            u64::from(month),
            None,
            sdc_boards.len() as f64,
        );

        // Plan and execute this month's re-characterizations.
        let plan = if spec.recharacterize {
            spec.maintenance.plan(&healths)
        } else {
            MaintenancePlan::default()
        };
        if !plan.scheduled.is_empty() {
            let jobs: Vec<(FleetJob, JobEnvironment)> = plan
                .scheduled
                .iter()
                .map(|decision| {
                    let idx = boards
                        .iter()
                        .position(|b| b.id == decision.board)
                        .expect("scheduled boards come from this fleet");
                    let prior = epochs.latest_for(decision.board).map(|(_, r)| r);
                    build_job(spec, &boards[idx], &bases[idx], month, prior)
                })
                .collect();
            let outcomes = round(month, &jobs)?;
            jobs_total += outcomes.len() as u64;
            rounds += 1;
            recharacterizations += outcomes.len() as u64;
            warm_walked_steps += outcomes.iter().map(|o| o.walked_steps).sum::<u64>();
            counter!("lifetime_recharacterizations_total", outcomes.len() as u64);
            absorb(&mut epochs, month, &outcomes, &mut job_counters);
            for outcome in &outcomes {
                obs.ingest_stream(BoardStream::from_events(
                    u64::from(month),
                    outcome.board,
                    outcome.trace.clone(),
                ));
                obs.ingest_dumps(u64::from(month), outcome.board, outcome.dumps.clone());
            }
        }

        let total_savings_watts = epochs.latest().stats().total_savings_watts;
        obs.slo_observe(
            LIFETIME_SAVINGS_SLO,
            u64::from(month),
            None,
            total_savings_watts,
        );
        months_log.push(MonthRecord {
            month,
            deferred: plan.deferred.len() as u64,
            scheduled: plan.scheduled,
            sdc_boards,
            min_margin_mv: min_margin,
            total_savings_watts,
        });
    }

    drop(guard);
    // Merge the coordinator's own counters (maintenance triggers, SDC
    // tallies) with the per-job sums; both are pure, so the merged map
    // is too. Wall-clock histograms measure the host and are dropped.
    for (name, value) in &registry.snapshot().counters {
        *job_counters.entry(name.clone()).or_insert(0) += value;
    }

    let chronicle = LifetimeChronicle {
        boards: spec.fleet.boards,
        seed: spec.fleet.seed,
        months: spec.months,
        maintenance_enabled: spec.recharacterize,
        epochs,
        months_log,
        recharacterizations,
        warm_walked_steps,
        cold_equivalent_steps: recharacterizations * cold_steps_per_walk,
        production_sdc_board_months: sdc_board_months,
        campaign_counters: job_counters.into_iter().collect(),
    };
    let execution = LifetimeExecution {
        workers: config.workers,
        jobs: jobs_total,
        rounds,
    };
    Ok(LifetimeReport {
        chronicle,
        execution,
        observatory: obs.finish(),
    })
}

/// Builds one board's characterization job for `month`: aged chip, aged
/// DRAM, and (for re-characterizations) the previous epoch's Vmins as
/// warm-start priors. `attempt = month` keeps the flat store's
/// precedence order aligned with epoch order.
fn build_job(
    spec: &DeploymentSpec,
    board: &BoardSpec,
    base: &WeakCellPopulation,
    month: u32,
    prior: Option<&BoardSafePoint>,
) -> (FleetJob, JobEnvironment) {
    let aging = DriftModel::aging_of(board);
    let shifts = aging.shifts_mv(&spec.drift.stress, month);
    let warm_start = prior.map(|record| {
        // `core_vmin_mv` is indexed by campaign position; priors are
        // indexed by core — remap through the campaign's core list.
        let mut core_vmin_mv = vec![None; CORE_COUNT];
        for (core, vmin) in spec.campaign.cores.iter().zip(&record.core_vmin_mv) {
            core_vmin_mv[core.index()] = *vmin;
        }
        WarmStartPriors {
            core_vmin_mv,
            config: spec.warm_start,
        }
    });
    (
        FleetJob {
            board: board.clone(),
            attempt: month,
            floor_override_mv: None,
        },
        JobEnvironment {
            chip: board.chip.with_aging(&shifts),
            population: spec.drift.dram.aged(base, month, board.boot_seed),
            max_trefp_ms: spec.fleet.population.max_trefp.as_f64(),
            warm_start,
        },
    )
}

/// Executes one round of jobs on a pool and returns the outcomes in
/// `(board, attempt)` order — arrival order never escapes this function.
fn run_round(
    jobs: &[(FleetJob, JobEnvironment)],
    campaign: &FleetCampaign,
    workers: usize,
) -> Vec<BoardOutcome> {
    let next = AtomicUsize::new(0);
    let mut outcomes: Vec<BoardOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(jobs.len()).max(1))
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((job, env)) = jobs.get(i) else {
                            break;
                        };
                        done.push(execute_in_env(job, campaign, env));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("lifetime worker panicked"))
            .collect()
    });
    outcomes.sort_by_key(|o| (o.board, o.attempt));
    outcomes
}

/// Commits one round's records as epoch `month` and folds each job's
/// telemetry counters into the (sorted, deterministic) fleet sum.
fn absorb(
    epochs: &mut VersionedSafePointStore,
    month: u32,
    outcomes: &[BoardOutcome],
    counters: &mut BTreeMap<String, u64>,
) {
    for outcome in outcomes {
        epochs.insert(month, outcome.record.clone());
        for (name, value) in &outcome.metrics.counters {
            *counters.entry(name.clone()).or_insert(0) += value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_life_is_deterministic_and_deploys_everyone() {
        let spec = DeploymentSpec::quick(3, 2018, 6);
        let a = run_deployment(&spec, &LifetimeConfig::with_workers(1));
        let b = run_deployment(&spec, &LifetimeConfig::with_workers(1));
        assert_eq!(a.chronicle_json(), b.chronicle_json());
        assert_eq!(a.observatory_json(), b.observatory_json());
        let c = &a.chronicle;
        assert_eq!(c.epochs.epoch(0).unwrap().len(), 3);
        assert_eq!(c.months_log.len(), 6);
        assert!(c.initial_savings_watts() > 0.0);
        // The observatory saw every month: a board_health observation
        // per deployed board per month, and zero SDC incidents on a
        // maintained fleet.
        let healths = a
            .observatory
            .timeline
            .events()
            .iter()
            .filter(|te| te.event.name == "board_health")
            .count();
        assert_eq!(healths, 3 * 6);
        assert!(a
            .observatory
            .incidents_of(observatory::IncidentKind::ProductionSdc)
            .next()
            .is_none());
        assert!(
            a.observatory.alerts.is_empty(),
            "no SLO burns on a maintained short life: {:?}",
            a.observatory.alerts
        );
    }

    #[test]
    fn a_life_interrupted_after_every_round_resumes_byte_identically() {
        let spec = DeploymentSpec::quick(3, 2018, 6);
        let config = LifetimeConfig::with_workers(2);
        let baseline = run_deployment(&spec, &config);
        // Crash after every single live round: each incarnation replays
        // the committed prefix from the journal, executes exactly one
        // new round, and dies.
        let mut journal = FleetJournal::new(fleet::journal::MemStore::new());
        let mut incarnations = 0u32;
        let resumed = loop {
            incarnations += 1;
            assert!(incarnations < 64, "crash-looped without progress");
            match run_deployment_durable(&spec, &config, &mut journal, Some(1)) {
                Ok(report) => break report,
                Err(interrupted) => assert_eq!(interrupted.live_rounds, 1),
            }
        };
        assert!(incarnations >= 2, "month 0 alone forces one crash");
        assert_eq!(baseline.chronicle_json(), resumed.chronicle_json());
        assert_eq!(baseline.observatory_json(), resumed.observatory_json());
        // The journal holds every committed round exactly once.
        let committed = journal
            .replay()
            .entries
            .iter()
            .filter(|e| matches!(e, JournalEntry::RoundCommitted { .. }))
            .count() as u64;
        assert_eq!(committed, baseline.execution.rounds);
    }

    #[test]
    fn the_ablation_never_recharacterizes() {
        let spec = DeploymentSpec::quick(3, 2018, 6).without_maintenance();
        let report = run_deployment(&spec, &LifetimeConfig::with_workers(2));
        assert_eq!(report.chronicle.recharacterizations, 0);
        assert_eq!(report.chronicle.epochs.epoch_count(), 1);
        assert!(!report.chronicle.maintenance_enabled);
    }
}
