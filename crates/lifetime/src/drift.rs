//! Modeled drift signals: what monitoring would see on a deployed board.
//!
//! A safe point is measured once; the silicon under it keeps moving. The
//! [`DriftModel`] projects both movements forward from a board's last
//! characterization — NBTI/HCI Vmin drift through
//! [`xgene_sim::aging::AgingModel`] and DRAM weak-tail growth through
//! [`dram_sim::aging::DramAging`] — and condenses them into the
//! [`BoardHealth`] triple the maintenance scheduler plans from:
//! remaining voltage margin, failing-cell (CE) pressure at the deployed
//! refresh period, and safe-point age. On real hardware these signals
//! come from the DMR sentinels and the patrol scrubber's per-bank CE
//! rates ([`dram_sim::scrubber::PatrolScrubber::ce_rate_per_bank`]); in
//! the simulation the same aging models that *drive* degradation also
//! *report* it, which keeps the whole lifetime loop a pure function of
//! the fleet seed.

use dram_sim::aging::DramAging;
use dram_sim::retention::{CouplingContext, WeakCellPopulation};
use fleet::maintenance::BoardHealth;
use fleet::population::BoardSpec;
use guardband_core::safepoint::BoardSafePoint;
use power_model::units::Celsius;
use xgene_sim::aging::{AgingModel, StressProfile};
use xgene_sim::topology::CoreId;

/// The degradation physics of a deployment: one stress profile and one
/// DRAM aging law shared by the whole fleet. (Per-board *susceptibility*
/// still differs: each board's [`AgingModel`] is sampled from its own
/// boot seed.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Operating conditions every deployed board ages under.
    pub stress: StressProfile,
    /// DRAM weak-cell growth, VRT and retention-decay law.
    pub dram: DramAging,
    /// Temperature the failing-cell (CE pressure) signal is evaluated
    /// at — the worst case the retention floor was characterized for.
    pub retention_temperature: Celsius,
}

impl DriftModel {
    /// The lifetime study's physics: datacenter stress (930 mV, 55 °C,
    /// 0.6 activity) and the DSN'18-calibrated DRAM aging law, with CE
    /// pressure judged at the 60 °C characterization corner.
    pub fn dsn18() -> Self {
        DriftModel {
            stress: StressProfile::datacenter(),
            dram: DramAging::dsn18(),
            retention_temperature: Celsius::new(60.0),
        }
    }

    /// The aging personality of one board — a pure function of its boot
    /// seed, like everything else about the board.
    pub fn aging_of(board: &BoardSpec) -> AgingModel {
        AgingModel::sampled(board.boot_seed)
    }

    /// How far the rail Vmin of `board` moved between two months, mV:
    /// the worst per-core shift delta over the characterized core set.
    /// (The multicore penalty is voltage-independent, so the rail
    /// inherits the worst single-core shift unchanged.)
    pub fn rail_shift_mv(
        &self,
        board: &BoardSpec,
        cores: &[CoreId],
        from_month: u32,
        to_month: u32,
    ) -> f64 {
        let aging = DriftModel::aging_of(board);
        cores
            .iter()
            .map(|core| {
                aging.vmin_shift_mv(*core, &self.stress, to_month)
                    - aging.vmin_shift_mv(*core, &self.stress, from_month)
            })
            .fold(0.0, f64::max)
    }

    /// The modeled margin of a deployed safe point in `month`: deployed
    /// PMD voltage minus the aged rail Vmin (the epoch's measured rail
    /// plus the drift since). Negative means the board is operating
    /// below its real limit — silent corruption territory. `None` when
    /// the record never derived a deployable point.
    pub fn margin_mv(
        &self,
        board: &BoardSpec,
        cores: &[CoreId],
        record: &BoardSafePoint,
        epoch_month: u32,
        month: u32,
    ) -> Option<i64> {
        let deployed = record.operating_point.as_ref()?.pmd_voltage;
        let rail = record.rail_vmin_mv?;
        let shift = self.rail_shift_mv(board, cores, epoch_month, month);
        Some((f64::from(deployed.as_u32()) - f64::from(rail) - shift).floor() as i64)
    }

    /// Weak cells that *started* failing at the deployed refresh period
    /// since the board's last characterization — the analytic form of
    /// the scrubber's rising CE count. The baseline is subtracted
    /// because re-characterization re-baselines the scrubber's
    /// expectations: cells already failing when the refresh period was
    /// validated are known CEs, not drift. Every such cell is still
    /// SECDED-correctable (aging never pairs weak cells in a word), so
    /// this is pressure, not data loss; the scheduler's job is to
    /// re-validate the refresh *before* the scrub overhead matters.
    pub fn failing_cells(
        &self,
        board: &BoardSpec,
        base: &WeakCellPopulation,
        record: &BoardSafePoint,
        epoch_month: u32,
        month: u32,
    ) -> u64 {
        let Some(point) = &record.operating_point else {
            return 0;
        };
        let at = |m: u32| {
            self.dram.failing_at(
                base,
                m,
                board.boot_seed,
                self.retention_temperature,
                point.trefp,
                CouplingContext::WorstCase,
            )
        };
        at(month).saturating_sub(at(epoch_month))
    }

    /// The full health triple for one board in `month`, given its
    /// latest record from `epoch_month`.
    pub fn health(
        &self,
        board: &BoardSpec,
        cores: &[CoreId],
        base: &WeakCellPopulation,
        record: &BoardSafePoint,
        epoch_month: u32,
        month: u32,
    ) -> BoardHealth {
        BoardHealth {
            board: board.id,
            months_since_characterization: month - epoch_month,
            margin_mv: self.margin_mv(board, cores, record, epoch_month, month),
            failing_cells: self.failing_cells(board, base, record, epoch_month, month),
        }
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel::dsn18()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::population::FleetSpec;
    use guardband_core::safepoint::SafePointPolicy;
    use power_model::units::{Milliseconds, Millivolts};
    use xgene_sim::sigma::SigmaBin;

    fn record(rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board: 0,
            attempt: 0,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 10); 4],
            rail_vmin_mv: Some(rail),
            operating_point: Some(
                policy.derive_from_measured(Millivolts::new(rail), Milliseconds::new(200.0)),
            ),
            bank_safe_trefp_ms: vec![200.0; 8],
            savings_fraction: 0.1,
            savings_watts: 4.0,
        }
    }

    #[test]
    fn margin_starts_at_the_policy_margin_and_only_erodes() {
        let drift = DriftModel::dsn18();
        let spec = FleetSpec::new(4, 2018);
        let board = spec.board(2);
        let cores: Vec<CoreId> = CoreId::all().collect();
        let record = record(900);
        let fresh = drift.margin_mv(&board, &cores, &record, 0, 0).unwrap();
        // derive_from_measured snaps up to the 5 mV grid: 25..=29 mV.
        assert!((25..=29).contains(&fresh), "fresh margin {fresh}");
        let mut last = fresh;
        for month in 1..=48 {
            let aged = drift.margin_mv(&board, &cores, &record, 0, month).unwrap();
            assert!(aged <= last, "margin must not recover (month {month})");
            last = aged;
        }
        assert!(last < fresh, "four years must consume visible margin");
    }

    #[test]
    fn drift_resets_at_a_new_epoch() {
        let drift = DriftModel::dsn18();
        let spec = FleetSpec::new(4, 2018);
        let board = spec.board(1);
        let cores: Vec<CoreId> = CoreId::all().collect();
        // Same calendar month, fresher epoch → strictly less drift.
        let stale = drift.rail_shift_mv(&board, &cores, 0, 30);
        let fresh = drift.rail_shift_mv(&board, &cores, 24, 30);
        assert!(fresh < stale);
        assert!(fresh > 0.0);
        assert_eq!(drift.rail_shift_mv(&board, &cores, 30, 30), 0.0);
    }

    #[test]
    fn an_underivable_record_has_no_margin_and_no_ce_pressure() {
        let drift = DriftModel::dsn18();
        let spec = FleetSpec::new(4, 2018);
        let board = spec.board(0);
        let base = WeakCellPopulation::generate(
            &dram_sim::retention::RetentionModel::xgene2_micron(),
            spec.population,
            board.boot_seed,
        );
        let mut rec = record(900);
        rec.operating_point = None;
        rec.rail_vmin_mv = None;
        let cores: Vec<CoreId> = CoreId::all().collect();
        let health = drift.health(&board, &cores, &base, &rec, 0, 12);
        assert_eq!(health.margin_mv, None);
        assert_eq!(health.failing_cells, 0);
        assert_eq!(health.months_since_characterization, 12);
    }
}
