//! The lifetime chronicle: what a multi-year deployment did, and proof
//! it did it deterministically.
//!
//! Mirroring the fleet report's split, a [`LifetimeReport`] keeps two
//! parts: the [`LifetimeChronicle`] is a pure function of the
//! deployment spec — byte-identical across runs and worker counts, the
//! thing CI pins — while [`LifetimeExecution`] records how this
//! particular run was driven (worker count, job tally) and is excluded
//! from the comparison.

use fleet::maintenance::MaintenanceDecision;
use guardband_core::epoch::VersionedSafePointStore;
use observatory::ObservatoryReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One simulated month's ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthRecord {
    /// Simulated month (1-based; month 0 is the initial deployment).
    pub month: u32,
    /// Re-characterizations executed this month, most urgent first.
    pub scheduled: Vec<MaintenanceDecision>,
    /// Triggered boards the budget pushed to a later month.
    pub deferred: u64,
    /// Boards whose modeled margin went negative while deployed — each
    /// one is a production SDC exposure the scheduler failed to prevent
    /// (the ablation's failure mode).
    pub sdc_boards: Vec<u32>,
    /// Worst modeled margin across the deployed fleet this month, mV.
    pub min_margin_mv: Option<i64>,
    /// Fleet-wide projected savings of the current deployment view, W.
    pub total_savings_watts: f64,
}

/// The deterministic heart of a lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeChronicle {
    /// Fleet size.
    pub boards: u32,
    /// Fleet seed everything derives from.
    pub seed: u64,
    /// Simulated horizon, months.
    pub months: u32,
    /// Whether the maintenance scheduler ran (false = ablation).
    pub maintenance_enabled: bool,
    /// Every epoch's safe-point store, keyed by the month it ran.
    pub epochs: VersionedSafePointStore,
    /// Month-by-month ledger (months 1..=horizon).
    pub months_log: Vec<MonthRecord>,
    /// Re-characterization campaigns executed after month 0.
    pub recharacterizations: u64,
    /// Distinct setups those warm-started campaigns actually walked.
    pub warm_walked_steps: u64,
    /// Setups the same campaigns would have walked cold.
    pub cold_equivalent_steps: u64,
    /// Board-months spent operating below the modeled aged Vmin.
    pub production_sdc_board_months: u64,
    /// Campaign telemetry counters, summed over every job's registry
    /// and the coordinator's own (sorted by name).
    pub campaign_counters: Vec<(String, u64)>,
}

impl LifetimeChronicle {
    /// Worst modeled margin over the whole horizon, with its month.
    pub fn min_margin_mv(&self) -> Option<(u32, i64)> {
        self.months_log
            .iter()
            .filter_map(|m| m.min_margin_mv.map(|mv| (m.month, mv)))
            .min_by_key(|(month, mv)| (*mv, *month))
    }

    /// Fleet savings of the initial deployment (epoch 0), W.
    pub fn initial_savings_watts(&self) -> f64 {
        self.epochs
            .epoch(0)
            .map(|store| store.stats().total_savings_watts)
            .unwrap_or(0.0)
    }

    /// Fleet savings at the end of the horizon, W.
    pub fn final_savings_watts(&self) -> f64 {
        self.months_log
            .last()
            .map(|m| m.total_savings_watts)
            .unwrap_or_else(|| self.initial_savings_watts())
    }

    /// Fraction of cold re-characterization cost the warm starts
    /// avoided (0 when nothing was re-characterized).
    pub fn walk_savings_fraction(&self) -> f64 {
        if self.cold_equivalent_steps == 0 {
            return 0.0;
        }
        1.0 - self.warm_walked_steps as f64 / self.cold_equivalent_steps as f64
    }
}

/// How the run was executed — everything the determinism comparison
/// must ignore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeExecution {
    /// Worker threads characterization rounds ran on.
    pub workers: usize,
    /// Characterization jobs executed (initial fleet + all epochs).
    pub jobs: u64,
    /// Rounds that dispatched at least one job.
    pub rounds: u64,
}

/// A complete lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// The deterministic chronicle (compare this).
    pub chronicle: LifetimeChronicle,
    /// The execution trace (never compare this).
    pub execution: LifetimeExecution,
    /// The observatory's view of the life: merged monthly timeline,
    /// reconstructed incidents (production SDCs above all), SLO alerts
    /// and margin-drift early warnings. Deterministic like the
    /// chronicle, but versioned separately from it so the pinned
    /// `chronicle_json` artifact is unchanged.
    #[serde(default)]
    pub observatory: ObservatoryReport,
}

impl LifetimeReport {
    /// The canonical determinism artifact: the chronicle alone, as
    /// JSON. Two runs of the same spec must produce identical strings
    /// regardless of worker count.
    pub fn chronicle_json(&self) -> String {
        serde::json::to_string(&self.chronicle)
    }

    /// Canonical JSON of the observatory report — deterministic across
    /// runs and worker counts, like the chronicle.
    pub fn observatory_json(&self) -> String {
        self.observatory.chronicle_json()
    }

    /// Human-readable summary of the deployment's life.
    pub fn render(&self) -> String {
        let c = &self.chronicle;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Lifetime deployment: {} boards, {} months, maintenance {} ({} workers)",
            c.boards,
            c.months,
            if c.maintenance_enabled { "on" } else { "off" },
            self.execution.workers,
        );
        let _ = writeln!(
            out,
            "  epochs: {}  re-characterizations: {}  warm walk: {} steps vs {} cold ({:.0}% saved)",
            c.epochs.epoch_count(),
            c.recharacterizations,
            c.warm_walked_steps,
            c.cold_equivalent_steps,
            100.0 * c.walk_savings_fraction(),
        );
        let _ = writeln!(
            out,
            "  production SDC board-months: {}",
            c.production_sdc_board_months
        );
        if let Some((month, margin)) = c.min_margin_mv() {
            let _ = writeln!(out, "  worst modeled margin: {margin} mV (month {month})");
        }
        let _ = writeln!(
            out,
            "  fleet savings: {:.1} W at deployment -> {:.1} W at month {}",
            c.initial_savings_watts(),
            c.final_savings_watts(),
            c.months,
        );
        for month in &c.months_log {
            if month.scheduled.is_empty() && month.sdc_boards.is_empty() {
                continue;
            }
            for d in &month.scheduled {
                let _ = writeln!(
                    out,
                    "  month {:>3}: board {} re-characterized ({})",
                    month.month,
                    d.board,
                    describe(&d.trigger),
                );
            }
            if !month.sdc_boards.is_empty() {
                let _ = writeln!(
                    out,
                    "  month {:>3}: SDC exposure on boards {:?}",
                    month.month, month.sdc_boards,
                );
            }
        }
        out
    }
}

fn describe(trigger: &fleet::maintenance::MaintenanceTrigger) -> String {
    use fleet::maintenance::MaintenanceTrigger::*;
    match trigger {
        SentinelMarginal { margin_mv } => format!("margin down to {margin_mv} mV"),
        CeRate { failing_cells } => format!("{failing_cells} cells failing refresh"),
        CalendarAge { months } => format!("safe point {months} months old"),
    }
}
