//! Lifetime simulation: what happens to exploited guardbands as the
//! hardware under them ages.
//!
//! The DSN'18 study measures guardbands at one instant; this crate asks
//! the question a datacenter operator must: *for how long does a safe
//! point stay safe?* Silicon Vmin drifts upward under NBTI/HCI stress
//! ([`xgene_sim::aging`]), the DRAM weak-cell tail grows and flickers
//! ([`dram_sim::aging`]), and a point deployed with 25 mV of margin
//! eventually has none. The crate plays a fleet's whole service life in
//! simulated months and shows the operating discipline that keeps
//! below-guardband operation safe indefinitely:
//!
//! * [`drift`] — modeled per-board drift signals: remaining voltage
//!   margin, failing-cell (CE) pressure at the deployed refresh period,
//!   safe-point age;
//! * [`deployment`] — the monthly loop: watch drift, plan budget-capped
//!   re-characterization rounds through [`fleet::maintenance`], run the
//!   scheduled boards' campaigns against their aged silicon with
//!   warm-started Vmin walks ([`char_fw::warmstart`]), commit each
//!   round as a new epoch in the versioned safe-point store
//!   ([`guardband_core::epoch`]);
//! * [`report`] — the [`LifetimeChronicle`]: a month-by-month ledger
//!   that is byte-identical across runs and worker counts, CI's pinned
//!   artifact.
//!
//! The headline result mirrors the paper's safety argument, extended in
//! time: with maintenance on, **zero** board-months are spent below the
//! aged Vmin while most of the initial power savings survive every
//! epoch; with maintenance ablated, the same fleet accumulates SDC
//! exposure as aging silently consumes the deployed margin.
//!
//! # Examples
//!
//! ```
//! use lifetime::{run_deployment, DeploymentSpec, LifetimeConfig};
//!
//! let spec = DeploymentSpec::quick(2, 2018, 4);
//! let report = run_deployment(&spec, &LifetimeConfig::with_workers(2));
//! assert_eq!(report.chronicle.epochs.epoch(0).unwrap().len(), 2);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod deployment;
pub mod drift;
pub mod report;

pub use deployment::{
    run_deployment, run_deployment_durable, DeploymentSpec, LifetimeConfig, LifetimeInterrupted,
};
pub use drift::DriftModel;
pub use report::{LifetimeChronicle, LifetimeExecution, LifetimeReport, MonthRecord};
