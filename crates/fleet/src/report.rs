//! The orchestrator's output, split along the determinism boundary.
//!
//! [`FleetCharacterization`] holds everything the fleet *measured* — the
//! safe-point store, population stats, per-job summaries, aggregated
//! campaign counters and the simulated serial cost. It is required to be
//! byte-identical across worker counts, and
//! [`FleetReport::characterization_json`] is the string the e2e test and
//! the bench compare. [`FleetExecution`] holds everything about *how*
//! the run was executed — pool size, queue flow, per-worker job counts,
//! modeled makespan — which legitimately varies with the pool and is
//! therefore kept out of the comparison.

use crate::queue::QueueStats;
use crate::schedule::ScheduleModel;
use guardband_core::safepoint::{FleetStats, SafePointStore};
use observatory::ObservatoryReport;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One job's deterministic summary (sorted by `(board, attempt)` in the
/// report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// Board id.
    pub board: u32,
    /// Re-characterization attempt.
    pub attempt: u32,
    /// Whether the safety net tripped and evicted the board.
    pub tripped: bool,
    /// Characterization runs executed.
    pub runs: u64,
    /// Watchdog resets.
    pub watchdog_resets: u64,
    /// Quarantined setups.
    pub quarantined_setups: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Recovery backoff, ms.
    pub backoff_ms: u64,
    /// Simulated board-seconds the job cost.
    pub sim_cost_seconds: f64,
}

/// What the fleet measured. Bit-identical for a given `(spec, campaign)`
/// regardless of pool size or dispatch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCharacterization {
    /// Fleet size.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// Merged safe-point database.
    pub store: SafePointStore,
    /// Population statistics.
    pub stats: FleetStats,
    /// Per-job summaries in `(board, attempt)` order.
    pub jobs: Vec<JobSummary>,
    /// Campaign telemetry counters summed over jobs in `(board, attempt)`
    /// order.
    pub campaign_counters: Vec<(String, u64)>,
    /// Total simulated work, seconds (the 1-worker makespan).
    pub sim_serial_seconds: f64,
}

/// How the run was executed. Varies with pool size; excluded from the
/// determinism comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetExecution {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed (initial boards + requeues).
    pub jobs: u64,
    /// Boards the safety net evicted and re-queued.
    pub requeues: u64,
    /// Jobs the coordinator pushed.
    pub queue_pushed: u64,
    /// Batch refills from the injector.
    pub queue_batches: u64,
    /// Steal operations between workers.
    pub queue_steals: u64,
    /// Jobs each worker actually ran.
    pub per_worker_jobs: Vec<u64>,
    /// Modeled makespan of the pool, simulated seconds.
    pub sim_makespan_seconds: f64,
    /// Modeled speedup over serial.
    pub speedup: f64,
}

impl FleetExecution {
    /// Builds the execution record from the run's scheduling artifacts.
    pub fn new(
        queue: QueueStats,
        per_worker_jobs: Vec<u64>,
        requeues: u64,
        plan: &ScheduleModel,
    ) -> Self {
        FleetExecution {
            workers: plan.workers,
            jobs: per_worker_jobs.iter().sum(),
            requeues,
            queue_pushed: queue.pushed,
            queue_batches: queue.batches,
            queue_steals: queue.steals,
            per_worker_jobs,
            sim_makespan_seconds: plan.makespan_seconds,
            speedup: plan.speedup(),
        }
    }
}

/// The complete result of [`run_fleet`](crate::orchestrator::run_fleet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The deterministic measurement side.
    pub characterization: FleetCharacterization,
    /// The execution side (pool-dependent).
    pub execution: FleetExecution,
    /// The observatory's distillation of the run: merged per-board
    /// timeline, reconstructed incidents and SLO alerts. Deterministic
    /// across pool sizes (asserted via [`FleetReport::observatory_json`]),
    /// but kept out of [`FleetReport::characterization_json`] so the
    /// longstanding byte-identity artifact is unchanged.
    #[serde(default)]
    pub observatory: ObservatoryReport,
}

impl FleetReport {
    /// Canonical JSON of the deterministic side — the string the
    /// N-workers ≡ serial invariant is asserted on, byte for byte.
    pub fn characterization_json(&self) -> String {
        serde::json::to_string(&self.characterization)
    }

    /// Canonical JSON of the observatory report — byte-identical across
    /// pool sizes, like the characterization.
    pub fn observatory_json(&self) -> String {
        self.observatory.chronicle_json()
    }

    /// Human-readable fleet summary.
    pub fn render(&self) -> String {
        let c = &self.characterization;
        let x = &self.execution;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} boards (seed {}), {} characterized, {} job(s), {} requeue(s)",
            c.boards, c.seed, c.stats.characterized, x.jobs, x.requeues
        );
        let corners: Vec<String> = c
            .stats
            .corner_histogram
            .iter()
            .map(|(bin, n)| format!("{bin:?}:{n}"))
            .collect();
        let _ = writeln!(out, "corners: {}", corners.join(" "));
        let _ = writeln!(
            out,
            "margin: min {} mV, median {} mV, p95 {} mV",
            c.stats
                .min_margin_mv
                .map_or_else(|| "-".into(), |m| m.to_string()),
            c.stats
                .median_margin_mv
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
            c.stats
                .p95_margin_mv
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
        );
        let _ = writeln!(
            out,
            "projection: {:.1} W fleet-wide ({:.1}% mean per board)",
            c.stats.total_savings_watts,
            100.0 * c.stats.mean_savings_fraction
        );
        let _ = writeln!(
            out,
            "pool: {} worker(s), modeled makespan {:.0} s of {:.0} s serial (speedup {:.2}x), \
             {} batch refill(s), {} steal(s)",
            x.workers,
            x.sim_makespan_seconds,
            c.sim_serial_seconds,
            x.speedup,
            x.queue_batches,
            x.queue_steals
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        let store = SafePointStore::new();
        let stats = store.stats();
        FleetReport {
            characterization: FleetCharacterization {
                boards: 0,
                seed: 1,
                store,
                stats,
                jobs: Vec::new(),
                campaign_counters: Vec::new(),
                sim_serial_seconds: 0.0,
            },
            execution: FleetExecution::new(
                QueueStats::default(),
                vec![0, 0],
                0,
                &ScheduleModel::plan(&[], 2),
            ),
            observatory: ObservatoryReport::default(),
        }
    }

    #[test]
    fn characterization_json_ignores_the_execution_side() {
        let a = report();
        let mut b = report();
        b.execution.queue_steals = 99;
        b.execution.per_worker_jobs = vec![7, 3];
        assert_ne!(a, b);
        assert_eq!(a.characterization_json(), b.characterization_json());
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let rendered = report().render();
        assert!(rendered.contains("fleet: 0 boards (seed 1)"));
        assert!(rendered.contains("2 worker(s)"));
        assert!(rendered.contains("margin: min -"));
    }
}
