//! Durable write-ahead journaling for fleet progress.
//!
//! The orchestrator's purity argument makes *recomputation* cheap, but a
//! coordinator crash used to lose the bookkeeping of what had already
//! been computed: every in-flight claim and every landed outcome died
//! with the process. This module is the missing durability layer:
//!
//! * [`JournalStore`] — the storage boundary. [`MemStore`] backs tests
//!   and the chaos harness (which wraps it to tear writes on purpose);
//!   [`DirStore`] backs real deployments with an append-only journal
//!   file and atomic write-then-rename checkpoint commits, so a torn
//!   checkpoint write damages a temp file while the last-good checkpoint
//!   stays intact.
//! * [`FleetJournal`] — CRC-framed [`JournalEntry`] records appended as
//!   the coordinator claims jobs, receives completions, and merges
//!   records into the [`SafePointStore`]. Each frame is
//!   `[len][crc32][payload]`; replay verifies every frame and stops at
//!   the first damaged one, reporting a typed [`JournalDamage`] and
//!   returning the intact prefix — which is always safe to act on,
//!   because job execution is pure and store merges are idempotent:
//!   re-running anything the damaged tail had recorded converges to the
//!   same bytes (property-tested in `tests/chaos.rs`).
//! * Checkpoint commits — periodic [`SafePointStore`] snapshots sealed
//!   with `char_fw::integrity` CRC-32 + length headers. A corrupt
//!   checkpoint is a typed [`CheckpointError`], and recovery falls back
//!   to journal replay (the checkpoint is an accelerator and an export
//!   artifact, never the sole authority).

use crate::job::BoardOutcome;
use char_fw::integrity::{crc32, seal, unseal};
use char_fw::resilience::CheckpointError;
use guardband_core::safepoint::SafePointStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// One durable record of fleet progress.
// Variant sizes are deliberately lopsided: entries exist only long
// enough to be framed into (or decoded from) the byte stream, so
// boxing the outcome would buy nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// The campaign's identity, written once when a fresh journal is
    /// first used. Resuming a journal under a different campaign is a
    /// caller bug and is rejected at replay time by the orchestrator.
    CampaignBegun {
        /// Fleet size.
        boards: u32,
        /// Master seed.
        seed: u64,
        /// Attempt ceiling in force (part of campaign semantics).
        max_attempts: u32,
        /// Requeue floor backoff in force (part of campaign semantics).
        requeue_backoff_mv: u32,
    },
    /// The coordinator handed a job to the pool. A claim without a
    /// matching completion marks work that was in flight at a crash.
    JobClaimed {
        /// Board id.
        board: u32,
        /// Re-characterization attempt.
        attempt: u32,
        /// Raised floor for re-characterization, mV.
        floor_override_mv: Option<u32>,
    },
    /// A worker's outcome landed at the coordinator. Carries the whole
    /// outcome: replaying completions is what lets recovery re-run
    /// *only* unfinished jobs.
    JobCompleted {
        /// The landed outcome.
        outcome: BoardOutcome,
    },
    /// The outcome's record was merged into the safe-point store under
    /// `epoch`. Merges are idempotent, so replaying this entry any
    /// number of times converges.
    MergeCommitted {
        /// Epoch the record merged under (0 for single-epoch fleet runs,
        /// the month for lifetime deployments).
        epoch: u32,
        /// Board id of the merged record.
        board: u32,
        /// Attempt of the merged record.
        attempt: u32,
    },
    /// One lifetime deployment round (cold characterization or a
    /// monthly re-characterization) committed with all its outcomes.
    RoundCommitted {
        /// The simulated month the round ran in.
        month: u32,
        /// The round's outcomes in `(board, attempt)` order.
        outcomes: Vec<BoardOutcome>,
    },
    /// The campaign finished and the final checkpoint was committed.
    CampaignCompleted,
}

/// Why journal replay stopped before the end of the byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalDamage {
    /// The final frame's header or payload is cut short — a torn append.
    TruncatedFrame {
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A frame's payload does not match its recorded CRC-32.
    CorruptFrame {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC of the bytes present.
        actual: u32,
    },
    /// A frame verified but its payload does not decode as a
    /// [`JournalEntry`] — an incompatible or garbage record.
    UndecodableEntry {
        /// The decoder's message.
        message: String,
    },
}

impl std::fmt::Display for JournalDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalDamage::TruncatedFrame { expected, actual } => {
                write!(f, "torn journal frame: {actual} of {expected} bytes")
            }
            JournalDamage::CorruptFrame { expected, actual } => {
                write!(
                    f,
                    "corrupt journal frame: crc32 {actual:08x} != {expected:08x}"
                )
            }
            JournalDamage::UndecodableEntry { message } => {
                write!(f, "undecodable journal entry: {message}")
            }
        }
    }
}

/// What replay recovered from the journal bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Every entry of the intact prefix, in append order.
    pub entries: Vec<JournalEntry>,
    /// Why replay stopped early, if it did. `None` means the whole
    /// journal verified end to end.
    pub damage: Option<JournalDamage>,
}

/// The storage boundary a [`FleetJournal`] writes through.
///
/// Implementations must make `commit_checkpoint` atomic with respect to
/// crashes of the *writer* — a reader must always see either the old or
/// the new checkpoint bytes, never a mixture. [`DirStore`] gets this
/// from write-then-rename; [`MemStore`] from a single `Vec` swap. (The
/// chaos harness deliberately provides a store that breaks this
/// contract, to prove the CRC seal catches what atomicity normally
/// prevents.)
pub trait JournalStore {
    /// Appends raw frame bytes to the journal tail.
    fn append(&mut self, frame: &[u8]);
    /// The whole journal byte stream, in append order.
    fn journal_bytes(&self) -> Vec<u8>;
    /// Atomically replaces the checkpoint with `payload`.
    fn commit_checkpoint(&mut self, payload: &[u8]);
    /// The current checkpoint bytes, if one was ever committed.
    fn checkpoint_bytes(&self) -> Option<Vec<u8>>;
}

/// In-memory storage for tests, benches and the chaos harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStore {
    journal: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Total journal bytes held (diagnostics).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Damages the journal in place by keeping only the first `keep`
    /// bytes — the chaos harness's torn-append primitive.
    pub fn truncate_journal(&mut self, keep: usize) {
        self.journal.truncate(keep);
    }

    /// Flips one bit of the committed checkpoint (no-op without one) —
    /// the chaos harness's bit-rot primitive.
    pub fn flip_checkpoint_bit(&mut self, byte: usize, bit: u8) {
        if let Some(ckpt) = &mut self.checkpoint {
            if !ckpt.is_empty() {
                let idx = byte % ckpt.len();
                ckpt[idx] ^= 1 << (bit % 8);
            }
        }
    }

    /// Tears the committed checkpoint by dropping its last `drop` bytes
    /// (no-op without one) — a write that died mid-`write(2)`.
    pub fn truncate_checkpoint(&mut self, drop: usize) {
        if let Some(ckpt) = &mut self.checkpoint {
            ckpt.truncate(ckpt.len().saturating_sub(drop));
        }
    }

    /// Deletes the committed checkpoint outright — a lost file. Returns
    /// whether there was one to lose.
    pub fn drop_checkpoint(&mut self) -> bool {
        self.checkpoint.take().is_some()
    }
}

impl JournalStore for MemStore {
    fn append(&mut self, frame: &[u8]) {
        self.journal.extend_from_slice(frame);
    }

    fn journal_bytes(&self) -> Vec<u8> {
        self.journal.clone()
    }

    fn commit_checkpoint(&mut self, payload: &[u8]) {
        self.checkpoint = Some(payload.to_vec());
    }

    fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        self.checkpoint.clone()
    }
}

/// File-backed storage: `fleet.wal` appended in place, `store.ckpt`
/// committed by writing `store.ckpt.tmp` and renaming over the target —
/// the rename is the commit point, so a crash mid-write damages only
/// the temp file and the last-good checkpoint survives.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a journal directory.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        fs::create_dir_all(&dir).expect("journal directory is creatable");
        DirStore { dir }
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("fleet.wal")
    }

    fn ckpt_path(&self) -> PathBuf {
        self.dir.join("store.ckpt")
    }
}

impl JournalStore for DirStore {
    fn append(&mut self, frame: &[u8]) {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())
            .expect("journal file is appendable");
        file.write_all(frame).expect("journal append succeeds");
    }

    fn journal_bytes(&self) -> Vec<u8> {
        fs::read(self.wal_path()).unwrap_or_default()
    }

    fn commit_checkpoint(&mut self, payload: &[u8]) {
        let tmp = self.dir.join("store.ckpt.tmp");
        fs::write(&tmp, payload).expect("checkpoint temp write succeeds");
        fs::rename(&tmp, self.ckpt_path()).expect("checkpoint rename succeeds");
    }

    fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        fs::read(self.ckpt_path()).ok()
    }
}

/// The write-ahead journal: CRC-framed entries over a [`JournalStore`].
#[derive(Debug)]
pub struct FleetJournal<S: JournalStore> {
    store: S,
    appended: u64,
}

impl<S: JournalStore> FleetJournal<S> {
    /// Wraps a storage backend.
    pub fn new(store: S) -> Self {
        FleetJournal { store, appended: 0 }
    }

    /// The storage backend (the chaos harness reaches through to damage
    /// it between rounds).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Entries appended through this handle (not counting pre-existing
    /// journal bytes).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one entry: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
    pub fn append(&mut self, entry: &JournalEntry) {
        let payload = serde::json::to_string(entry);
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.store.append(&frame);
        self.appended += 1;
    }

    /// Replays the journal, verifying every frame. Stops at the first
    /// damaged frame and reports it; the returned prefix is always safe
    /// to act on (see the module docs).
    pub fn replay(&self) -> Replay {
        let bytes = self.store.journal_bytes();
        let mut entries = Vec::new();
        let mut offset = 0usize;
        let mut damage = None;
        while offset < bytes.len() {
            let remaining = bytes.len() - offset;
            if remaining < 8 {
                damage = Some(JournalDamage::TruncatedFrame {
                    expected: 8,
                    actual: remaining,
                });
                break;
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let expected = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let start = offset + 8;
            if start + len > bytes.len() {
                damage = Some(JournalDamage::TruncatedFrame {
                    expected: len,
                    actual: bytes.len() - start,
                });
                break;
            }
            let payload = &bytes[start..start + len];
            let actual = crc32(payload);
            if actual != expected {
                damage = Some(JournalDamage::CorruptFrame { expected, actual });
                break;
            }
            let text = match std::str::from_utf8(payload) {
                Ok(text) => text,
                Err(err) => {
                    damage = Some(JournalDamage::UndecodableEntry {
                        message: err.to_string(),
                    });
                    break;
                }
            };
            match serde::json::from_str::<JournalEntry>(text) {
                Ok(entry) => entries.push(entry),
                Err(err) => {
                    damage = Some(JournalDamage::UndecodableEntry {
                        message: err.to_string(),
                    });
                    break;
                }
            }
            offset = start + len;
        }
        Replay { entries, damage }
    }

    /// Commits a sealed snapshot of the merged store (atomic at the
    /// storage layer, CRC-verified at load).
    pub fn commit_store_checkpoint(&mut self, store: &SafePointStore) {
        let sealed = seal(&serde::json::to_string(store));
        self.store.commit_checkpoint(sealed.as_bytes());
    }

    /// Loads the last committed store checkpoint, if any.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the seal fails verification
    /// (the caller falls back to journal replay — last-good data);
    /// [`CheckpointError::Schema`] when the payload is intact but does
    /// not decode as a [`SafePointStore`].
    pub fn load_store_checkpoint(&self) -> Result<Option<SafePointStore>, CheckpointError> {
        let Some(bytes) = self.store.checkpoint_bytes() else {
            return Ok(None);
        };
        let text = String::from_utf8(bytes).map_err(|_| {
            CheckpointError::Corrupt(char_fw::integrity::CorruptCheckpoint::MalformedHeader)
        })?;
        let payload = unseal(&text).map_err(CheckpointError::Corrupt)?;
        serde::json::from_str(payload)
            .map(Some)
            .map_err(CheckpointError::Schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(board: u32) -> JournalEntry {
        JournalEntry::JobClaimed {
            board,
            attempt: 0,
            floor_override_mv: None,
        }
    }

    #[test]
    fn entries_roundtrip_through_the_frame_format() {
        let mut journal = FleetJournal::new(MemStore::new());
        let entries = vec![
            JournalEntry::CampaignBegun {
                boards: 4,
                seed: 2018,
                max_attempts: 2,
                requeue_backoff_mv: 15,
            },
            claim(0),
            claim(1),
            JournalEntry::MergeCommitted {
                epoch: 0,
                board: 0,
                attempt: 0,
            },
            JournalEntry::CampaignCompleted,
        ];
        for entry in &entries {
            journal.append(entry);
        }
        let replay = journal.replay();
        assert_eq!(replay.entries, entries);
        assert_eq!(replay.damage, None);
        assert_eq!(journal.appended(), 5);
    }

    #[test]
    fn a_torn_append_loses_only_the_tail() {
        let mut journal = FleetJournal::new(MemStore::new());
        journal.append(&claim(0));
        journal.append(&claim(1));
        let intact = journal.store_mut().journal_len();
        journal.append(&claim(2));
        // Tear the last frame mid-payload.
        journal.store_mut().truncate_journal(intact + 10);
        let replay = journal.replay();
        assert_eq!(replay.entries, vec![claim(0), claim(1)]);
        assert!(matches!(
            replay.damage,
            Some(JournalDamage::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn a_flipped_journal_byte_is_a_crc_mismatch() {
        let mut journal = FleetJournal::new(MemStore::new());
        journal.append(&claim(0));
        let mut bytes = journal.store_mut().journal_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut damaged = FleetJournal::new(MemStore::new());
        damaged.store_mut().append(&bytes);
        let replay = damaged.replay();
        assert!(replay.entries.is_empty());
        assert!(matches!(
            replay.damage,
            Some(JournalDamage::CorruptFrame { .. })
        ));
    }

    #[test]
    fn checkpoints_roundtrip_and_detect_bit_rot() {
        let mut journal = FleetJournal::new(MemStore::new());
        assert_eq!(journal.load_store_checkpoint().unwrap(), None);
        let store = SafePointStore::new();
        journal.commit_store_checkpoint(&store);
        assert_eq!(journal.load_store_checkpoint().unwrap(), Some(store));
        // Flip a payload bit (past the header) and the load is a typed
        // corruption, not a schema error.
        let len = journal.store_mut().checkpoint_bytes().unwrap().len();
        journal.store_mut().flip_checkpoint_bit(len - 1, 1);
        assert!(matches!(
            journal.load_store_checkpoint(),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn dir_store_survives_reopen_and_commits_atomically() {
        let dir =
            std::env::temp_dir().join(format!("guardband-journal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut journal = FleetJournal::new(DirStore::open(&dir));
            journal.append(&claim(7));
            journal.commit_store_checkpoint(&SafePointStore::new());
        }
        // A fresh handle (a restarted coordinator) sees everything.
        let journal = FleetJournal::new(DirStore::open(&dir));
        let replay = journal.replay();
        assert_eq!(replay.entries, vec![claim(7)]);
        assert_eq!(replay.damage, None);
        assert!(journal.load_store_checkpoint().unwrap().is_some());
        // No temp file left behind: the rename completed.
        assert!(!dir.join("store.ckpt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
