//! Deterministic makespan model.
//!
//! The containerized test environment offers no real parallel silicon,
//! so fleet speedup is *modeled*, not clocked: every job reports what it
//! would have cost on real hardware in simulated board-seconds, and a
//! greedy earliest-available-worker list scheduler turns those costs
//! into a per-pool-size makespan. The model is a pure function of the
//! (sorted) cost list, so the speedup record in `BENCH_fleet.json` is
//! reproducible bit-for-bit on any host. Host wall-clock numbers are
//! reported alongside as informational only.

use serde::{Deserialize, Serialize};

/// A greedy list schedule of job costs over a worker pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleModel {
    /// Pool size the plan was computed for.
    pub workers: usize,
    /// Simulated busy seconds per worker.
    pub per_worker_busy_seconds: Vec<f64>,
    /// Simulated completion time of the whole fleet.
    pub makespan_seconds: f64,
    /// Total simulated work (the 1-worker makespan).
    pub serial_seconds: f64,
}

impl ScheduleModel {
    /// Plans `costs` (simulated seconds per job, in deterministic job
    /// order) over `workers` workers: each job goes to the earliest-
    /// available worker, ties broken by lowest index.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn plan(costs: &[f64], workers: usize) -> Self {
        assert!(workers > 0, "schedule needs at least one worker");
        let mut busy = vec![0.0f64; workers];
        for cost in costs {
            let earliest = busy
                .iter()
                .enumerate()
                .min_by(|(ai, at), (bi, bt)| {
                    at.partial_cmp(bt)
                        .expect("costs are finite")
                        .then(ai.cmp(bi))
                })
                .map(|(idx, _)| idx)
                .expect("workers > 0");
            busy[earliest] += cost;
        }
        let makespan = busy.iter().copied().fold(0.0, f64::max);
        ScheduleModel {
            workers,
            per_worker_busy_seconds: busy,
            makespan_seconds: makespan,
            serial_seconds: costs.iter().sum(),
        }
    }

    /// Modeled speedup of this pool over serial execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan_seconds > 0.0 {
            self.serial_seconds / self.makespan_seconds
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_worker_is_the_serial_sum() {
        let plan = ScheduleModel::plan(&[3.0, 1.0, 2.0], 1);
        assert_eq!(plan.makespan_seconds, 6.0);
        assert_eq!(plan.speedup(), 1.0);
    }

    #[test]
    fn uniform_costs_split_evenly() {
        let costs = vec![1.0; 8];
        let plan = ScheduleModel::plan(&costs, 4);
        assert_eq!(plan.makespan_seconds, 2.0);
        assert!((plan.speedup() - 4.0).abs() < 1e-12);
        assert!(plan.per_worker_busy_seconds.iter().all(|b| *b == 2.0));
    }

    #[test]
    fn the_longest_job_bounds_the_makespan() {
        let plan = ScheduleModel::plan(&[10.0, 1.0, 1.0, 1.0], 4);
        assert_eq!(plan.makespan_seconds, 10.0);
    }

    #[test]
    fn an_empty_fleet_schedules_to_zero() {
        let plan = ScheduleModel::plan(&[], 8);
        assert_eq!(plan.makespan_seconds, 0.0);
        assert_eq!(plan.speedup(), 1.0);
    }
}
