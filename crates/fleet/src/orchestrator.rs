//! The fleet coordinator: shard, execute, evict, merge.
//!
//! [`run_fleet`] seeds a bounded work-stealing queue with one job per
//! board, runs them on a pool of worker threads, listens for outcomes,
//! and re-queues any board the safety net evicted (breaker tripped) with
//! a raised search floor. When the last job lands it sorts every outcome
//! into `(board, attempt)` order and only then aggregates — the merged
//! [`SafePointStore`], population stats, summed campaign counters and
//! the modeled schedule are all computed from sorted data, never from
//! arrival order. Together with pure board specs and pure job execution
//! this yields the headline invariant: an N-worker run's
//! characterization output is byte-identical to the serial run's.

use crate::job::{self, BoardOutcome, FleetCampaign, FleetJob};
use crate::journal::{FleetJournal, JournalDamage, JournalEntry, JournalStore};
use crate::population::FleetSpec;
use crate::queue::{FleetQueue, QueueStats};
use crate::report::{FleetCharacterization, FleetExecution, FleetReport, JobSummary};
use crate::schedule::ScheduleModel;
use guardband_core::safepoint::SafePointStore;
use observatory::{BoardStream, Observatory, SloSpec, StreamBuilder};
use power_model::units::Millivolts;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;
use telemetry::{counter, event, gauge, observe, span, FieldValue, Level};

/// Per-board power-savings floor for the fleet SLO, watts. A
/// characterized board on the DSN'18 testbed reclaims several watts;
/// a board whose record projects less than this either failed to
/// characterize or is pinned at nominal, and the observatory should page.
pub const FLEET_SAVINGS_FLOOR_WATTS: f64 = 0.5;

/// Name of the per-board savings-floor SLO declared by [`run_fleet`].
pub const FLEET_SAVINGS_SLO: &str = "board-savings-floor";

/// Unique completions between durable store-checkpoint commits.
pub const CHECKPOINT_EVERY: u64 = 4;

/// The eviction predicate and floor arithmetic, as one pure function:
/// `Some(raised_floor_mv)` when `outcome` must be re-queued for another
/// attempt, `None` when it is terminal. Every consumer of the predicate
/// — the live coordinator loop, the observatory re-synthesis, durable
/// crash recovery's job-closure recomputation, and the chaos invariant
/// checker — calls this one definition, so they can never drift apart.
pub fn eviction_floor(outcome: &BoardOutcome, config: &FleetConfig) -> Option<u32> {
    if outcome.tripped && outcome.attempt + 1 < config.max_attempts {
        outcome
            .highest_failure_mv
            .map(|mv| (mv + config.requeue_backoff_mv).min(Millivolts::XGENE2_NOMINAL.as_u32()))
    } else {
        None
    }
}

/// Builds the fleet observatory from `(board, attempt)`-sorted outcomes.
///
/// Every input is already arrival-order-free: per-job traces and dumps
/// ride on the sorted outcomes, and the coordinator's eviction events
/// are *re-synthesized* here from the same predicate and floor
/// arithmetic the live path uses, rather than captured from the racy
/// coordinator thread. The result is byte-identical across pool sizes.
fn assemble_observatory(
    outcomes: &[BoardOutcome],
    store: &SafePointStore,
    config: &FleetConfig,
) -> Observatory {
    let mut obs = Observatory::new();
    obs.add_slo(SloSpec::savings_floor(
        FLEET_SAVINGS_SLO,
        FLEET_SAVINGS_FLOOR_WATTS,
    ));
    for outcome in outcomes {
        let epoch = u64::from(outcome.attempt);
        obs.ingest_stream(BoardStream::from_events(
            epoch,
            outcome.board,
            outcome.trace.clone(),
        ));
        obs.ingest_dumps(epoch, outcome.board, outcome.dumps.clone());
        // The live coordinator loop's eviction predicate, verbatim.
        if let Some(floor) = eviction_floor(outcome, config) {
            let mut coordinator = StreamBuilder::coordinator(epoch, outcome.board);
            coordinator.push(
                Level::Warn,
                "fleet_board_evicted",
                vec![
                    (
                        "board".to_owned(),
                        FieldValue::U64(u64::from(outcome.board)),
                    ),
                    (
                        "attempt".to_owned(),
                        FieldValue::U64(u64::from(outcome.attempt)),
                    ),
                    (
                        "raised_floor_mv".to_owned(),
                        FieldValue::U64(u64::from(floor)),
                    ),
                ],
            );
            obs.ingest_stream(coordinator.finish());
        }
    }
    // One savings observation per surviving record, in board order.
    for record in store.records() {
        obs.slo_observe(
            FLEET_SAVINGS_SLO,
            u64::from(record.board),
            Some(record.board),
            record.savings_watts,
        );
    }
    obs
}

/// Pool and eviction policy of a fleet run. Changing any knob here may
/// change *how fast* the fleet characterizes, never *what* it measures —
/// except `max_attempts` and `requeue_backoff_mv`, which are part of the
/// campaign semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads.
    pub workers: usize,
    /// Injector bound (backpressure on the coordinator).
    pub queue_capacity: usize,
    /// Jobs a worker refills its local deque with per injector visit.
    pub batch_size: usize,
    /// Characterization attempts per board (1 = never re-queue).
    pub max_attempts: u32,
    /// How far above the highest observed failure a re-queued board's
    /// search floor is raised, mV.
    pub requeue_backoff_mv: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            queue_capacity: 64,
            batch_size: 4,
            max_attempts: 2,
            requeue_backoff_mv: 15,
        }
    }
}

impl FleetConfig {
    /// The default policy with an explicit pool size.
    pub fn with_workers(workers: usize) -> Self {
        FleetConfig {
            workers,
            ..FleetConfig::default()
        }
    }
}

/// Characterizes the whole fleet. See the module docs for the
/// determinism argument.
///
/// # Panics
///
/// Panics if `config.workers` or `config.max_attempts` is zero, or if a
/// worker thread panics.
pub fn run_fleet(spec: &FleetSpec, campaign: &FleetCampaign, config: &FleetConfig) -> FleetReport {
    assert!(config.max_attempts > 0, "fleet needs at least one attempt");
    let _fleet_span = span!(
        Level::Info,
        "fleet",
        boards = spec.boards,
        workers = config.workers as u64,
    );
    let queue = FleetQueue::new(config.workers, config.queue_capacity, config.batch_size);
    let (tx, rx) = mpsc::channel::<BoardOutcome>();
    let mut outcomes: Vec<BoardOutcome> = Vec::new();
    let mut requeues: u64 = 0;

    let per_worker_jobs: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    let mut jobs = 0u64;
                    while let Some(next) = queue.next(w) {
                        let outcome = job::execute(&next, campaign, spec.population);
                        jobs += 1;
                        tx.send(outcome).expect("coordinator outlives workers");
                    }
                    jobs
                })
            })
            .collect();
        drop(tx);

        let mut outstanding: u64 = 0;
        for board in spec.all_boards() {
            queue.push(FleetJob {
                board,
                attempt: 0,
                floor_override_mv: None,
            });
            outstanding += 1;
        }
        while outstanding > 0 {
            let outcome = rx.recv().expect("workers outlive the backlog");
            outstanding -= 1;
            // Eviction: a tripped breaker means the board misbehaved below
            // its real limits. Send it back to nominal and re-characterize
            // with the floor raised clear of the observed crash zone.
            if let Some(floor) = eviction_floor(&outcome, config) {
                event!(
                    Level::Warn,
                    "fleet_board_evicted",
                    board = outcome.board,
                    attempt = outcome.attempt,
                    raised_floor_mv = floor,
                );
                queue.push(FleetJob {
                    board: spec.board(outcome.board),
                    attempt: outcome.attempt + 1,
                    floor_override_mv: Some(floor),
                });
                outstanding += 1;
                requeues += 1;
            }
            outcomes.push(outcome);
        }
        queue.close();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    aggregate(
        spec,
        config,
        outcomes,
        per_worker_jobs,
        queue.stats(),
        requeues,
    )
}

/// Folds outcomes into the final [`FleetReport`]. Everything here works
/// over `(board, attempt)`-sorted data, so no trace of arrival order —
/// or of *which run incarnation executed which job* — survives into the
/// report: [`run_fleet`] and a crash-recovered [`run_fleet_durable`]
/// both land here and produce byte-identical characterization output.
fn aggregate(
    spec: &FleetSpec,
    config: &FleetConfig,
    mut outcomes: Vec<BoardOutcome>,
    per_worker_jobs: Vec<u64>,
    queue_stats: QueueStats,
    requeues: u64,
) -> FleetReport {
    outcomes.sort_by_key(|o| (o.board, o.attempt));
    let mut store = SafePointStore::new();
    for outcome in &outcomes {
        store.insert(outcome.record.clone());
    }
    let stats = store.stats();
    let costs: Vec<f64> = outcomes.iter().map(|o| o.sim_cost_seconds).collect();
    let plan = ScheduleModel::plan(&costs, config.workers);

    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for outcome in &outcomes {
        for (name, value) in &outcome.metrics.counters {
            *summed.entry(name.clone()).or_insert(0) += value;
        }
    }
    let campaign_counters: Vec<(String, u64)> = summed.into_iter().collect();

    counter!("fleet_jobs_total", outcomes.len() as u64);
    counter!("fleet_requeues_total", requeues);
    counter!("fleet_boards_characterized", stats.characterized as u64);
    gauge!("fleet_total_savings_watts", stats.total_savings_watts);
    let _ = telemetry::with_registry(|reg| {
        reg.register_histogram(
            "fleet_margin_mv",
            &[10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 120.0],
        );
    });
    for record in store.records() {
        if let Some(margin) = record.margin_mv() {
            observe!("fleet_margin_mv", margin as f64);
        }
    }
    // Per-board labeled series alongside the fleet-wide aggregates, so a
    // Prometheus scrape can tell *which* board is dragging the totals.
    let _ = telemetry::with_registry(|reg| {
        for record in store.records() {
            let board = format!("b{}", record.board);
            let labels = [("board", board.as_str())];
            reg.gauge_set_labeled("fleet_board_savings_watts", &labels, record.savings_watts);
            if let Some(margin) = record.margin_mv() {
                reg.gauge_set_labeled("fleet_board_margin_mv", &labels, margin as f64);
            }
        }
    });
    for (worker, jobs) in per_worker_jobs.iter().enumerate() {
        event!(
            Level::Debug,
            "fleet_worker_done",
            worker = worker as u64,
            jobs = *jobs,
        );
    }

    let jobs = outcomes
        .iter()
        .map(|o| JobSummary {
            board: o.board,
            attempt: o.attempt,
            tripped: o.tripped,
            runs: o.runs,
            watchdog_resets: o.watchdog_resets,
            quarantined_setups: o.quarantined_setups,
            breaker_trips: o.breaker_trips,
            backoff_ms: o.backoff_ms,
            sim_cost_seconds: o.sim_cost_seconds,
        })
        .collect();
    let characterization = FleetCharacterization {
        boards: spec.boards,
        seed: spec.seed,
        store,
        stats,
        jobs,
        campaign_counters,
        sim_serial_seconds: plan.serial_seconds,
    };
    let execution = FleetExecution::new(queue_stats, per_worker_jobs, requeues, &plan);
    let observatory = assemble_observatory(&outcomes, &characterization.store, config).finish();
    FleetReport {
        characterization,
        execution,
        observatory,
    }
}

/// Fault-injection schedule for one [`run_fleet_durable`] incarnation.
/// Chaos-agnostic on purpose: the chaos crate compiles its seeded
/// [`ChaosPlan`](../../chaos) rounds down to this, but production
/// callers just pass [`Disruption::none`] and get the durability
/// machinery (journaling, checkpoints, dead-worker handling) with no
/// faults injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Disruption {
    /// Kill the coordinator (return [`FleetInterrupted::CoordinatorKilled`])
    /// once it has processed this many unique completions in this
    /// incarnation. `None` or a count past the backlog never fires.
    pub kill_coordinator_after: Option<u64>,
    /// `(worker, after_jobs)`: the worker dies *holding its next job*
    /// after completing `after_jobs` — modelling a lease expiry whose
    /// in-flight job and stolen backlog must come back exactly once.
    pub worker_deaths: Vec<(usize, u64)>,
    /// Deliver the first N completions twice — at-least-once queue
    /// semantics. Duplicates must be absorbed by idempotent merges and
    /// dropped from the aggregation multiset.
    pub duplicate_deliveries: u64,
}

impl Disruption {
    /// No injected faults: plain durable operation.
    pub fn none() -> Self {
        Disruption::default()
    }
}

/// Why a durable incarnation stopped short of completion. Both variants
/// are *recoverable*: restart [`run_fleet_durable`] on the same journal
/// and it resumes from the intact prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetInterrupted {
    /// The injected coordinator kill fired.
    CoordinatorKilled {
        /// Unique completions this incarnation had processed.
        completions: u64,
    },
    /// Every worker died with jobs still outstanding: the pool degraded
    /// to zero and the campaign cannot make progress.
    PoolLost {
        /// Unique completions this incarnation had processed.
        completions: u64,
        /// Workers lost before the pool emptied.
        workers_lost: u64,
    },
}

impl std::fmt::Display for FleetInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetInterrupted::CoordinatorKilled { completions } => {
                write!(f, "coordinator killed after {completions} completions")
            }
            FleetInterrupted::PoolLost {
                completions,
                workers_lost,
            } => write!(
                f,
                "worker pool lost ({workers_lost} deaths) after {completions} completions"
            ),
        }
    }
}

/// Recovery bookkeeping from one *successful* durable incarnation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurableStats {
    /// Completions recovered from the journal instead of re-executed.
    pub resumed_completions: u64,
    /// Jobs actually executed by this incarnation's pool.
    pub executed_jobs: u64,
    /// Duplicate deliveries absorbed (merged idempotently, dropped from
    /// the aggregation multiset).
    pub duplicates_dropped: u64,
    /// The store checkpoint failed its seal or schema check and recovery
    /// fell back to journal replay.
    pub checkpoint_rejected: bool,
    /// Damage found at the journal tail during replay, if any.
    pub journal_damage: Option<JournalDamage>,
    /// Workers that died during this incarnation (the pool shrank but
    /// survived).
    pub workers_lost: u64,
}

/// A completed durable run: the ordinary report plus how it got there.
#[derive(Debug)]
pub struct DurableRun {
    /// The fleet report — `characterization_json()` is byte-identical to
    /// an uninterrupted [`run_fleet`] of the same spec and campaign.
    pub report: FleetReport,
    /// Recovery bookkeeping for this incarnation.
    pub stats: DurableStats,
}

enum WorkerMsg {
    Done(BoardOutcome),
    Died {
        worker: usize,
        in_flight: Option<FleetJob>,
    },
}

/// [`run_fleet`] with crash consistency: every claim, completion and
/// merge is journaled before it takes effect, the merged store is
/// checkpointed (sealed, atomically) every [`CHECKPOINT_EVERY`]
/// completions, and on entry the journal is replayed so a restarted
/// coordinator re-runs *only* unfinished jobs — recomputing the
/// expected-job closure from journaled completions with the same
/// [`eviction_floor`] predicate the live loop uses, which is sound
/// because job execution is pure. Dead workers surrender their stolen
/// backlog and in-flight job exactly once; a pool that shrinks keeps
/// going, a pool that empties returns [`FleetInterrupted::PoolLost`].
///
/// # Errors
///
/// Returns [`FleetInterrupted`] when an injected fault stops the
/// incarnation. Restarting on the same journal resumes the campaign.
///
/// # Panics
///
/// Panics if `config.workers` or `config.max_attempts` is zero, if a
/// worker thread panics, or if the journal belongs to a different
/// campaign (different fleet size, seed or eviction policy).
pub fn run_fleet_durable<S: JournalStore>(
    spec: &FleetSpec,
    campaign: &FleetCampaign,
    config: &FleetConfig,
    journal: &mut FleetJournal<S>,
    disruption: &Disruption,
) -> Result<DurableRun, FleetInterrupted> {
    assert!(config.max_attempts > 0, "fleet needs at least one attempt");
    assert!(config.workers > 0, "fleet needs at least one worker");
    let _fleet_span = span!(
        Level::Info,
        "fleet_durable",
        boards = spec.boards,
        workers = config.workers as u64,
    );

    // ---- Recovery: replay the journal's intact prefix. ----
    let replay = journal.replay();
    let mut stats = DurableStats {
        journal_damage: replay.damage.clone(),
        ..DurableStats::default()
    };
    if let Some(damage) = &replay.damage {
        event!(
            Level::Warn,
            "fleet_journal_damaged",
            detail = damage.to_string()
        );
        counter!("fleet_journal_damage_total", 1);
    }
    let begun = replay.entries.iter().find_map(|e| match e {
        JournalEntry::CampaignBegun {
            boards,
            seed,
            max_attempts,
            requeue_backoff_mv,
        } => Some((*boards, *seed, *max_attempts, *requeue_backoff_mv)),
        _ => None,
    });
    match begun {
        Some(identity) => assert_eq!(
            identity,
            (
                spec.boards,
                spec.seed,
                config.max_attempts,
                config.requeue_backoff_mv
            ),
            "journal belongs to a different campaign"
        ),
        None => journal.append(&JournalEntry::CampaignBegun {
            boards: spec.boards,
            seed: spec.seed,
            max_attempts: config.max_attempts,
            requeue_backoff_mv: config.requeue_backoff_mv,
        }),
    }

    // Completions recovered from the journal, deduplicated by
    // `(board, attempt)` — duplicates are byte-identical by purity, so
    // keeping the first is keeping them all.
    let mut completed: BTreeMap<(u32, u32), BoardOutcome> = BTreeMap::new();
    for entry in &replay.entries {
        if let JournalEntry::JobCompleted { outcome } = entry {
            completed
                .entry((outcome.board, outcome.attempt))
                .or_insert_with(|| outcome.clone());
        }
    }
    stats.resumed_completions = completed.len() as u64;
    if stats.resumed_completions > 0 {
        event!(
            Level::Info,
            "fleet_recovered",
            resumed = stats.resumed_completions,
        );
        counter!("fleet_recoveries_total", 1);
    }

    // The checkpoint is an accelerator and an export artifact; the
    // journal is the recovery authority. Verify the checkpoint's seal
    // here so corruption is *detected and typed* — and then fall back to
    // replay either way, which is always last-good.
    if let Err(err) = journal.load_store_checkpoint() {
        stats.checkpoint_rejected = true;
        event!(
            Level::Warn,
            "fleet_checkpoint_rejected",
            detail = err.to_string(),
        );
        counter!("fleet_checkpoint_rejected_total", 1);
    }

    // Expected-job closure: every board at attempt 0, plus the
    // eviction-predicate follow-up of every journaled completion.
    // Outstanding work is the closure minus what already completed.
    let mut pending: Vec<FleetJob> = Vec::new();
    for board in spec.all_boards() {
        if !completed.contains_key(&(board.id, 0)) {
            pending.push(FleetJob {
                board,
                attempt: 0,
                floor_override_mv: None,
            });
        }
    }
    for outcome in completed.values() {
        if let Some(floor) = eviction_floor(outcome, config) {
            if !completed.contains_key(&(outcome.board, outcome.attempt + 1)) {
                pending.push(FleetJob {
                    board: spec.board(outcome.board),
                    attempt: outcome.attempt + 1,
                    floor_override_mv: Some(floor),
                });
            }
        }
    }

    // Live store for periodic checkpoints, seeded from recovered
    // completions. Insertion order varies across incarnations; the
    // semilattice makes the merged value order-independent.
    let mut live_store = SafePointStore::new();
    for outcome in completed.values() {
        live_store.insert(outcome.record.clone());
    }

    // ---- Execution: pool with a death schedule. ----
    let queue = FleetQueue::new(config.workers, config.queue_capacity, config.batch_size);
    let (tx, rx) = mpsc::channel::<WorkerMsg>();
    let deaths: BTreeMap<usize, u64> = disruption.worker_deaths.iter().copied().collect();
    let mut duplicates_left = disruption.duplicate_deliveries;
    let mut interrupted: Option<FleetInterrupted> = None;

    let per_worker_jobs: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let tx = tx.clone();
                let queue = &queue;
                let death_at = deaths.get(&w).copied();
                scope.spawn(move || {
                    let mut jobs = 0u64;
                    while let Some(next) = queue.next(w) {
                        if death_at == Some(jobs) {
                            // Die holding the job: surrender the stolen
                            // backlog and report the in-flight item so
                            // the coordinator re-queues it exactly once.
                            queue.retire(w);
                            let _ = tx.send(WorkerMsg::Died {
                                worker: w,
                                in_flight: Some(next),
                            });
                            return jobs;
                        }
                        let outcome = job::execute(&next, campaign, spec.population);
                        jobs += 1;
                        if tx.send(WorkerMsg::Done(outcome)).is_err() {
                            break;
                        }
                    }
                    jobs
                })
            })
            .collect();
        drop(tx);

        let mut outstanding: u64 = 0;
        for fleet_job in &pending {
            journal.append(&JournalEntry::JobClaimed {
                board: fleet_job.board.id,
                attempt: fleet_job.attempt,
                floor_override_mv: fleet_job.floor_override_mv,
            });
            queue.push(fleet_job.clone());
            outstanding += 1;
        }

        let mut processed: u64 = 0;
        let mut alive = config.workers as u64;
        while outstanding > 0 {
            if disruption.kill_coordinator_after == Some(processed) {
                interrupted = Some(FleetInterrupted::CoordinatorKilled {
                    completions: processed,
                });
                break;
            }
            let msg = match rx.recv() {
                Ok(msg) => msg,
                Err(_) => {
                    // Every worker exited without a death report — only
                    // possible if the pool drained past a closed queue,
                    // which cannot happen with work outstanding; treat
                    // it as pool loss rather than hang.
                    interrupted = Some(FleetInterrupted::PoolLost {
                        completions: processed,
                        workers_lost: stats.workers_lost,
                    });
                    break;
                }
            };
            match msg {
                WorkerMsg::Done(outcome) => {
                    // Journal before acting: claim→complete→merge is the
                    // write-ahead order recovery replays.
                    journal.append(&JournalEntry::JobCompleted {
                        outcome: outcome.clone(),
                    });
                    live_store.insert(outcome.record.clone());
                    journal.append(&JournalEntry::MergeCommitted {
                        epoch: 0,
                        board: outcome.board,
                        attempt: outcome.attempt,
                    });
                    processed += 1;
                    stats.executed_jobs += 1;
                    if duplicates_left > 0 {
                        // At-least-once delivery: process the completion
                        // again. Purity makes the duplicate
                        // byte-identical; the merge absorbs it.
                        duplicates_left -= 1;
                        stats.duplicates_dropped += 1;
                        journal.append(&JournalEntry::JobCompleted {
                            outcome: outcome.clone(),
                        });
                        live_store.insert(outcome.record.clone());
                        journal.append(&JournalEntry::MergeCommitted {
                            epoch: 0,
                            board: outcome.board,
                            attempt: outcome.attempt,
                        });
                    }
                    if processed.is_multiple_of(CHECKPOINT_EVERY) {
                        journal.commit_store_checkpoint(&live_store);
                    }
                    if let Some(floor) = eviction_floor(&outcome, config) {
                        if !completed.contains_key(&(outcome.board, outcome.attempt + 1)) {
                            event!(
                                Level::Warn,
                                "fleet_board_evicted",
                                board = outcome.board,
                                attempt = outcome.attempt,
                                raised_floor_mv = floor,
                            );
                            let follow_up = FleetJob {
                                board: spec.board(outcome.board),
                                attempt: outcome.attempt + 1,
                                floor_override_mv: Some(floor),
                            };
                            journal.append(&JournalEntry::JobClaimed {
                                board: follow_up.board.id,
                                attempt: follow_up.attempt,
                                floor_override_mv: follow_up.floor_override_mv,
                            });
                            queue.push(follow_up);
                            outstanding += 1;
                        }
                    }
                    completed
                        .entry((outcome.board, outcome.attempt))
                        .or_insert(outcome);
                    outstanding -= 1;
                }
                WorkerMsg::Died { worker, in_flight } => {
                    alive -= 1;
                    stats.workers_lost += 1;
                    event!(
                        Level::Warn,
                        "fleet_worker_died",
                        worker = worker as u64,
                        holding = in_flight.is_some(),
                    );
                    counter!("fleet_worker_deaths_total", 1);
                    if let Some(fleet_job) = in_flight {
                        journal.append(&JournalEntry::JobClaimed {
                            board: fleet_job.board.id,
                            attempt: fleet_job.attempt,
                            floor_override_mv: fleet_job.floor_override_mv,
                        });
                        queue.push(fleet_job);
                    }
                    if alive == 0 {
                        interrupted = Some(FleetInterrupted::PoolLost {
                            completions: processed,
                            workers_lost: stats.workers_lost,
                        });
                        break;
                    }
                }
            }
        }
        queue.close();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    if let Some(interrupted) = interrupted {
        // A crash commits nothing further: no CampaignCompleted, no
        // final checkpoint. The journal's intact prefix is the restart
        // point.
        return Err(interrupted);
    }

    journal.append(&JournalEntry::CampaignCompleted);
    journal.commit_store_checkpoint(&live_store);

    // The aggregation multiset is the deduplicated completion map —
    // exactly one outcome per `(board, attempt)`, the same multiset an
    // uninterrupted `run_fleet` produces — already in sorted order.
    let outcomes: Vec<BoardOutcome> = completed.into_values().collect();
    let requeues = outcomes.iter().filter(|o| o.attempt > 0).count() as u64;
    let report = aggregate(
        spec,
        config,
        outcomes,
        per_worker_jobs,
        queue.stats(),
        requeues,
    );
    Ok(DurableRun { report, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetSpec {
        FleetSpec::new(10, 2018)
    }

    #[test]
    fn parallel_runs_match_the_serial_run_byte_for_byte() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let serial = run_fleet(&spec, &campaign, &FleetConfig::with_workers(1));
        let pooled = run_fleet(&spec, &campaign, &FleetConfig::with_workers(4));
        assert_eq!(
            serial.characterization_json(),
            pooled.characterization_json()
        );
        assert_eq!(
            serial.observatory_json(),
            pooled.observatory_json(),
            "the observatory report is pool-independent too"
        );
        assert_eq!(serial.execution.jobs, pooled.execution.jobs);
        assert_ne!(serial.execution.workers, pooled.execution.workers);
    }

    #[test]
    fn the_observatory_reconstructs_every_eviction_as_an_incident() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick(); // injects sub-Vmin SDC
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(2));
        assert!(report.execution.requeues > 0, "the fault plan must evict");
        let evictions: Vec<_> = report
            .observatory
            .incidents_of(observatory::IncidentKind::BoardEviction)
            .collect();
        assert_eq!(
            evictions.len() as u64,
            report.execution.requeues,
            "one BoardEviction incident per requeue"
        );
        // Each eviction incident points at a job whose breaker tripped on
        // its first attempt.
        for incident in &evictions {
            assert_eq!(incident.trigger_epoch, 0, "evictions happen at attempt 0");
            let job = report
                .characterization
                .jobs
                .iter()
                .find(|j| j.board == incident.board && j.attempt == 0)
                .expect("incident board exists");
            assert!(job.tripped);
        }
        // The quick campaign characterizes every board, so the per-board
        // savings-floor SLO stays quiet.
        assert!(
            report.observatory.alerts.is_empty(),
            "no savings-floor alerts on a healthy fleet: {:?}",
            report.observatory.alerts
        );
    }

    #[test]
    fn tripped_boards_are_requeued_once_with_a_raised_floor() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick(); // injects sub-Vmin SDC
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(2));
        let c = &report.characterization;
        assert!(report.execution.requeues > 0, "the fault plan must evict");
        assert_eq!(
            report.execution.jobs,
            u64::from(spec.boards) + report.execution.requeues
        );
        // Every evicted board's surviving record is its re-characterization.
        for job in c.jobs.iter().filter(|j| j.tripped && j.attempt == 0) {
            assert_eq!(c.store.get(job.board).unwrap().attempt, 1);
        }
        // And re-walks stay above the crash zone: no third attempts exist.
        assert!(c.jobs.iter().all(|j| j.attempt <= 1));
    }

    #[test]
    fn an_undisrupted_durable_run_matches_run_fleet_byte_for_byte() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(2);
        let baseline = run_fleet(&spec, &campaign, &config);
        let mut journal = FleetJournal::new(crate::journal::MemStore::new());
        let durable =
            run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
                .expect("no faults injected");
        assert_eq!(
            baseline.characterization_json(),
            durable.report.characterization_json()
        );
        assert_eq!(
            baseline.observatory_json(),
            durable.report.observatory_json()
        );
        assert_eq!(durable.stats.resumed_completions, 0);
        assert_eq!(durable.stats.duplicates_dropped, 0);
        assert!(!durable.stats.checkpoint_rejected);
        // The journal closed out cleanly.
        let replay = journal.replay();
        assert_eq!(replay.damage, None);
        assert!(matches!(
            replay.entries.last(),
            Some(JournalEntry::CampaignCompleted)
        ));
    }

    #[test]
    fn a_killed_coordinator_resumes_from_its_journal() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(2);
        let baseline = run_fleet(&spec, &campaign, &config);
        let mut journal = FleetJournal::new(crate::journal::MemStore::new());
        let kill = Disruption {
            kill_coordinator_after: Some(3),
            ..Disruption::none()
        };
        let err = run_fleet_durable(&spec, &campaign, &config, &mut journal, &kill)
            .expect_err("the kill fires with 10 boards outstanding");
        assert_eq!(err, FleetInterrupted::CoordinatorKilled { completions: 3 });
        // Restart on the same journal: only unfinished jobs re-run, and
        // the merged output is byte-identical to the uninterrupted run.
        let resumed =
            run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
                .expect("clean restart completes");
        assert_eq!(resumed.stats.resumed_completions, 3);
        assert!(
            resumed.stats.executed_jobs < baseline.execution.jobs,
            "recovery re-runs only unfinished jobs"
        );
        assert_eq!(
            baseline.characterization_json(),
            resumed.report.characterization_json()
        );
    }

    #[test]
    fn dead_workers_shrink_the_pool_and_lose_no_work() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(3);
        let baseline = run_fleet(&spec, &campaign, &config);
        let mut journal = FleetJournal::new(crate::journal::MemStore::new());
        let deaths = Disruption {
            worker_deaths: vec![(0, 1), (2, 0)],
            ..Disruption::none()
        };
        let durable = run_fleet_durable(&spec, &campaign, &config, &mut journal, &deaths)
            .expect("one worker survives");
        assert_eq!(durable.stats.workers_lost, 2);
        assert_eq!(
            baseline.characterization_json(),
            durable.report.characterization_json()
        );
    }

    #[test]
    fn losing_every_worker_interrupts_then_recovers() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(2);
        let baseline = run_fleet(&spec, &campaign, &config);
        let mut journal = FleetJournal::new(crate::journal::MemStore::new());
        let wipeout = Disruption {
            worker_deaths: vec![(0, 1), (1, 1)],
            ..Disruption::none()
        };
        let err = run_fleet_durable(&spec, &campaign, &config, &mut journal, &wipeout)
            .expect_err("both workers die with work outstanding");
        assert!(matches!(
            err,
            FleetInterrupted::PoolLost {
                workers_lost: 2,
                ..
            }
        ));
        let resumed =
            run_fleet_durable(&spec, &campaign, &config, &mut journal, &Disruption::none())
                .expect("a fresh pool finishes the campaign");
        assert_eq!(
            baseline.characterization_json(),
            resumed.report.characterization_json()
        );
    }

    #[test]
    fn duplicate_deliveries_are_absorbed_by_idempotent_merges() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(2);
        let baseline = run_fleet(&spec, &campaign, &config);
        let mut journal = FleetJournal::new(crate::journal::MemStore::new());
        let dupes = Disruption {
            duplicate_deliveries: 5,
            ..Disruption::none()
        };
        let durable = run_fleet_durable(&spec, &campaign, &config, &mut journal, &dupes)
            .expect("duplicates never block completion");
        assert_eq!(durable.stats.duplicates_dropped, 5);
        assert_eq!(
            baseline.characterization_json(),
            durable.report.characterization_json()
        );
    }

    #[test]
    fn a_single_attempt_fleet_never_requeues_and_projects_savings() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig {
            max_attempts: 1,
            ..FleetConfig::with_workers(2)
        };
        let report = run_fleet(&spec, &campaign, &config);
        assert_eq!(report.execution.requeues, 0);
        let stats = &report.characterization.stats;
        assert_eq!(stats.characterized, 10);
        assert!(stats.total_savings_watts > 0.0);
        assert!(stats.min_margin_mv.unwrap() > 0);
        assert!(report.execution.speedup > 1.0);
        assert!(!report.characterization.campaign_counters.is_empty());
    }
}
