//! The fleet coordinator: shard, execute, evict, merge.
//!
//! [`run_fleet`] seeds a bounded work-stealing queue with one job per
//! board, runs them on a pool of worker threads, listens for outcomes,
//! and re-queues any board the safety net evicted (breaker tripped) with
//! a raised search floor. When the last job lands it sorts every outcome
//! into `(board, attempt)` order and only then aggregates — the merged
//! [`SafePointStore`], population stats, summed campaign counters and
//! the modeled schedule are all computed from sorted data, never from
//! arrival order. Together with pure board specs and pure job execution
//! this yields the headline invariant: an N-worker run's
//! characterization output is byte-identical to the serial run's.

use crate::job::{self, BoardOutcome, FleetCampaign, FleetJob};
use crate::population::FleetSpec;
use crate::queue::FleetQueue;
use crate::report::{FleetCharacterization, FleetExecution, FleetReport, JobSummary};
use crate::schedule::ScheduleModel;
use guardband_core::safepoint::SafePointStore;
use observatory::{BoardStream, Observatory, SloSpec, StreamBuilder};
use power_model::units::Millivolts;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;
use telemetry::{counter, event, gauge, observe, span, FieldValue, Level};

/// Per-board power-savings floor for the fleet SLO, watts. A
/// characterized board on the DSN'18 testbed reclaims several watts;
/// a board whose record projects less than this either failed to
/// characterize or is pinned at nominal, and the observatory should page.
pub const FLEET_SAVINGS_FLOOR_WATTS: f64 = 0.5;

/// Name of the per-board savings-floor SLO declared by [`run_fleet`].
pub const FLEET_SAVINGS_SLO: &str = "board-savings-floor";

/// Builds the fleet observatory from `(board, attempt)`-sorted outcomes.
///
/// Every input is already arrival-order-free: per-job traces and dumps
/// ride on the sorted outcomes, and the coordinator's eviction events
/// are *re-synthesized* here from the same predicate and floor
/// arithmetic the live path uses, rather than captured from the racy
/// coordinator thread. The result is byte-identical across pool sizes.
fn assemble_observatory(
    outcomes: &[BoardOutcome],
    store: &SafePointStore,
    config: &FleetConfig,
) -> Observatory {
    let mut obs = Observatory::new();
    obs.add_slo(SloSpec::savings_floor(
        FLEET_SAVINGS_SLO,
        FLEET_SAVINGS_FLOOR_WATTS,
    ));
    for outcome in outcomes {
        let epoch = u64::from(outcome.attempt);
        obs.ingest_stream(BoardStream::from_events(
            epoch,
            outcome.board,
            outcome.trace.clone(),
        ));
        obs.ingest_dumps(epoch, outcome.board, outcome.dumps.clone());
        // Mirror of the live eviction predicate in the coordinator loop.
        if outcome.tripped && outcome.attempt + 1 < config.max_attempts {
            if let Some(failure_mv) = outcome.highest_failure_mv {
                let floor = (failure_mv + config.requeue_backoff_mv)
                    .min(Millivolts::XGENE2_NOMINAL.as_u32());
                let mut coordinator = StreamBuilder::coordinator(epoch, outcome.board);
                coordinator.push(
                    Level::Warn,
                    "fleet_board_evicted",
                    vec![
                        (
                            "board".to_owned(),
                            FieldValue::U64(u64::from(outcome.board)),
                        ),
                        (
                            "attempt".to_owned(),
                            FieldValue::U64(u64::from(outcome.attempt)),
                        ),
                        (
                            "raised_floor_mv".to_owned(),
                            FieldValue::U64(u64::from(floor)),
                        ),
                    ],
                );
                obs.ingest_stream(coordinator.finish());
            }
        }
    }
    // One savings observation per surviving record, in board order.
    for record in store.records() {
        obs.slo_observe(
            FLEET_SAVINGS_SLO,
            u64::from(record.board),
            Some(record.board),
            record.savings_watts,
        );
    }
    obs
}

/// Pool and eviction policy of a fleet run. Changing any knob here may
/// change *how fast* the fleet characterizes, never *what* it measures —
/// except `max_attempts` and `requeue_backoff_mv`, which are part of the
/// campaign semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads.
    pub workers: usize,
    /// Injector bound (backpressure on the coordinator).
    pub queue_capacity: usize,
    /// Jobs a worker refills its local deque with per injector visit.
    pub batch_size: usize,
    /// Characterization attempts per board (1 = never re-queue).
    pub max_attempts: u32,
    /// How far above the highest observed failure a re-queued board's
    /// search floor is raised, mV.
    pub requeue_backoff_mv: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            queue_capacity: 64,
            batch_size: 4,
            max_attempts: 2,
            requeue_backoff_mv: 15,
        }
    }
}

impl FleetConfig {
    /// The default policy with an explicit pool size.
    pub fn with_workers(workers: usize) -> Self {
        FleetConfig {
            workers,
            ..FleetConfig::default()
        }
    }
}

/// Characterizes the whole fleet. See the module docs for the
/// determinism argument.
///
/// # Panics
///
/// Panics if `config.workers` or `config.max_attempts` is zero, or if a
/// worker thread panics.
pub fn run_fleet(spec: &FleetSpec, campaign: &FleetCampaign, config: &FleetConfig) -> FleetReport {
    assert!(config.max_attempts > 0, "fleet needs at least one attempt");
    let _fleet_span = span!(
        Level::Info,
        "fleet",
        boards = spec.boards,
        workers = config.workers as u64,
    );
    let queue = FleetQueue::new(config.workers, config.queue_capacity, config.batch_size);
    let (tx, rx) = mpsc::channel::<BoardOutcome>();
    let mut outcomes: Vec<BoardOutcome> = Vec::new();
    let mut requeues: u64 = 0;

    let per_worker_jobs: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    let mut jobs = 0u64;
                    while let Some(next) = queue.next(w) {
                        let outcome = job::execute(&next, campaign, spec.population);
                        jobs += 1;
                        tx.send(outcome).expect("coordinator outlives workers");
                    }
                    jobs
                })
            })
            .collect();
        drop(tx);

        let mut outstanding: u64 = 0;
        for board in spec.all_boards() {
            queue.push(FleetJob {
                board,
                attempt: 0,
                floor_override_mv: None,
            });
            outstanding += 1;
        }
        while outstanding > 0 {
            let outcome = rx.recv().expect("workers outlive the backlog");
            outstanding -= 1;
            // Eviction: a tripped breaker means the board misbehaved below
            // its real limits. Send it back to nominal and re-characterize
            // with the floor raised clear of the observed crash zone.
            if outcome.tripped && outcome.attempt + 1 < config.max_attempts {
                if let Some(failure_mv) = outcome.highest_failure_mv {
                    let floor = (failure_mv + config.requeue_backoff_mv)
                        .min(Millivolts::XGENE2_NOMINAL.as_u32());
                    event!(
                        Level::Warn,
                        "fleet_board_evicted",
                        board = outcome.board,
                        attempt = outcome.attempt,
                        raised_floor_mv = floor,
                    );
                    queue.push(FleetJob {
                        board: spec.board(outcome.board),
                        attempt: outcome.attempt + 1,
                        floor_override_mv: Some(floor),
                    });
                    outstanding += 1;
                    requeues += 1;
                }
            }
            outcomes.push(outcome);
        }
        queue.close();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Everything below folds over `(board, attempt)`-sorted data, so no
    // trace of arrival order survives into the report.
    outcomes.sort_by_key(|o| (o.board, o.attempt));
    let mut store = SafePointStore::new();
    for outcome in &outcomes {
        store.insert(outcome.record.clone());
    }
    let stats = store.stats();
    let costs: Vec<f64> = outcomes.iter().map(|o| o.sim_cost_seconds).collect();
    let plan = ScheduleModel::plan(&costs, config.workers);

    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for outcome in &outcomes {
        for (name, value) in &outcome.metrics.counters {
            *summed.entry(name.clone()).or_insert(0) += value;
        }
    }
    let campaign_counters: Vec<(String, u64)> = summed.into_iter().collect();

    counter!("fleet_jobs_total", outcomes.len() as u64);
    counter!("fleet_requeues_total", requeues);
    counter!("fleet_boards_characterized", stats.characterized as u64);
    gauge!("fleet_total_savings_watts", stats.total_savings_watts);
    let _ = telemetry::with_registry(|reg| {
        reg.register_histogram(
            "fleet_margin_mv",
            &[10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 120.0],
        );
    });
    for record in store.records() {
        if let Some(margin) = record.margin_mv() {
            observe!("fleet_margin_mv", margin as f64);
        }
    }
    // Per-board labeled series alongside the fleet-wide aggregates, so a
    // Prometheus scrape can tell *which* board is dragging the totals.
    let _ = telemetry::with_registry(|reg| {
        for record in store.records() {
            let board = format!("b{}", record.board);
            let labels = [("board", board.as_str())];
            reg.gauge_set_labeled("fleet_board_savings_watts", &labels, record.savings_watts);
            if let Some(margin) = record.margin_mv() {
                reg.gauge_set_labeled("fleet_board_margin_mv", &labels, margin as f64);
            }
        }
    });
    for (worker, jobs) in per_worker_jobs.iter().enumerate() {
        event!(
            Level::Debug,
            "fleet_worker_done",
            worker = worker as u64,
            jobs = *jobs,
        );
    }

    let jobs = outcomes
        .iter()
        .map(|o| JobSummary {
            board: o.board,
            attempt: o.attempt,
            tripped: o.tripped,
            runs: o.runs,
            watchdog_resets: o.watchdog_resets,
            quarantined_setups: o.quarantined_setups,
            breaker_trips: o.breaker_trips,
            backoff_ms: o.backoff_ms,
            sim_cost_seconds: o.sim_cost_seconds,
        })
        .collect();
    let characterization = FleetCharacterization {
        boards: spec.boards,
        seed: spec.seed,
        store,
        stats,
        jobs,
        campaign_counters,
        sim_serial_seconds: plan.serial_seconds,
    };
    let execution = FleetExecution::new(queue.stats(), per_worker_jobs, requeues, &plan);
    let observatory = assemble_observatory(&outcomes, &characterization.store, config).finish();
    FleetReport {
        characterization,
        execution,
        observatory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetSpec {
        FleetSpec::new(10, 2018)
    }

    #[test]
    fn parallel_runs_match_the_serial_run_byte_for_byte() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let serial = run_fleet(&spec, &campaign, &FleetConfig::with_workers(1));
        let pooled = run_fleet(&spec, &campaign, &FleetConfig::with_workers(4));
        assert_eq!(
            serial.characterization_json(),
            pooled.characterization_json()
        );
        assert_eq!(
            serial.observatory_json(),
            pooled.observatory_json(),
            "the observatory report is pool-independent too"
        );
        assert_eq!(serial.execution.jobs, pooled.execution.jobs);
        assert_ne!(serial.execution.workers, pooled.execution.workers);
    }

    #[test]
    fn the_observatory_reconstructs_every_eviction_as_an_incident() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick(); // injects sub-Vmin SDC
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(2));
        assert!(report.execution.requeues > 0, "the fault plan must evict");
        let evictions: Vec<_> = report
            .observatory
            .incidents_of(observatory::IncidentKind::BoardEviction)
            .collect();
        assert_eq!(
            evictions.len() as u64,
            report.execution.requeues,
            "one BoardEviction incident per requeue"
        );
        // Each eviction incident points at a job whose breaker tripped on
        // its first attempt.
        for incident in &evictions {
            assert_eq!(incident.trigger_epoch, 0, "evictions happen at attempt 0");
            let job = report
                .characterization
                .jobs
                .iter()
                .find(|j| j.board == incident.board && j.attempt == 0)
                .expect("incident board exists");
            assert!(job.tripped);
        }
        // The quick campaign characterizes every board, so the per-board
        // savings-floor SLO stays quiet.
        assert!(
            report.observatory.alerts.is_empty(),
            "no savings-floor alerts on a healthy fleet: {:?}",
            report.observatory.alerts
        );
    }

    #[test]
    fn tripped_boards_are_requeued_once_with_a_raised_floor() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick(); // injects sub-Vmin SDC
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(2));
        let c = &report.characterization;
        assert!(report.execution.requeues > 0, "the fault plan must evict");
        assert_eq!(
            report.execution.jobs,
            u64::from(spec.boards) + report.execution.requeues
        );
        // Every evicted board's surviving record is its re-characterization.
        for job in c.jobs.iter().filter(|j| j.tripped && j.attempt == 0) {
            assert_eq!(c.store.get(job.board).unwrap().attempt, 1);
        }
        // And re-walks stay above the crash zone: no third attempts exist.
        assert!(c.jobs.iter().all(|j| j.attempt <= 1));
    }

    #[test]
    fn a_single_attempt_fleet_never_requeues_and_projects_savings() {
        let spec = small_fleet();
        let campaign = FleetCampaign::quick();
        let config = FleetConfig {
            max_attempts: 1,
            ..FleetConfig::with_workers(2)
        };
        let report = run_fleet(&spec, &campaign, &config);
        assert_eq!(report.execution.requeues, 0);
        let stats = &report.characterization.stats;
        assert_eq!(stats.characterized, 10);
        assert!(stats.total_savings_watts > 0.0);
        assert!(stats.min_margin_mv.unwrap() > 0);
        assert!(report.execution.speedup > 1.0);
        assert!(!report.characterization.campaign_counters.is_empty());
    }
}
