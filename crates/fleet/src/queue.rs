//! Bounded work-stealing job queue.
//!
//! The coordinator pushes jobs into a bounded *injector*; each worker
//! drains a private local deque, refilling it in batches from the
//! injector and stealing half a victim's backlog when both run dry.
//! Batched dispatch amortizes lock traffic; stealing keeps the pool
//! busy when board costs are skewed (a TSS board's deep Vmin walk takes
//! several times longer than a TFF board's shallow one).
//!
//! The queue only decides *which worker runs which job when* — job
//! results are pure functions of the job, and the aggregation layer
//! sorts before folding — so none of the (intentionally racy) dispatch
//! order here can leak into campaign output.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Counters describing how work actually flowed through the queue.
/// Execution-side diagnostics only: never part of deterministic output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs pushed by the coordinator.
    pub pushed: u64,
    /// Batch refills from the injector into a worker's local deque.
    pub batches: u64,
    /// Steal operations between workers.
    pub steals: u64,
    /// Jobs surrendered back to the injector by retiring workers.
    pub returned: u64,
}

#[derive(Debug)]
struct Shared<T> {
    injector: VecDeque<T>,
    locals: Vec<VecDeque<T>>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded multi-producer work-stealing queue for `workers` consumers.
#[derive(Debug)]
pub struct FleetQueue<T> {
    shared: Mutex<Shared<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    batch: usize,
}

impl<T> FleetQueue<T> {
    /// Creates a queue for `workers` consumers with a bounded injector.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `capacity` or `batch` is zero.
    pub fn new(workers: usize, capacity: usize, batch: usize) -> Self {
        assert!(workers > 0, "queue needs at least one worker");
        assert!(capacity > 0, "queue needs positive capacity");
        assert!(batch > 0, "dispatch batch must be positive");
        FleetQueue {
            shared: Mutex::new(Shared {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            batch,
        }
    }

    /// Pushes one job, blocking while the injector is at capacity.
    /// Pushing after [`close`](Self::close) is a no-op (the job is
    /// dropped); the orchestrator never does this.
    pub fn push(&self, job: T) {
        let mut shared = self.shared.lock().expect("fleet queue poisoned");
        while shared.injector.len() >= self.capacity && !shared.closed {
            shared = self.not_full.wait(shared).expect("fleet queue poisoned");
        }
        if shared.closed {
            return;
        }
        shared.injector.push_back(job);
        shared.stats.pushed += 1;
        drop(shared);
        self.not_empty.notify_all();
    }

    /// Takes the next job for `worker`, blocking until one is available
    /// or the queue is closed and fully drained (then `None`).
    ///
    /// Preference order: own local deque, then a batch refill from the
    /// injector, then stealing half of the largest backlog.
    pub fn next(&self, worker: usize) -> Option<T> {
        let mut shared = self.shared.lock().expect("fleet queue poisoned");
        loop {
            if let Some(job) = shared.locals[worker].pop_front() {
                return Some(job);
            }
            if !shared.injector.is_empty() {
                let take = self.batch.min(shared.injector.len());
                for _ in 0..take {
                    let job = shared.injector.pop_front().expect("checked non-empty");
                    shared.locals[worker].push_back(job);
                }
                shared.stats.batches += 1;
                self.not_full.notify_all();
                continue;
            }
            if let Some(victim) = self.richest_victim(&shared, worker) {
                let backlog = shared.locals[victim].len();
                let take = (backlog / 2).max(1);
                for _ in 0..take {
                    let job = shared.locals[victim].pop_front().expect("victim non-empty");
                    shared.locals[worker].push_back(job);
                }
                shared.stats.steals += 1;
                continue;
            }
            if shared.closed {
                return None;
            }
            shared = self.not_empty.wait(shared).expect("fleet queue poisoned");
        }
    }

    fn richest_victim(&self, shared: &Shared<T>, worker: usize) -> Option<usize> {
        shared
            .locals
            .iter()
            .enumerate()
            .filter(|(idx, local)| *idx != worker && !local.is_empty())
            .max_by_key(|(_, local)| local.len())
            .map(|(idx, _)| idx)
    }

    /// Retires `worker`: its local deque — including any half-backlog it
    /// stole and had not yet run — goes back to the *front* of the
    /// injector exactly once, preserving dispatch order, and other
    /// workers are woken to pick the returned items up. A retired
    /// worker that calls [`next`](Self::next) again just competes for
    /// work normally (its deque is empty, not poisoned); the
    /// orchestrator's dead-worker path never does.
    ///
    /// Returns how many items the dying worker surrendered.
    pub fn retire(&self, worker: usize) -> usize {
        let mut shared = self.shared.lock().expect("fleet queue poisoned");
        let held = std::mem::take(&mut shared.locals[worker]);
        let returned = held.len();
        // Front-of-injector, original order: the first surrendered item
        // was the next one the worker would have run.
        for job in held.into_iter().rev() {
            shared.injector.push_front(job);
        }
        shared.stats.returned += returned as u64;
        drop(shared);
        if returned > 0 {
            self.not_empty.notify_all();
        }
        returned
    }

    /// Closes the queue: blocked consumers drain the remaining jobs and
    /// then observe `None`; blocked producers unblock.
    pub fn close(&self) {
        let mut shared = self.shared.lock().expect("fleet queue poisoned");
        shared.closed = true;
        drop(shared);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current flow counters.
    pub fn stats(&self) -> QueueStats {
        self.shared.lock().expect("fleet queue poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn drains_in_fifo_order_for_a_single_worker() {
        let queue = FleetQueue::new(1, 8, 3);
        for job in 0..5 {
            queue.push(job);
        }
        queue.close();
        let drained: Vec<i32> = std::iter::from_fn(|| queue.next(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        let stats = queue.stats();
        assert_eq!(stats.pushed, 5);
        assert!(stats.batches >= 2, "batch of 3 needs two refills");
    }

    #[test]
    fn close_unblocks_an_idle_consumer() {
        let queue = Arc::new(FleetQueue::<u32>::new(2, 4, 2));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.next(1))
        };
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn a_bounded_injector_backpressures_the_producer() {
        let queue = Arc::new(FleetQueue::new(1, 2, 1));
        queue.push(1);
        queue.push(2);
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.push(3)) // blocks: injector full
        };
        assert_eq!(queue.next(0), Some(1));
        producer.join().unwrap();
        queue.close();
        assert_eq!(queue.next(0), Some(2));
        assert_eq!(queue.next(0), Some(3));
        assert_eq!(queue.next(0), None);
    }

    #[test]
    fn an_empty_handed_worker_steals_from_the_richest_backlog() {
        let queue = FleetQueue::new(2, 16, 8);
        for job in 0..8 {
            queue.push(job);
        }
        queue.close();
        // Worker 0 refills its local deque with the whole batch…
        assert_eq!(queue.next(0), Some(0));
        // …so worker 1 finds the injector empty and must steal.
        assert!(queue.next(1).is_some());
        assert_eq!(queue.stats().steals, 1);
        let drained = std::iter::from_fn(|| queue.next(1)).count()
            + std::iter::from_fn(|| queue.next(0)).count();
        assert_eq!(drained, 6);
    }

    #[test]
    fn a_retiring_worker_returns_its_stolen_backlog_exactly_once() {
        let queue = FleetQueue::new(2, 16, 8);
        for job in 0..8 {
            queue.push(job);
        }
        queue.close();
        // Worker 0 refills with the whole batch, worker 1 steals half of
        // it — then dies holding the stolen items.
        assert_eq!(queue.next(0), Some(0));
        assert_eq!(queue.next(1), Some(1));
        assert_eq!(queue.stats().steals, 1);
        let returned = queue.retire(1);
        assert!(returned > 0, "the dead worker held stolen items");
        assert_eq!(queue.stats().returned, returned as u64);
        // Retiring again surrenders nothing: the return happened once.
        assert_eq!(queue.retire(1), 0);
        assert_eq!(queue.stats().returned, returned as u64);
        // The survivor drains every remaining job — none lost, none
        // duplicated, and the returned items come back in order.
        let drained: Vec<i32> = std::iter::from_fn(|| queue.next(0)).collect();
        let mut expected: Vec<i32> = (2..8).collect();
        expected.sort_unstable();
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn retiring_an_idle_worker_is_a_no_op() {
        let queue = FleetQueue::<u32>::new(2, 4, 2);
        assert_eq!(queue.retire(0), 0);
        assert_eq!(queue.stats().returned, 0);
    }

    #[test]
    fn all_jobs_arrive_exactly_once_under_contention() {
        let workers = 4;
        let queue = Arc::new(FleetQueue::new(workers, 8, 2));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(job) = queue.next(w) {
                        seen.push(job);
                    }
                    seen
                })
            })
            .collect();
        for job in 0..200u32 {
            queue.push(job);
        }
        queue.close();
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
