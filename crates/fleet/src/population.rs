//! Seeded board populations.
//!
//! The paper characterizes three hand-picked parts; a datacenter holds
//! thousands, each with its own silicon. A [`FleetSpec`] turns a single
//! seed into that population: every board's process corner is drawn from
//! a [`CornerMix`], its chip personality from
//! [`ChipProfile::sampled`], and its DRAM weak-cell population from the
//! board's own boot seed. Board `k`'s spec is a pure function of
//! `(fleet seed, k)` — independent of fleet size, iteration order or any
//! other board — which is the first pillar of the orchestrator's
//! determinism guarantee.

use dram_sim::retention::PopulationSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

/// Corner shares of a procurement batch (relative weights over
/// [`SigmaBin::ALL`]; they need not sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornerMix {
    /// Relative weight of TTT, TFF and TSS parts, in that order.
    pub weights: [f64; 3],
}

impl CornerMix {
    /// Typical procurement: mostly typical parts with fast and slow
    /// tails.
    pub fn datacenter() -> Self {
        CornerMix {
            weights: [0.70, 0.15, 0.15],
        }
    }

    /// The paper's bench: each corner equally likely.
    pub fn uniform() -> Self {
        CornerMix {
            weights: [1.0, 1.0, 1.0],
        }
    }

    /// Draws one corner.
    ///
    /// # Panics
    ///
    /// Panics if no weight is positive.
    pub fn sample(&self, rng: &mut StdRng) -> SigmaBin {
        let total: f64 = self.weights.iter().sum();
        assert!(total > 0.0, "corner mix needs positive total weight");
        let mut draw = rng.gen::<f64>() * total;
        for (bin, weight) in SigmaBin::ALL.iter().zip(self.weights) {
            if draw < weight {
                return *bin;
            }
            draw -= weight;
        }
        SigmaBin::Tss
    }
}

/// Deterministic specification of a simulated fleet.
///
/// # Examples
///
/// ```
/// use fleet::population::FleetSpec;
///
/// let spec = FleetSpec::new(256, 2018);
/// let b7 = spec.board(7);
/// // A board's personality is a pure function of (seed, id):
/// assert_eq!(b7, FleetSpec::new(1_000_000, 2018).board(7));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of boards in the fleet.
    pub boards: u32,
    /// Master seed all per-board streams derive from.
    pub seed: u64,
    /// Process-corner composition.
    pub mix: CornerMix,
    /// DRAM population envelope every board is generated for.
    pub population: PopulationSpec,
}

impl FleetSpec {
    /// A fleet with the default datacenter corner mix and the paper's
    /// DRAM characterization envelope.
    pub fn new(boards: u32, seed: u64) -> Self {
        FleetSpec {
            boards,
            seed,
            mix: CornerMix::datacenter(),
            population: PopulationSpec::dsn18(),
        }
    }

    /// The spec of board `id` — a pure function of `(self.seed, id)`.
    pub fn board(&self, id: u32) -> BoardSpec {
        // SplitMix-style stream separation: each board gets its own RNG
        // stream regardless of how many boards exist.
        let stream = self.seed ^ u64::from(id + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(stream);
        let bin = self.mix.sample(&mut rng);
        let chip = ChipProfile::sampled(bin, &mut rng);
        let boot_seed = rng.gen();
        BoardSpec {
            id,
            chip,
            boot_seed,
        }
    }

    /// All board specs in id order.
    pub fn all_boards(&self) -> impl Iterator<Item = BoardSpec> + '_ {
        (0..self.boards).map(|id| self.board(id))
    }
}

/// One board of the fleet: an id, a sampled chip personality and the
/// seed its DRAM population and fault RNG boot from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardSpec {
    /// Fleet-wide board id.
    pub id: u32,
    /// The sampled silicon in the socket.
    pub chip: ChipProfile,
    /// Boot seed (DRAM weak cells, fault RNG).
    pub boot_seed: u64,
}

impl BoardSpec {
    /// The chip's process corner.
    pub fn bin(&self) -> SigmaBin {
        self.chip.bin()
    }

    /// Boots the simulated board at its nominal power-on state.
    pub fn boot(&self, population: PopulationSpec) -> XGene2Server {
        XGene2Server::with_chip(self.chip.clone(), self.boot_seed, population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_specs_are_pure_functions_of_seed_and_id() {
        let spec = FleetSpec::new(16, 99);
        assert_eq!(spec.board(3), spec.board(3));
        // Independent of fleet size:
        assert_eq!(spec.board(3), FleetSpec::new(4, 99).board(3));
        // …but sensitive to seed and id.
        assert_ne!(spec.board(3), spec.board(4));
        assert_ne!(spec.board(3), FleetSpec::new(16, 100).board(3));
    }

    #[test]
    fn corner_mix_tracks_the_weights() {
        let spec = FleetSpec::new(512, 7);
        let mut counts = [0usize; 3];
        for board in spec.all_boards() {
            let idx = SigmaBin::ALL
                .iter()
                .position(|b| *b == board.bin())
                .unwrap();
            counts[idx] += 1;
        }
        let ttt = counts[0] as f64 / 512.0;
        assert!((ttt - 0.70).abs() < 0.08, "TTT share {ttt}");
        assert!(counts[1] > 0 && counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn boards_get_distinct_chips_and_dram() {
        let spec = FleetSpec::new(4, 42);
        let a = spec.board(0);
        let b = spec.board(1);
        assert_ne!(a.chip, b.chip);
        let sa = a.boot(spec.population);
        let sb = b.boot(spec.population);
        assert_ne!(
            sa.dram().population().cells(),
            sb.dram().population().cells(),
            "each board must carry its own weak-cell population"
        );
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_mix_is_rejected() {
        let mix = CornerMix { weights: [0.0; 3] };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = mix.sample(&mut rng);
    }
}
