//! Fleet-scale campaign orchestration.
//!
//! The paper characterizes three X-Gene 2 boards by hand; this crate
//! scales the same campaigns to a simulated datacenter. It is built
//! around one invariant: **an N-worker fleet run produces byte-identical
//! characterization output to the serial run**, resting on three pillars —
//!
//! 1. [`population`] — every board's silicon is a pure function of
//!    `(fleet seed, board id)`: corner drawn from a [`CornerMix`],
//!    chip personality sampled around it, DRAM weak cells from the
//!    board's own boot seed;
//! 2. [`job`] — characterizing a board is a pure function of its spec
//!    and the campaign: the full `char-fw` resilient Vmin walk, the
//!    per-bank DRAM retention floor, the derived safe point and a
//!    simulated cost in board-seconds;
//! 3. [`orchestrator`] — dispatch through the bounded work-stealing
//!    [`queue`] is intentionally racy, but aggregation sorts every
//!    outcome by `(board, attempt)` before folding, and the safe-point
//!    database ([`SafePointStore`]) is an order-independent semilattice.
//!
//! The same purity argument powers crash consistency: [`journal`] is a
//! CRC-framed write-ahead journal of claims, completions and merges,
//! and [`orchestrator::run_fleet_durable`] replays it on restart to
//! re-run *only* unfinished jobs — with the recovered campaign's merged
//! output byte-identical to an uninterrupted run (the chaos crate's
//! whole test surface).
//!
//! Boards whose safety net trips (sub-Vmin silent corruption caught by
//! the DMR sentinels) are evicted back to nominal and re-queued once
//! with a raised search floor. Fleet speedup is *modeled* by the
//! deterministic [`schedule`] makespan over per-job simulated costs —
//! see that module for why wall clock is not the metric.
//!
//! Safe points age with the silicon under them: [`maintenance`] plans
//! budget-capped re-characterization rounds from per-board drift
//! signals, and [`job::execute_in_env`] re-runs a board's campaign
//! against aged silicon with a warm-started Vmin walk seeded by the
//! previous epoch's safe point.
//!
//! # Examples
//!
//! ```
//! use fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};
//!
//! let spec = FleetSpec::new(4, 2018);
//! let report = run_fleet(&spec, &FleetCampaign::quick(), &FleetConfig::with_workers(2));
//! assert_eq!(report.characterization.stats.boards, 4);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod job;
pub mod journal;
pub mod maintenance;
pub mod orchestrator;
pub mod population;
pub mod queue;
pub mod report;
pub mod schedule;

pub use guardband_core::safepoint::{BoardSafePoint, FleetStats, SafePointStore};
pub use job::{
    execute, execute_in_env, BoardOutcome, FleetCampaign, FleetJob, JobEnvironment, WarmStartPriors,
};
pub use journal::{
    DirStore, FleetJournal, JournalDamage, JournalEntry, JournalStore, MemStore, Replay,
};
pub use maintenance::{
    BoardHealth, MaintenanceDecision, MaintenancePlan, MaintenancePolicy, MaintenanceTrigger,
    MaintenanceWindow,
};
pub use orchestrator::{
    eviction_floor, run_fleet, run_fleet_durable, Disruption, DurableRun, DurableStats,
    FleetConfig, FleetInterrupted, CHECKPOINT_EVERY,
};
pub use population::{BoardSpec, CornerMix, FleetSpec};
pub use queue::{FleetQueue, QueueStats};
pub use report::{FleetCharacterization, FleetExecution, FleetReport, JobSummary};
pub use schedule::ScheduleModel;
