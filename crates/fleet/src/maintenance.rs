//! The fleet maintenance scheduler: deciding *when* each board gets
//! re-characterized, under a concurrency budget.
//!
//! A safe point is perishable. Silicon Vmin drifts upward
//! ([`xgene_sim::aging`]), the DRAM weak tail grows
//! ([`dram_sim::aging`]), and the 25 mV deployment margin that looked
//! comfortable at epoch 0 erodes month by month. Re-characterizing
//! everything constantly would burn the fleet's capacity; never
//! re-characterizing ends in silent corruption once some board's drift
//! crosses its margin. This module is the middle path: a pure,
//! deterministic [`MaintenancePolicy::plan`] that watches three drift
//! signals per board and schedules the most urgent boards first, up to
//! a per-month budget:
//!
//! * **margin** — the deployed voltage minus the (modeled) aged rail
//!   Vmin; the sentinel-marginal trigger fires when it shrinks to the
//!   threshold, *before* it reaches zero where SDCs start;
//! * **CE pressure** — failing-cell count at the deployed refresh
//!   period, the scrubber's rising correctable-error signature;
//! * **calendar age** — a backstop re-characterization interval for
//!   boards whose signals stay quiet.
//!
//! Everything is a pure function of the input health vector, so the
//! lifetime simulation's multi-year loop stays byte-reproducible.

use serde::{Deserialize, Serialize};
use telemetry::Level;

/// Why a board was scheduled for re-characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceTrigger {
    /// The modeled margin shrank to the policy threshold.
    SentinelMarginal {
        /// Remaining margin, mV.
        margin_mv: i64,
    },
    /// Aged failing cells at the deployed refresh period crossed the
    /// threshold (the scrubber's CE rate is climbing).
    CeRate {
        /// Failing cells at the deployed refresh period.
        failing_cells: u64,
    },
    /// Nothing fired, but the safe point is simply old.
    CalendarAge {
        /// Months since the board's last characterization.
        months: u32,
    },
}

impl MaintenanceTrigger {
    /// Short machine-readable name (telemetry label, report key).
    pub fn kind(&self) -> &'static str {
        match self {
            MaintenanceTrigger::SentinelMarginal { .. } => "margin",
            MaintenanceTrigger::CeRate { .. } => "ce_rate",
            MaintenanceTrigger::CalendarAge { .. } => "age",
        }
    }
}

/// One board's drift signals, as the monthly monitoring pass sees them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardHealth {
    /// Fleet-wide board id.
    pub board: u32,
    /// Months since the board's current safe point was measured.
    pub months_since_characterization: u32,
    /// Deployed PMD voltage minus the aged rail Vmin estimate, mV.
    /// `None` when the board has no deployed point (already parked at
    /// nominal — nothing left to protect).
    pub margin_mv: Option<i64>,
    /// Weak cells that started failing at the deployed refresh period
    /// since the last characterization (tracks the scrubber's rising
    /// CE rate; the validated-at-deployment baseline is excluded).
    pub failing_cells: u64,
}

/// When to re-characterize, and how much capacity that may consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenancePolicy {
    /// Schedule when the modeled margin is at or below this, mV.
    pub margin_threshold_mv: i64,
    /// Schedule when this many aged cells fail at the deployed trefp.
    pub ce_cells_threshold: u64,
    /// Backstop: schedule any safe point older than this, months.
    pub max_epoch_age_months: u32,
    /// Re-characterizations allowed per planning round (the fleet can
    /// only take so many boards out of production at once).
    pub budget_per_round: usize,
}

impl MaintenancePolicy {
    /// The lifetime study's defaults: act at 12 mV of remaining margin
    /// (roughly half the deployment margin, months before projected
    /// exhaustion), 4 failing cells of CE pressure, a 24-month
    /// calendar backstop, 4 boards per round.
    pub fn dsn18() -> Self {
        MaintenancePolicy {
            margin_threshold_mv: 12,
            ce_cells_threshold: 4,
            max_epoch_age_months: 24,
            budget_per_round: 4,
        }
    }

    /// The trigger (if any) this policy raises for one board's signals.
    /// Margin urgency outranks CE pressure outranks calendar age.
    pub fn trigger(&self, health: &BoardHealth) -> Option<MaintenanceTrigger> {
        if let Some(margin) = health.margin_mv {
            if margin <= self.margin_threshold_mv {
                return Some(MaintenanceTrigger::SentinelMarginal { margin_mv: margin });
            }
        } else {
            // No deployed point: the board runs at nominal and ages
            // slower than anything the scheduler could buy it.
            return None;
        }
        if health.failing_cells >= self.ce_cells_threshold {
            return Some(MaintenanceTrigger::CeRate {
                failing_cells: health.failing_cells,
            });
        }
        if health.months_since_characterization >= self.max_epoch_age_months {
            return Some(MaintenanceTrigger::CalendarAge {
                months: health.months_since_characterization,
            });
        }
        None
    }

    /// Plans one round: every triggered board, most urgent first
    /// (smallest margin, ties by board id), cut at the budget. Boards
    /// beyond the budget are returned as `deferred` — they keep their
    /// triggers and compete again next round.
    pub fn plan(&self, fleet: &[BoardHealth]) -> MaintenancePlan {
        let mut triggered: Vec<(i64, MaintenanceDecision)> = fleet
            .iter()
            .filter_map(|h| {
                self.trigger(h).map(|trigger| {
                    (
                        h.margin_mv.unwrap_or(i64::MIN),
                        MaintenanceDecision {
                            board: h.board,
                            trigger,
                        },
                    )
                })
            })
            .collect();
        triggered.sort_by_key(|(margin, d)| (*margin, d.board));
        let mut decisions = triggered.into_iter().map(|(_, d)| d);
        let scheduled: Vec<MaintenanceDecision> =
            decisions.by_ref().take(self.budget_per_round).collect();
        let deferred: Vec<MaintenanceDecision> = decisions.collect();
        for decision in &scheduled {
            telemetry::event!(
                Level::Info,
                "maintenance_scheduled",
                board = decision.board,
                trigger = decision.trigger.kind(),
            );
            match decision.trigger {
                MaintenanceTrigger::SentinelMarginal { .. } => {
                    telemetry::counter!("maintenance_trigger_margin_total")
                }
                MaintenanceTrigger::CeRate { .. } => {
                    telemetry::counter!("maintenance_trigger_ce_total")
                }
                MaintenanceTrigger::CalendarAge { .. } => {
                    telemetry::counter!("maintenance_trigger_age_total")
                }
            }
        }
        telemetry::counter!("maintenance_scheduled_total", scheduled.len() as u64);
        telemetry::counter!("maintenance_deferred_total", deferred.len() as u64);
        MaintenancePlan {
            scheduled,
            deferred,
        }
    }
}

/// One scheduled (or deferred) re-characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceDecision {
    /// The board to re-characterize.
    pub board: u32,
    /// What fired.
    pub trigger: MaintenanceTrigger,
}

/// The outcome of one planning round.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MaintenancePlan {
    /// Boards to re-characterize this round, most urgent first.
    pub scheduled: Vec<MaintenanceDecision>,
    /// Triggered boards the budget could not fit this round.
    pub deferred: Vec<MaintenanceDecision>,
}

impl MaintenancePlan {
    /// Whether nothing fired at all.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.deferred.is_empty()
    }

    /// Exports the scheduled decisions as concrete out-of-production
    /// windows on a microsecond timeline: the most urgent board's
    /// window opens at `start_us`, each window lasts `duration_us`,
    /// and consecutive windows are offset by `stagger_us` — with
    /// `stagger_us >= duration_us` at most one board is ever out of
    /// production at a time, which is what lets a dispatcher drain and
    /// re-route around maintenance without shedding load. Deferred
    /// decisions get no window; they compete again next round.
    pub fn windows(
        &self,
        start_us: u64,
        duration_us: u64,
        stagger_us: u64,
    ) -> Vec<MaintenanceWindow> {
        self.scheduled
            .iter()
            .enumerate()
            .map(|(slot, decision)| MaintenanceWindow {
                board: decision.board,
                trigger: decision.trigger,
                start_us: start_us + slot as u64 * stagger_us,
                duration_us,
            })
            .collect()
    }
}

/// One board's scheduled out-of-production re-characterization window,
/// as [`MaintenancePlan::windows`] exports it for traffic dispatchers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// The board taken out of production.
    pub board: u32,
    /// Why it was scheduled.
    pub trigger: MaintenanceTrigger,
    /// Window opening, microseconds on the caller's timeline.
    pub start_us: u64,
    /// Window length, microseconds.
    pub duration_us: u64,
}

impl MaintenanceWindow {
    /// First microsecond after the window.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.duration_us
    }

    /// Whether `at_us` falls inside the window.
    pub fn contains(&self, at_us: u64) -> bool {
        at_us >= self.start_us && at_us < self.end_us()
    }
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::dsn18()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(board: u32) -> BoardHealth {
        BoardHealth {
            board,
            months_since_characterization: 6,
            margin_mv: Some(40),
            failing_cells: 0,
        }
    }

    #[test]
    fn quiet_fleet_schedules_nothing() {
        let policy = MaintenancePolicy::dsn18();
        let fleet: Vec<BoardHealth> = (0..8).map(healthy).collect();
        assert!(policy.plan(&fleet).is_empty());
    }

    #[test]
    fn margin_outranks_ce_outranks_age() {
        let policy = MaintenancePolicy::dsn18();
        let marginal = BoardHealth {
            margin_mv: Some(10),
            failing_cells: 9,
            months_since_characterization: 30,
            ..healthy(0)
        };
        assert!(matches!(
            policy.trigger(&marginal),
            Some(MaintenanceTrigger::SentinelMarginal { margin_mv: 10 })
        ));
        let noisy = BoardHealth {
            failing_cells: 9,
            months_since_characterization: 30,
            ..healthy(1)
        };
        assert!(matches!(
            policy.trigger(&noisy),
            Some(MaintenanceTrigger::CeRate { failing_cells: 9 })
        ));
        let old = BoardHealth {
            months_since_characterization: 30,
            ..healthy(2)
        };
        assert!(matches!(
            policy.trigger(&old),
            Some(MaintenanceTrigger::CalendarAge { months: 30 })
        ));
        let parked = BoardHealth {
            margin_mv: None,
            failing_cells: 99,
            months_since_characterization: 99,
            ..healthy(3)
        };
        assert_eq!(policy.trigger(&parked), None, "nominal boards never walk");
    }

    #[test]
    fn budget_cuts_by_urgency_and_board_id() {
        let policy = MaintenancePolicy {
            budget_per_round: 2,
            ..MaintenancePolicy::dsn18()
        };
        let fleet = vec![
            BoardHealth {
                margin_mv: Some(11),
                ..healthy(5)
            },
            BoardHealth {
                margin_mv: Some(3),
                ..healthy(9)
            },
            BoardHealth {
                margin_mv: Some(11),
                ..healthy(1)
            },
            BoardHealth {
                margin_mv: Some(7),
                ..healthy(2)
            },
            healthy(0),
        ];
        let plan = policy.plan(&fleet);
        let scheduled: Vec<u32> = plan.scheduled.iter().map(|d| d.board).collect();
        assert_eq!(scheduled, vec![9, 2], "smallest margin first");
        let deferred: Vec<u32> = plan.deferred.iter().map(|d| d.board).collect();
        assert_eq!(deferred, vec![1, 5], "equal margins tie-break by id");
    }

    #[test]
    fn windows_follow_urgency_order_and_stagger() {
        let policy = MaintenancePolicy {
            budget_per_round: 3,
            ..MaintenancePolicy::dsn18()
        };
        let fleet = vec![
            BoardHealth {
                margin_mv: Some(9),
                ..healthy(4)
            },
            BoardHealth {
                margin_mv: Some(2),
                ..healthy(7)
            },
            BoardHealth {
                margin_mv: Some(5),
                ..healthy(1)
            },
            healthy(0),
        ];
        let windows = policy.plan(&fleet).windows(1_000, 500, 800);
        let boards: Vec<u32> = windows.iter().map(|w| w.board).collect();
        assert_eq!(boards, vec![7, 1, 4], "most urgent board goes first");
        assert_eq!(windows[0].start_us, 1_000);
        assert_eq!(windows[1].start_us, 1_800);
        assert_eq!(windows[2].start_us, 2_600);
        // stagger >= duration: never two boards out at once.
        for pair in windows.windows(2) {
            assert!(pair[0].end_us() <= pair[1].start_us);
        }
        assert!(windows[0].contains(1_000));
        assert!(windows[0].contains(1_499));
        assert!(!windows[0].contains(1_500));
        assert!(!windows[0].contains(999));
    }

    #[test]
    fn deferred_boards_get_no_window() {
        let policy = MaintenancePolicy {
            budget_per_round: 1,
            ..MaintenancePolicy::dsn18()
        };
        let fleet = vec![
            BoardHealth {
                margin_mv: Some(3),
                ..healthy(2)
            },
            BoardHealth {
                margin_mv: Some(4),
                ..healthy(5)
            },
        ];
        let plan = policy.plan(&fleet);
        let windows = plan.windows(0, 100, 100);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].board, 2);
        assert_eq!(plan.deferred.len(), 1);
    }

    #[test]
    fn planning_is_input_order_independent() {
        let policy = MaintenancePolicy::dsn18();
        let mut fleet = vec![
            BoardHealth {
                margin_mv: Some(2),
                ..healthy(4)
            },
            BoardHealth {
                failing_cells: 6,
                ..healthy(7)
            },
            BoardHealth {
                months_since_characterization: 25,
                ..healthy(6)
            },
            healthy(1),
        ];
        let forward = policy.plan(&fleet);
        fleet.reverse();
        assert_eq!(policy.plan(&fleet), forward);
    }
}
