//! The unit of fleet work: characterize one board, end to end.
//!
//! [`execute`] is a *pure function* of `(job, campaign, population
//! envelope)` — it boots the board from its spec, runs the undervolt
//! Vmin walk through `char-fw`'s resilient runner, probes the DRAM
//! retention floor per bank, derives the deployable safe point and the
//! power projection, and prices the whole thing in simulated
//! board-seconds. No wall clock, no global state, no dependence on which
//! worker runs it or when: this purity is the second pillar of the
//! orchestrator's N-workers ≡ serial guarantee.

use crate::population::BoardSpec;
use char_fw::resilience::ResilienceConfig;
use char_fw::runner::ResilientRunner;
use char_fw::setup::{SafePolicy, VminCampaign};
use char_fw::warmstart::{distinct_setups, run_warm_start, WarmStartConfig};
use dram_sim::retention::{CouplingContext, PopulationSpec, WeakCellPopulation};
use guardband_core::safepoint::{BoardSafePoint, SafePointPolicy};
use power_model::server::{ServerLoad, ServerPowerModel};
use power_model::units::{Celsius, Megahertz, Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use telemetry::metrics::{MetricsSnapshot, Registry};
use telemetry::{CaptureSink, Event, FlightDump, FlightRecorder, Level, Sink, Telemetry};
use workload_sim::spec::by_name;
use xgene_sim::fault::FaultPlan;
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::ChipProfile;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// The campaign every board of the fleet runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCampaign {
    /// Benchmarks characterized per core.
    pub benchmarks: Vec<WorkloadProfile>,
    /// Cores characterized individually.
    pub cores: Vec<CoreId>,
    /// Voltage decrement per step, mV.
    pub step_mv: u32,
    /// Repetitions per setup.
    pub repetitions: u32,
    /// Default search floor (a re-queued board gets a raised override).
    pub floor: Millivolts,
    /// Retry/quarantine/sentinel configuration for every board.
    pub resilience: ResilienceConfig,
    /// Deployment policy deriving the safe point from measurements.
    pub policy: SafePointPolicy,
    /// Temperature the DRAM retention floor is evaluated at.
    pub retention_temperature: Celsius,
    /// Safety divisor on the measured retention floor (a bank's safe
    /// refresh period is `floor / margin`).
    pub retention_margin: f64,
    /// Install a sub-Vmin SDC fault plan on every board, enriching the
    /// silent corruption the walk naturally produces below Vmin — more
    /// boards trip their sentinels and exercise the eviction path.
    pub inject_sub_vmin_sdc: bool,
    /// Simulated duration of one characterization run, seconds.
    pub run_seconds: f64,
    /// Simulated duration of one reboot/power cycle, seconds.
    pub reboot_seconds: f64,
}

impl FleetCampaign {
    /// The paper-shaped fleet campaign: two SPEC benchmarks on all eight
    /// cores, 5 mV steps, 10 repetitions, guarded resilience.
    pub fn dsn18() -> Self {
        FleetCampaign {
            benchmarks: vec![
                by_name("mcf").expect("mcf is in the suite").profile(),
                by_name("milc").expect("milc is in the suite").profile(),
            ],
            cores: CoreId::all().collect(),
            step_mv: 5,
            repetitions: 10,
            floor: Millivolts::new(700),
            resilience: ResilienceConfig::guarded(),
            policy: SafePointPolicy::dsn18(),
            retention_temperature: Celsius::new(60.0),
            retention_margin: 1.25,
            inject_sub_vmin_sdc: false,
            run_seconds: 10.0,
            reboot_seconds: 60.0,
        }
    }

    /// A cut-down shape for benches and tests: one benchmark, four
    /// cores, 10 mV steps, 3 repetitions.
    pub fn quick() -> Self {
        FleetCampaign {
            benchmarks: vec![by_name("mcf").expect("mcf is in the suite").profile()],
            cores: vec![
                CoreId::new(0),
                CoreId::new(2),
                CoreId::new(5),
                CoreId::new(6),
            ],
            step_mv: 10,
            repetitions: 3,
            inject_sub_vmin_sdc: true,
            ..FleetCampaign::dsn18()
        }
    }

    /// The Vmin walk this campaign runs, with an optional raised floor
    /// for re-characterization.
    pub fn vmin_campaign(&self, floor_override_mv: Option<u32>) -> VminCampaign {
        VminCampaign {
            benchmarks: self.benchmarks.clone(),
            cores: self.cores.clone(),
            frequency: Megahertz::XGENE2_NOMINAL,
            start: Millivolts::XGENE2_NOMINAL,
            floor: floor_override_mv.map_or(self.floor, Millivolts::new),
            step_mv: self.step_mv,
            repetitions: self.repetitions,
            policy: SafePolicy::AllowCorrected,
        }
    }

    /// The fault plan a board boots with under this campaign, if any —
    /// deterministic in the board's own seed.
    pub fn fault_plan(&self, board: &BoardSpec) -> Option<FaultPlan> {
        self.inject_sub_vmin_sdc
            .then(|| FaultPlan::quiet(board.boot_seed ^ 0x5DC0_FFEE).with_sub_vmin_sdc())
    }
}

/// A board's physical state at characterization time, when it differs
/// from the pristine spec. The lifetime subsystem hands
/// [`execute_in_env`] aged silicon (Vmin drifted upward), an aged DRAM
/// population (grown weak cells, decayed retention) and the previous
/// epoch's safe point as a warm-start prior; everything stays a pure
/// function of the arguments, so the N-workers ≡ serial guarantee
/// carries over to re-characterization campaigns unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobEnvironment {
    /// The chip as it exists now (e.g. after aging), replacing the
    /// spec's pristine profile.
    pub chip: ChipProfile,
    /// The DRAM weak-cell population as it exists now.
    pub population: WeakCellPopulation,
    /// Longest refresh period the safe-trefp derivation may report, ms
    /// (the envelope [`execute`] takes from its [`PopulationSpec`]).
    pub max_trefp_ms: f64,
    /// Warm-start the Vmin walk from a previous epoch, if available.
    pub warm_start: Option<WarmStartPriors>,
}

/// The previous epoch's per-core Vmin, as [`execute_in_env`] feeds it
/// to [`char_fw::warmstart::run_warm_start`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartPriors {
    /// Prior Vmin in mV, indexed by **core index** (not campaign
    /// position); `None` where the prior epoch found no safe setup.
    pub core_vmin_mv: Vec<Option<u32>>,
    /// Window shape around each prior.
    pub config: WarmStartConfig,
}

/// One queued unit of work: characterize `board` (again, if the safety
/// net already evicted it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJob {
    /// The board to characterize.
    pub board: BoardSpec,
    /// Re-characterization attempt (0 = first).
    pub attempt: u32,
    /// Raised search floor for re-characterization, mV.
    pub floor_override_mv: Option<u32>,
}

/// Everything one job produced. The [`BoardSafePoint`] record is what
/// merges into the fleet store; the rest is bookkeeping for scheduling,
/// eviction and reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardOutcome {
    /// Board id (mirrors `record.board`).
    pub board: u32,
    /// Attempt this outcome belongs to (mirrors `record.attempt`).
    pub attempt: u32,
    /// The mergeable safe-point record.
    pub record: BoardSafePoint,
    /// Whether the campaign's circuit breaker tripped — the eviction
    /// signal: the orchestrator re-queues a tripped board.
    pub tripped: bool,
    /// Highest voltage any setup failed at, mV — the basis of the raised
    /// floor a re-queued board walks down to.
    pub highest_failure_mv: Option<u32>,
    /// Characterization runs executed.
    pub runs: u64,
    /// Watchdog resets during the campaign.
    pub watchdog_resets: u64,
    /// Setups quarantined during the walk.
    pub quarantined_setups: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Backoff the recovery machinery would have slept, ms.
    pub backoff_ms: u64,
    /// What this job would have cost on real hardware, in simulated
    /// board-seconds (runs, sentinels, reboots, backoff, DRAM probe).
    pub sim_cost_seconds: f64,
    /// Distinct (benchmark, core, voltage) setups the walk visited —
    /// the cost metric warm-started re-characterization shrinks.
    /// Defaults keep outcomes from before this field decodable.
    #[serde(default)]
    pub walked_steps: u64,
    /// The job's own telemetry, captured from a per-job registry.
    pub metrics: MetricsSnapshot,
    /// The job's `Warn`-and-above event trace, in emission order — the
    /// per-board stream the observatory merges into the fleet timeline.
    /// Defaults keep outcomes from before this field decodable.
    #[serde(default)]
    pub trace: Vec<Event>,
    /// Flight-recorder dumps triggered during the job (the lead-up to
    /// each quarantine/error), in trigger order.
    #[serde(default)]
    pub dumps: Vec<FlightDump>,
}

/// Simulated boot time charged per job, seconds.
const BOOT_SECONDS: f64 = 30.0;
/// Simulated duration of the per-bank retention probe, seconds.
const RETENTION_PROBE_SECONDS: f64 = 120.0;

/// Characterizes one board. Pure: the outcome depends only on the
/// arguments, never on the executing thread, wall clock or any global.
pub fn execute(
    job: &FleetJob,
    campaign: &FleetCampaign,
    population: PopulationSpec,
) -> BoardOutcome {
    execute_with(job, campaign, population.max_trefp.as_f64(), None, || {
        job.board.boot(population)
    })
}

/// Characterizes one board in an explicit physical environment — aged
/// chip, aged DRAM, optional warm-start priors. Pure in the same sense
/// as [`execute`]; in fact [`execute`] is this function with the
/// spec's pristine environment and no priors.
pub fn execute_in_env(
    job: &FleetJob,
    campaign: &FleetCampaign,
    env: &JobEnvironment,
) -> BoardOutcome {
    execute_with(
        job,
        campaign,
        env.max_trefp_ms,
        env.warm_start.as_ref(),
        || {
            XGene2Server::with_chip_and_population(
                env.chip.clone(),
                job.board.boot_seed,
                env.population.clone(),
            )
        },
    )
}

fn execute_with(
    job: &FleetJob,
    campaign: &FleetCampaign,
    max_trefp: f64,
    warm: Option<&WarmStartPriors>,
    boot: impl FnOnce() -> XGene2Server,
) -> BoardOutcome {
    // Each job gets its own registry, capture sink and flight recorder
    // in the executing thread's telemetry context: worker threads never
    // share mutable telemetry state, and the captured snapshot, trace
    // and dumps are identical wherever the job runs (the fresh context
    // restarts sequence numbers at zero).
    let registry = Rc::new(Registry::new());
    let capture = Rc::new(CaptureSink::new().with_min_level(Level::Warn));
    let recorder = Rc::new(
        FlightRecorder::with_capacity(48)
            .with_min_level(Level::Debug)
            .with_max_dumps(2),
    );
    let guard = Telemetry::new()
        .with_registry(Rc::clone(&registry))
        .with_shared_sink(Rc::clone(&capture) as Rc<dyn Sink>)
        .with_shared_sink(Rc::clone(&recorder) as Rc<dyn Sink>)
        .install();

    let mut server = boot();
    if let Some(plan) = campaign.fault_plan(&job.board) {
        server.install_fault_plan(plan);
    }
    let walk = campaign.vmin_campaign(job.floor_override_mv);
    let (result, walked_steps) = match warm {
        Some(priors) => {
            let outcome = run_warm_start(
                &mut server,
                &walk,
                &priors.core_vmin_mv,
                priors.config,
                campaign.resilience,
            );
            let steps = outcome.walked_setups;
            (outcome.result, steps)
        }
        None => {
            let result =
                ResilientRunner::new(&mut server, walk, campaign.resilience).run_to_completion();
            let steps = distinct_setups(&result);
            (result, steps)
        }
    };

    // Worst-case (highest) Vmin per core across the benchmark set; a
    // core counts as characterized only if every benchmark found one.
    let core_vmin_mv: Vec<Option<u32>> = campaign
        .cores
        .iter()
        .map(|core| {
            campaign
                .benchmarks
                .iter()
                .map(|bench| result.vmin(bench.name(), *core).map(Millivolts::as_u32))
                .try_fold(0u32, |worst, vmin| vmin.map(|v| worst.max(v)))
        })
        .collect();

    // Measured rail Vmin for deploying the whole core set at once: the
    // worst single-core Vmin plus the chip's multicore penalty.
    let rail_vmin_mv = core_vmin_mv
        .iter()
        .copied()
        .try_fold(0u32, |worst, vmin| vmin.map(|v| worst.max(v)))
        .map(|worst| {
            let penalty =
                job.board.chip.multicore_penalty_mv() * (campaign.cores.len() as f64 - 1.0);
            worst + penalty.round() as u32
        });

    // Per-bank retention floor → validated-safe refresh period. Clamped
    // between the nominal DDR3 period and the population envelope.
    let floors = server
        .dram()
        .population()
        .min_retention_per_bank(campaign.retention_temperature, CouplingContext::WorstCase);
    let bank_safe_trefp_ms: Vec<f64> = floors
        .iter()
        .map(|floor| match floor {
            Some(ms) => (ms / campaign.retention_margin)
                .clamp(Milliseconds::DDR3_NOMINAL_TREFP.as_f64(), max_trefp),
            None => max_trefp,
        })
        .collect();
    let chip_safe_trefp = bank_safe_trefp_ms.iter().copied().fold(max_trefp, f64::min);

    let operating_point = rail_vmin_mv.map(|rail| {
        campaign
            .policy
            .derive_from_measured(Millivolts::new(rail), Milliseconds::new(chip_safe_trefp))
    });
    let power_model = ServerPowerModel::xgene2();
    let load = ServerLoad::jammer_detector();
    let (savings_fraction, savings_watts) = operating_point
        .as_ref()
        .map(|point| {
            (
                power_model.total_savings(point, &load),
                power_model.savings_watts(point, &load).as_f64(),
            )
        })
        .unwrap_or((0.0, 0.0));

    let record = BoardSafePoint {
        board: job.board.id,
        attempt: job.attempt,
        bin: job.board.bin(),
        core_vmin_mv,
        rail_vmin_mv,
        operating_point,
        bank_safe_trefp_ms,
        savings_fraction,
        savings_watts,
    };

    let highest_failure_mv = result
        .vmins
        .iter()
        .filter_map(|v| v.first_failure.map(Millivolts::as_u32))
        .max();
    let runs = result.records.len() as u64;
    let sentinel_runs = result.safety.sentinel.checks;
    let reboots = result.watchdog_resets + result.recovery.reset_retries;
    let sim_cost_seconds = BOOT_SECONDS
        + (runs + sentinel_runs) as f64 * campaign.run_seconds
        + reboots as f64 * campaign.reboot_seconds
        + result.recovery.total_backoff_ms as f64 / 1000.0
        + RETENTION_PROBE_SECONDS;

    drop(guard);
    // Wall-clock profiling histograms (`*_wall_seconds`) measure the
    // host, not the board — strip them so the outcome is a pure function
    // of the job.
    let mut metrics = registry.snapshot();
    metrics
        .histograms
        .retain(|(name, _)| !name.contains("wall"));
    BoardOutcome {
        board: job.board.id,
        attempt: job.attempt,
        record,
        tripped: result.safety.breaker_trips > 0,
        highest_failure_mv,
        runs,
        watchdog_resets: result.watchdog_resets,
        quarantined_setups: result.quarantined.len() as u64,
        breaker_trips: result.safety.breaker_trips,
        backoff_ms: result.recovery.total_backoff_ms,
        sim_cost_seconds,
        walked_steps,
        metrics,
        trace: capture.events(),
        dumps: recorder.take_dumps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::FleetSpec;

    fn job(id: u32) -> FleetJob {
        FleetJob {
            board: FleetSpec::new(8, 2018).board(id),
            attempt: 0,
            floor_override_mv: None,
        }
    }

    #[test]
    fn execute_is_deterministic() {
        let campaign = FleetCampaign::quick();
        let spec = FleetSpec::new(8, 2018);
        let a = execute(&job(1), &campaign, spec.population);
        let b = execute(&job(1), &campaign, spec.population);
        assert_eq!(a, b);
    }

    #[test]
    fn an_untripped_board_yields_a_deployable_record() {
        let mut campaign = FleetCampaign::quick();
        campaign.inject_sub_vmin_sdc = false;
        let spec = FleetSpec::new(8, 2018);
        // Board 4's walk completes without tripping the safety net (most
        // boards' deep walks do trip — sub-Vmin corruption is real and
        // the sentinels catch it — which is the eviction path's job).
        let outcome = execute(&job(4), &campaign, spec.population);
        assert!(!outcome.tripped);
        let point = outcome.record.operating_point.expect("characterized");
        assert!(point.pmd_voltage < Millivolts::XGENE2_NOMINAL);
        assert!(outcome.record.margin_mv().unwrap() > 0);
        assert!(outcome.record.savings_watts > 0.0);
        assert!(outcome.sim_cost_seconds > 0.0);
        assert!(outcome.runs > 0);
        // The per-job registry captured the campaign's own counters.
        assert!(!outcome.metrics.counters.is_empty());
        // Every bank validated a refresh period at or beyond nominal.
        assert!(outcome
            .record
            .bank_safe_trefp_ms
            .iter()
            .all(|t| *t >= Milliseconds::DDR3_NOMINAL_TREFP.as_f64()));
    }

    #[test]
    fn outcomes_carry_an_ordered_warn_level_trace_and_dumps() {
        let campaign = FleetCampaign::quick();
        let spec = FleetSpec::new(8, 2018);
        let outcome = execute(&job(1), &campaign, spec.population);
        // quick() injects sub-Vmin SDC: the deep walk crashes and
        // retries, so the Warn-and-above trace is never empty.
        assert!(!outcome.trace.is_empty());
        assert!(outcome.trace.iter().all(|e| e.level >= Level::Warn));
        assert!(
            outcome.trace.windows(2).all(|w| w[0].seq < w[1].seq),
            "trace is in emission order"
        );
        // Dumps are in trigger order and end at their trigger.
        assert!(outcome
            .dumps
            .windows(2)
            .all(|w| w[0].trigger_seq < w[1].trigger_seq));
        for dump in &outcome.dumps {
            assert_eq!(dump.events.last().unwrap().seq, dump.trigger_seq);
        }
        if outcome.quarantined_setups > 0 {
            assert!(!outcome.dumps.is_empty(), "quarantines trigger dumps");
        }
    }

    #[test]
    fn warm_started_recharacterization_walks_far_fewer_steps() {
        let mut campaign = FleetCampaign::quick();
        campaign.inject_sub_vmin_sdc = false;
        let spec = FleetSpec::new(8, 2018);
        let cold = execute(&job(4), &campaign, spec.population);
        assert!(cold.walked_steps > 0);

        // Age the board three years and re-characterize from the prior.
        let board = spec.board(4);
        let aging = xgene_sim::aging::AgingModel::sampled(board.boot_seed);
        let shifts = aging.shifts_mv(&xgene_sim::aging::StressProfile::datacenter(), 36);
        let mut priors = vec![None; xgene_sim::topology::CORE_COUNT];
        for (core, vmin) in campaign.cores.iter().zip(&cold.record.core_vmin_mv) {
            priors[core.index()] = *vmin;
        }
        let env = JobEnvironment {
            chip: board.chip.with_aging(&shifts),
            population: dram_sim::aging::DramAging::dsn18().aged(
                &dram_sim::retention::WeakCellPopulation::generate(
                    &dram_sim::retention::RetentionModel::xgene2_micron(),
                    spec.population,
                    board.boot_seed,
                ),
                36,
                board.boot_seed,
            ),
            max_trefp_ms: spec.population.max_trefp.as_f64(),
            warm_start: Some(WarmStartPriors {
                core_vmin_mv: priors,
                config: WarmStartConfig::dsn18(),
            }),
        };
        let mut rejob = job(4);
        rejob.attempt = 1;
        let warm = execute_in_env(&rejob, &campaign, &env);
        assert_eq!(warm, execute_in_env(&rejob, &campaign, &env), "pure");
        assert!(
            warm.walked_steps * 2 <= cold.walked_steps,
            "warm {} vs cold {}",
            warm.walked_steps,
            cold.walked_steps
        );
        // Aged silicon never reports a lower Vmin than it started with.
        for (aged, fresh) in warm
            .record
            .core_vmin_mv
            .iter()
            .zip(&cold.record.core_vmin_mv)
        {
            if let (Some(a), Some(f)) = (aged, fresh) {
                assert!(a >= f, "aged {a} vs fresh {f}");
            }
        }
    }

    #[test]
    fn raised_floor_keeps_the_walk_shallow() {
        let campaign = FleetCampaign::quick();
        let spec = FleetSpec::new(8, 2018);
        let deep = execute(&job(3), &campaign, spec.population);
        let mut retry = job(3);
        retry.attempt = 1;
        retry.floor_override_mv = deep.highest_failure_mv.map(|mv| mv + 15);
        let shallow = execute(&retry, &campaign, spec.population);
        assert!(shallow.runs < deep.runs, "raised floor must cut the walk");
        assert_eq!(shallow.record.attempt, 1);
    }
}
