//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal serde: [`Serialize`]/[`Deserialize`] traits over a
//! self-describing [`Value`] tree, a JSON reader/writer in [`json`], and
//! `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` proc-macro crate) that understand plain structs, tuple
//! structs, unit structs and enums with unit/tuple/struct variants, plus
//! the `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(skip, default = "path")]` field attributes used in this
//! repository.
//!
//! The data model is intentionally small — everything the
//! characterization framework checkpoints flows through [`Value`]:
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: u32,
//!     label: String,
//! }
//!
//! let p = Point { x: 7, label: "vmin".to_string() };
//! let text = serde::json::to_string(&p);
//! let back: Point = serde::json::from_str(&text).unwrap();
//! assert_eq!(p, back);
//! ```

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub mod json;

/// The self-describing serialized form.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / absent.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0 when produced by this crate).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (struct fields, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, or an error for any other shape.
    pub fn as_map(&self) -> Result<&Vec<(String, Value)>, Error> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }

    /// The sequence elements, or an error for any other shape.
    pub fn as_seq(&self) -> Result<&Vec<Value>, Error> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected seq, found {}",
                other.kind()
            ))),
        }
    }

    /// The string payload, or an error for any other shape.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }
}

/// Fetches a struct field from a map value (helper for derived code).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` of `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

// 128-bit integers don't fit the U64/I64 value model; encode as decimal
// strings (JSON numbers that wide would lose precision in most readers).
macro_rules! impl_int128 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Str(s) => s.parse::<$t>().map_err(|_| {
                        Error::custom(format!("invalid {} literal `{s}`", stringify!($t)))
                    }),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for {}", stringify!($t)))
                    }),
                    other => Err(Error::custom(format!(
                        "expected 128-bit integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int128!(u128, i128);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of i64 range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = v
            .as_seq()?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq()?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found {}", s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)?.into_iter().collect::<Result<_, _>>()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)?.into_iter().collect::<Result<_, _>>()
    }
}

#[allow(clippy::type_complexity)]
fn map_entries<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<Result<(K, V), Error>>, Error> {
    Ok(v.as_seq()?
        .iter()
        .map(|pair| {
            let s = pair.as_seq()?;
            if s.len() != 2 {
                return Err(Error::custom("map entry must be a [key, value] pair"));
            }
            Ok((K::from_value(&s[0])?, V::from_value(&s[1])?))
        })
        .collect())
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [-3i32, 0, 7] {
            assert_eq!(i32::from_value(&v.to_value()).unwrap(), v);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u8> = Some(9);
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), opt);
        let arr = [1.5f64, 2.5];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let mut map = BTreeMap::new();
        map.insert(("a".to_string(), 3u32), 9u64);
        assert_eq!(
            BTreeMap::<(String, u32), u64>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
