//! JSON text encoding of the [`Value`] data model.
//!
//! Floats are written with Rust's shortest round-trip formatting, so any
//! finite `f64` survives `to_string` → `from_str` exactly; non-finite
//! floats are encoded as the strings `"NaN"`, `"inf"` and `"-inf"`.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes any [`Serialize`] type to JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    out
}

/// Parses JSON text and rebuilds a [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or trailing input.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else {
        // `{}` on f64 is the shortest decimal that round-trips exactly.
        // Force a fractional form so the reader re-tags it as F64.
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid keyword at byte {}",
                self.pos
            )))
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume a full UTF-8 scalar starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_through_text() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(0.1),
            Value::F64(1.0),
            Value::Str("a \"quoted\" line\nwith µnicode".into()),
        ];
        for v in cases {
            let text = {
                let mut s = String::new();
                write_value(&mut s, &v);
                s
            };
            let back = parse(&text).unwrap();
            match (&v, &back) {
                // Integral floats come back as integers; numerically equal.
                (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, back, "text was {text}"),
            }
        }
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m[0].0, "a");
        assert_eq!(m[0].1.as_seq().unwrap().len(), 3);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("[] []").is_err());
    }
}
