//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest 1.x API its tests use: the
//! [`Strategy`](strategy::Strategy) trait with range / tuple /
//! [`Just`](strategy::Just) / `prop_map` / [`prop_oneof!`] combinators,
//! [`collection::vec`], `any::<T>()` for the primitives, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Each `#[test]` inside [`proptest!`] runs a fixed number
//! of cases from an RNG seeded deterministically from the test's name,
//! and a failing case panics with the case index so the run is exactly
//! reproducible. For the simulation invariants in this repository that
//! trade-off (reproducibility without minimization) is acceptable.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A reusable recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream this is sample-based (no value tree / shrinking),
    /// which keeps it object-safe apart from the provided combinators.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Coerces a concrete strategy to a boxed trait object (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Picks one of several alternative strategies uniformly at random
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Strategy for `any::<T>()`: the full domain of a primitive type.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Generates arbitrary values of a primitive type (integers, `bool`,
    /// floats in `[0, 1)`).
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for [`fn@vec`]: built from `usize`, `a..b` or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of random cases each property runs.
    pub const CASES: u32 = 128;

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
        reject: bool,
    }

    impl TestCaseError {
        /// An assertion failure: the property is falsified.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                reject: false,
            }
        }

        /// A rejected case (`prop_assume!`): skipped, not a failure.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                reject: true,
            }
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test name, so every
    /// property has its own reproducible stream independent of run order.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` [`CASES`] times with a deterministic RNG; panics with
    /// the case index on the first falsified property.
    pub fn run_cases(test_name: &str, case: impl Fn(&mut StdRng) -> Result<(), TestCaseError>) {
        let mut rng = StdRng::seed_from_u64(seed_for(test_name));
        let mut rejected = 0u32;
        for i in 0..CASES {
            match case(&mut rng) {
                Ok(()) => {}
                Err(e) if e.reject => rejected += 1,
                Err(e) => panic!(
                    "property `{test_name}` falsified at case {i}/{CASES}: {}",
                    e.message
                ),
            }
        }
        assert!(
            rejected < CASES,
            "property `{test_name}` rejected every case (prop_assume! too strict)"
        );
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn` becomes a `#[test]` that runs
/// [`test_runner::CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng, $($params)*);
                $body
                Ok(())
            });
        }
    )*};
}

/// Internal: binds each `name in strategy` / `name: Type` parameter.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::sample(&$strat, $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}`",
                    __pt_l, __pt_r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(
            crate::test_runner::seed_for("alpha"),
            crate::test_runner::seed_for("alpha")
        );
        assert_ne!(
            crate::test_runner::seed_for("alpha"),
            crate::test_runner::seed_for("beta")
        );
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 10u32..20, w in -3i64..=3, x in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-3..=3).contains(&w));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn tuples_map_and_oneof_compose(
            pair in (0u8..4, 0.0f64..=1.0).prop_map(|(a, b)| f64::from(a) + b),
            tag in prop_oneof![Just(1u8), Just(2), Just(3)],
            raw: u64,
        ) {
            prop_assert!((0.0..5.0).contains(&pair));
            prop_assert!((1..=3).contains(&tag));
            let _ = raw;
        }

        #[test]
        fn vec_lengths_respect_size_range(items in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| x < 100), "out of range: {items:?}");
        }

        #[test]
        fn assume_discards_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
