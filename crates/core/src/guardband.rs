//! Guardband accounting: turning measured Vmin values into the voltage and
//! power margins the paper reports.
//!
//! The paper quotes guardbands two ways: as millivolts of headroom below
//! the 980 mV nominal, and as the *power-equivalent* reduction — "at least
//! 18.4 % for the TTT and TFF chip, and 15.7 % for the TSS chip" — which is
//! the quadratic `1 − (Vmin/Vnom)²` of the worst (highest-Vmin) program.

use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use xgene_sim::sigma::SigmaBin;

/// Guardband of one (benchmark, chip, core) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Guardband {
    /// Benchmark name.
    pub benchmark: String,
    /// Chip corner.
    pub chip: SigmaBin,
    /// Measured minimum safe voltage.
    pub vmin: Millivolts,
    /// Nominal voltage the margin is measured against.
    pub nominal: Millivolts,
}

impl Guardband {
    /// Creates a guardband record.
    pub fn new(
        benchmark: impl Into<String>,
        chip: SigmaBin,
        vmin: Millivolts,
        nominal: Millivolts,
    ) -> Self {
        Guardband {
            benchmark: benchmark.into(),
            chip,
            vmin,
            nominal,
        }
    }

    /// Voltage headroom in millivolts (zero when Vmin ≥ nominal).
    pub fn margin_mv(&self) -> u32 {
        self.nominal.as_u32().saturating_sub(self.vmin.as_u32())
    }

    /// Relative voltage reduction `(Vnom − Vmin)/Vnom`.
    pub fn voltage_fraction(&self) -> f64 {
        self.nominal.guardband_fraction(self.vmin)
    }

    /// Power-equivalent reduction `1 − (Vmin/Vnom)²` — the number the
    /// paper's "18.4 %" refers to.
    pub fn power_fraction(&self) -> f64 {
        let r = self.vmin.ratio_to(self.nominal).min(1.0);
        1.0 - r * r
    }
}

/// Guardband summary of a whole campaign on one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardbandSummary {
    /// Chip corner.
    pub chip: SigmaBin,
    /// Per-benchmark guardbands (most robust core).
    pub entries: Vec<Guardband>,
}

impl GuardbandSummary {
    /// The guaranteed (worst-case over benchmarks) guardband: set by the
    /// *highest* Vmin.
    pub fn guaranteed(&self) -> Option<&Guardband> {
        self.entries.iter().max_by_key(|g| g.vmin)
    }

    /// The largest observed per-benchmark guardband (lowest Vmin).
    pub fn best_case(&self) -> Option<&Guardband> {
        self.entries.iter().min_by_key(|g| g.vmin)
    }

    /// Range of Vmin across benchmarks, in mV.
    pub fn workload_variation_mv(&self) -> u32 {
        match (self.best_case(), self.guaranteed()) {
            (Some(lo), Some(hi)) => hi.vmin.as_u32() - lo.vmin.as_u32(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(chip: SigmaBin, vmins: &[(&str, u32)]) -> GuardbandSummary {
        GuardbandSummary {
            chip,
            entries: vmins
                .iter()
                .map(|(n, v)| {
                    Guardband::new(*n, chip, Millivolts::new(*v), Millivolts::XGENE2_NOMINAL)
                })
                .collect(),
        }
    }

    #[test]
    fn ttt_guaranteed_guardband_is_18_4_percent() {
        // Worst TTT SPEC Vmin is 885 mV: 1 − (885/980)² = 18.44 %.
        let s = summary(SigmaBin::Ttt, &[("mcf", 860), ("milc", 885)]);
        let g = s.guaranteed().unwrap();
        assert_eq!(g.benchmark, "milc");
        assert!(
            (g.power_fraction() - 0.184).abs() < 2e-3,
            "{}",
            g.power_fraction()
        );
    }

    #[test]
    fn tss_guaranteed_guardband_is_15_7_percent() {
        let s = summary(SigmaBin::Tss, &[("mcf", 870), ("milc", 900)]);
        let g = s.guaranteed().unwrap();
        assert!(
            (g.power_fraction() - 0.157).abs() < 2e-3,
            "{}",
            g.power_fraction()
        );
    }

    #[test]
    fn margin_and_variation() {
        let s = summary(SigmaBin::Ttt, &[("a", 860), ("b", 885), ("c", 871)]);
        assert_eq!(s.workload_variation_mv(), 25);
        assert_eq!(s.best_case().unwrap().margin_mv(), 120);
        assert_eq!(s.guaranteed().unwrap().margin_mv(), 95);
    }

    #[test]
    fn vmin_above_nominal_clamps_to_zero_margin() {
        let g = Guardband::new(
            "virus",
            SigmaBin::Tss,
            Millivolts::new(990),
            Millivolts::new(980),
        );
        assert_eq!(g.margin_mv(), 0);
        assert_eq!(g.power_fraction(), 0.0);
        assert_eq!(g.voltage_fraction(), 0.0);
    }
}
