//! Droop-history-based failure-probability prediction (§IV.D outlook).
//!
//! The paper sketches its future online mechanism: "based on a chip's
//! intrinsic Vmin (this can be determined with idle Vmin test) and the
//! history of droops, we can predict the probability of the operating
//! voltage crossing the intrinsic Vmin". We implement that mechanism: a
//! rolling record of observed droop magnitudes, a Gaussian tail model, and
//! a voltage chooser for a target failure probability.

use dram_sim::math::{normal_cdf, normal_quantile};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};

/// A rolling history of observed voltage droops (in mV below the rail).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroopHistory {
    samples: Vec<f64>,
    capacity: usize,
    next: usize,
    filled: bool,
}

impl DroopHistory {
    /// Creates a history ring of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        DroopHistory {
            samples: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            filled: false,
        }
    }

    /// Records one droop observation in mV.
    ///
    /// # Panics
    ///
    /// Panics if the sample is negative or not finite.
    pub fn record(&mut self, droop_mv: f64) {
        assert!(
            droop_mv.is_finite() && droop_mv >= 0.0,
            "droop must be non-negative"
        );
        if self.samples.len() < self.capacity {
            self.samples.push(droop_mv);
        } else {
            self.samples[self.next] = droop_mv;
            self.filled = true;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean in mV (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Records the droop of an executed current waveform, measured through
    /// the PDN model — the online path that connects the pipeline's
    /// execution traces to the failure predictor.
    pub fn record_trace(&mut self, pdn: &xgene_sim::pdn::PdnModel, samples: &[f64], period_s: f64) {
        if samples.is_empty() || period_s <= 0.0 {
            return;
        }
        self.record(pdn.droop_mv_from_trace(samples, period_s));
    }

    /// Sample standard deviation in mV (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }
}

/// The failure-probability predictor combining an intrinsic Vmin with a
/// droop history.
///
/// # Examples
///
/// ```
/// use guardband_core::droop_history::{DroopHistory, FailurePredictor};
/// use power_model::units::Millivolts;
///
/// let mut history = DroopHistory::new(256);
/// for i in 0..200 {
///     history.record(20.0 + (i % 10) as f64); // droops 20..30 mV
/// }
/// let predictor = FailurePredictor::new(Millivolts::new(860), history);
/// // At nominal there is effectively no risk:
/// assert!(predictor.failure_probability(Millivolts::new(980)) < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailurePredictor {
    /// Idle (intrinsic) Vmin of the chip.
    intrinsic_vmin: Millivolts,
    history: DroopHistory,
}

impl FailurePredictor {
    /// Creates a predictor from an idle-Vmin measurement and a history.
    pub fn new(intrinsic_vmin: Millivolts, history: DroopHistory) -> Self {
        FailurePredictor {
            intrinsic_vmin,
            history,
        }
    }

    /// The intrinsic Vmin the predictor anchors on.
    pub fn intrinsic_vmin(&self) -> Millivolts {
        self.intrinsic_vmin
    }

    /// Probability that a droop pushes the effective voltage below the
    /// intrinsic Vmin when operating at `voltage` (per droop event).
    pub fn failure_probability(&self, voltage: Millivolts) -> f64 {
        let margin = f64::from(voltage.as_u32()) - f64::from(self.intrinsic_vmin.as_u32());
        if self.history.is_empty() {
            return if margin > 0.0 { 0.0 } else { 1.0 };
        }
        let mu = self.history.mean();
        let sigma = self.history.stddev().max(0.5);
        // P(droop > margin) under the Gaussian tail model.
        1.0 - normal_cdf((margin - mu) / sigma)
    }

    /// The lowest 5 mV-grid voltage whose per-event failure probability
    /// stays at or below `target` (clamped to nominal).
    pub fn voltage_for(&self, target: f64) -> Millivolts {
        let target = target.clamp(1e-12, 0.5);
        let mu = self.history.mean();
        let sigma = self.history.stddev().max(0.5);
        let margin = mu + sigma * normal_quantile(1.0 - target);
        let mv = (f64::from(self.intrinsic_vmin.as_u32()) + margin).ceil() as u32;
        let gridded = mv.div_ceil(5) * 5;
        Millivolts::new(gridded.min(Millivolts::XGENE2_NOMINAL.as_u32()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(mean: f64, spread: f64, n: usize) -> DroopHistory {
        let mut h = DroopHistory::new(n);
        for i in 0..n {
            let offset = (i as f64 / (n - 1) as f64 - 0.5) * 2.0 * spread;
            h.record((mean + offset).max(0.0));
        }
        h
    }

    #[test]
    fn probability_decreases_with_voltage() {
        let p = FailurePredictor::new(Millivolts::new(860), history_with(25.0, 10.0, 100));
        let low = p.failure_probability(Millivolts::new(880));
        let high = p.failure_probability(Millivolts::new(920));
        assert!(low > high);
        assert!(p.failure_probability(Millivolts::new(980)) < 1e-9);
    }

    #[test]
    fn voltage_for_meets_target() {
        let p = FailurePredictor::new(Millivolts::new(860), history_with(25.0, 10.0, 200));
        for target in [1e-3, 1e-5, 1e-7] {
            let v = p.voltage_for(target);
            assert!(
                p.failure_probability(v) <= target * 1.05,
                "target {target}: v {v}, p {}",
                p.failure_probability(v)
            );
            assert_eq!(v.as_u32() % 5, 0);
        }
    }

    #[test]
    fn tighter_targets_need_higher_voltage() {
        let p = FailurePredictor::new(Millivolts::new(860), history_with(25.0, 10.0, 200));
        assert!(p.voltage_for(1e-7) >= p.voltage_for(1e-3));
    }

    #[test]
    fn ring_buffer_wraps() {
        let mut h = DroopHistory::new(4);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert!((h.mean() - (100.0 + 2.0 + 3.0 + 4.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_history_is_binary() {
        let p = FailurePredictor::new(Millivolts::new(860), DroopHistory::new(8));
        assert_eq!(p.failure_probability(Millivolts::new(900)), 0.0);
        assert_eq!(p.failure_probability(Millivolts::new(850)), 1.0);
    }

    #[test]
    #[should_panic(expected = "droop must be non-negative")]
    fn rejects_negative_droop() {
        DroopHistory::new(4).record(-1.0);
    }
}
