//! Safe-operating-point selection (§IV.D).
//!
//! The aim of the whole characterization is "to reveal the 'safe'
//! operating points in cores and DRAMs within each server and exploit them
//! during system operation". This module turns characterization outputs —
//! rail Vmin of the deployed workload set, the virus-exposed droop margin,
//! and the DRAM campaign — into a concrete [`OperatingPoint`], adding a
//! configurable engineering margin and snapping to the regulator grid.

use power_model::server::OperatingPoint;
use power_model::tradeoff::FrequencyPlan;
use power_model::units::{Megahertz, Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use xgene_sim::sigma::ChipProfile;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// Policy for deriving a safe point from characterization results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafePointPolicy {
    /// Extra PMD-rail margin added above the observed workload rail Vmin.
    pub pmd_margin_mv: u32,
    /// SoC-rail undervolt below nominal (the SoC domain has no per-
    /// workload Vmin model; the paper settles on 920 mV ⇒ 60 mV below).
    pub soc_undervolt_mv: u32,
    /// Regulator step the chosen voltage snaps *up* to.
    pub grid_mv: u32,
    /// DRAM refresh period (validated safe by the DRAM campaign).
    pub trefp: Milliseconds,
}

impl SafePointPolicy {
    /// The paper's deployment policy: 25 mV PMD margin, SoC at 920 mV,
    /// 35× relaxed refresh, 5 mV regulator grid.
    pub fn dsn18() -> Self {
        SafePointPolicy {
            pmd_margin_mv: 25,
            soc_undervolt_mv: 60,
            grid_mv: 5,
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }

    /// Derives the safe operating point for running `workloads` pinned to
    /// `cores` at nominal frequency on `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` and `cores` have different lengths or are
    /// empty.
    pub fn derive(
        &self,
        chip: &ChipProfile,
        workloads: &[WorkloadProfile],
        cores: &[CoreId],
    ) -> OperatingPoint {
        assert_eq!(workloads.len(), cores.len(), "one core per workload");
        assert!(!workloads.is_empty(), "at least one workload");
        let assignments: Vec<(CoreId, &WorkloadProfile, Megahertz)> = cores
            .iter()
            .zip(workloads)
            .map(|(c, w)| (*c, w, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip
            .rail_vmin(&assignments)
            .expect("non-empty assignments yield a rail Vmin");
        let pmd = snap_up(rail.as_u32() + self.pmd_margin_mv, self.grid_mv);
        let soc = Millivolts::XGENE2_NOMINAL.as_u32() - self.soc_undervolt_mv;
        OperatingPoint {
            pmd_voltage: Millivolts::new(pmd.min(Millivolts::XGENE2_NOMINAL.as_u32())),
            soc_voltage: Millivolts::new(soc),
            plan: FrequencyPlan::all_nominal(),
            trefp: self.trefp,
        }
    }
}

fn snap_up(mv: u32, grid: u32) -> u32 {
    if grid == 0 {
        return mv;
    }
    mv.div_ceil(grid) * grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::jammer;
    use xgene_sim::sigma::SigmaBin;
    use xgene_sim::topology::CoreId;

    #[test]
    fn jammer_deployment_yields_the_papers_930_920_point() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let policy = SafePointPolicy::dsn18();
        // 4 parallel jammer instances on 8 threads (2 per instance).
        let profile = jammer::profile();
        let workloads = vec![profile; 8];
        let cores: Vec<CoreId> = CoreId::all().collect();
        let point = policy.derive(&chip, &workloads, &cores);
        assert_eq!(point.pmd_voltage, Millivolts::new(930), "{point}");
        assert_eq!(point.soc_voltage, Millivolts::new(920));
        assert_eq!(point.trefp, Milliseconds::DSN18_RELAXED_TREFP);
    }

    #[test]
    fn safe_point_clears_the_rail_vmin() {
        let chip = ChipProfile::corner(SigmaBin::Tss);
        let policy = SafePointPolicy::dsn18();
        let profile = jammer::profile();
        let workloads = vec![profile; 8];
        let cores: Vec<CoreId> = CoreId::all().collect();
        let point = policy.derive(&chip, &workloads, &cores);
        let assignments: Vec<_> = cores
            .iter()
            .zip(&workloads)
            .map(|(c, w)| (*c, w, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip.rail_vmin(&assignments).unwrap();
        assert!(point.pmd_voltage.as_u32() >= rail.as_u32() + 20);
    }

    #[test]
    fn never_exceeds_nominal() {
        let chip = ChipProfile::corner(SigmaBin::Tss);
        let policy = SafePointPolicy {
            pmd_margin_mv: 200,
            ..SafePointPolicy::dsn18()
        };
        let workloads = vec![jammer::profile(); 2];
        let cores = vec![CoreId::new(0), CoreId::new(1)];
        let point = policy.derive(&chip, &workloads, &cores);
        assert!(point.pmd_voltage <= Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn snap_up_rounds_to_grid() {
        assert_eq!(snap_up(929, 5), 930);
        assert_eq!(snap_up(930, 5), 930);
        assert_eq!(snap_up(931, 5), 935);
        assert_eq!(snap_up(7, 0), 7);
    }

    #[test]
    #[should_panic(expected = "one core per workload")]
    fn rejects_mismatched_lengths() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let _ = SafePointPolicy::dsn18().derive(&chip, &[jammer::profile()], &[]);
    }
}
