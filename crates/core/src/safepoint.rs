//! Safe-operating-point selection (§IV.D).
//!
//! The aim of the whole characterization is "to reveal the 'safe'
//! operating points in cores and DRAMs within each server and exploit them
//! during system operation". This module turns characterization outputs —
//! rail Vmin of the deployed workload set, the virus-exposed droop margin,
//! and the DRAM campaign — into a concrete [`OperatingPoint`], adding a
//! configurable engineering margin and snapping to the regulator grid.

use power_model::server::OperatingPoint;
use power_model::tradeoff::FrequencyPlan;
use power_model::units::{Megahertz, Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xgene_sim::sigma::{ChipProfile, SigmaBin};
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// Policy for deriving a safe point from characterization results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafePointPolicy {
    /// Extra PMD-rail margin added above the observed workload rail Vmin.
    pub pmd_margin_mv: u32,
    /// SoC-rail undervolt below nominal (the SoC domain has no per-
    /// workload Vmin model; the paper settles on 920 mV ⇒ 60 mV below).
    pub soc_undervolt_mv: u32,
    /// Regulator step the chosen voltage snaps *up* to.
    pub grid_mv: u32,
    /// DRAM refresh period (validated safe by the DRAM campaign).
    pub trefp: Milliseconds,
}

impl SafePointPolicy {
    /// The paper's deployment policy: 25 mV PMD margin, SoC at 920 mV,
    /// 35× relaxed refresh, 5 mV regulator grid.
    pub fn dsn18() -> Self {
        SafePointPolicy {
            pmd_margin_mv: 25,
            soc_undervolt_mv: 60,
            grid_mv: 5,
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }

    /// Derives the safe operating point for running `workloads` pinned to
    /// `cores` at nominal frequency on `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` and `cores` have different lengths or are
    /// empty.
    pub fn derive(
        &self,
        chip: &ChipProfile,
        workloads: &[WorkloadProfile],
        cores: &[CoreId],
    ) -> OperatingPoint {
        assert_eq!(workloads.len(), cores.len(), "one core per workload");
        assert!(!workloads.is_empty(), "at least one workload");
        let assignments: Vec<(CoreId, &WorkloadProfile, Megahertz)> = cores
            .iter()
            .zip(workloads)
            .map(|(c, w)| (*c, w, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip
            .rail_vmin(&assignments)
            .expect("non-empty assignments yield a rail Vmin");
        let pmd = snap_up(rail.as_u32() + self.pmd_margin_mv, self.grid_mv);
        let soc = Millivolts::XGENE2_NOMINAL.as_u32() - self.soc_undervolt_mv;
        OperatingPoint {
            pmd_voltage: Millivolts::new(pmd.min(Millivolts::XGENE2_NOMINAL.as_u32())),
            soc_voltage: Millivolts::new(soc),
            plan: FrequencyPlan::all_nominal(),
            trefp: self.trefp,
        }
    }
}

impl SafePointPolicy {
    /// Derives the safe operating point from a *measured* rail Vmin (as a
    /// fleet campaign produces) rather than from a chip model: margin
    /// added, snapped up to the regulator grid, capped at nominal. The
    /// refresh period is the board's validated-safe `trefp`, clamped so a
    /// board never relaxes beyond what this policy allows.
    pub fn derive_from_measured(
        &self,
        rail_vmin: Millivolts,
        trefp: Milliseconds,
    ) -> OperatingPoint {
        let pmd = snap_up(rail_vmin.as_u32() + self.pmd_margin_mv, self.grid_mv);
        let soc = Millivolts::XGENE2_NOMINAL.as_u32() - self.soc_undervolt_mv;
        OperatingPoint {
            pmd_voltage: Millivolts::new(pmd.min(Millivolts::XGENE2_NOMINAL.as_u32())),
            soc_voltage: Millivolts::new(soc),
            plan: FrequencyPlan::all_nominal(),
            trefp: Milliseconds::new(trefp.as_f64().min(self.trefp.as_f64())),
        }
    }
}

fn snap_up(mv: u32, grid: u32) -> u32 {
    if grid == 0 {
        return mv;
    }
    mv.div_ceil(grid) * grid
}

/// One board's characterized safe point — the unit record of a
/// [`SafePointStore`].
///
/// `board` identifies the unit; `attempt` counts re-characterizations
/// (a board evicted by the safety net comes back with `attempt + 1`).
/// Together they order competing records for the same board during
/// [`SafePointStore::insert`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardSafePoint {
    /// Fleet-wide board id.
    pub board: u32,
    /// Re-characterization attempt that produced this record (0 = first).
    pub attempt: u32,
    /// The chip's process corner.
    pub bin: SigmaBin,
    /// Measured per-core Vmin in mV, indexed by core; `None` where the
    /// search found no safe setup (core quarantined at every voltage).
    pub core_vmin_mv: Vec<Option<u32>>,
    /// Rail Vmin of the deployed workload set, if measured.
    pub rail_vmin_mv: Option<u32>,
    /// The derived deployment point; `None` when characterization failed.
    pub operating_point: Option<OperatingPoint>,
    /// Per-bank validated-safe refresh period, ms.
    pub bank_safe_trefp_ms: Vec<f64>,
    /// Fractional power saving vs nominal under the reference load.
    pub savings_fraction: f64,
    /// Absolute power saving vs nominal under the reference load, W.
    pub savings_watts: f64,
}

impl BoardSafePoint {
    /// PMD margin this record exploits: nominal minus deployed voltage.
    pub fn margin_mv(&self) -> Option<i64> {
        self.operating_point.as_ref().map(|p| {
            i64::from(Millivolts::XGENE2_NOMINAL.as_u32()) - i64::from(p.pmd_voltage.as_u32())
        })
    }

    /// Total order deciding which of two records for the same board
    /// survives a merge: the later attempt wins, ties broken by record
    /// content so the outcome never depends on arrival order.
    fn precedence_key(&self) -> (u32, String) {
        (self.attempt, serde::json::to_string(self))
    }
}

/// The fleet-wide safe-point database.
///
/// A join-semilattice: [`SafePointStore::insert`] keeps, per board, the
/// record with the highest precedence key `(attempt, canonical JSON)`,
/// which makes [`SafePointStore::merge`] associative, commutative and
/// idempotent — shards can be merged in any order, any number of times,
/// and the result is bit-identical (property-tested in `tests/fleet.rs`).
///
/// # Examples
///
/// ```
/// use guardband_core::safepoint::{BoardSafePoint, SafePointStore};
/// use xgene_sim::sigma::SigmaBin;
///
/// let record = BoardSafePoint {
///     board: 7,
///     attempt: 0,
///     bin: SigmaBin::Ttt,
///     core_vmin_mv: vec![Some(890); 8],
///     rail_vmin_mv: Some(905),
///     operating_point: None,
///     bank_safe_trefp_ms: vec![64.0; 8],
///     savings_fraction: 0.0,
///     savings_watts: 0.0,
/// };
/// let mut a = SafePointStore::new();
/// a.insert(record.clone());
/// let mut b = SafePointStore::new();
/// b.merge(&a);
/// b.merge(&a); // idempotent
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SafePointStore {
    boards: BTreeMap<u32, BoardSafePoint>,
}

impl SafePointStore {
    /// An empty store.
    pub fn new() -> Self {
        SafePointStore::default()
    }

    /// Inserts one record, keeping the highest-precedence record per
    /// board.
    pub fn insert(&mut self, record: BoardSafePoint) {
        match self.boards.entry(record.board) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(record);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                if record.precedence_key() > slot.get().precedence_key() {
                    slot.insert(record);
                }
            }
        }
    }

    /// Merges another shard into this one (see the type docs for the
    /// algebraic laws).
    pub fn merge(&mut self, other: &SafePointStore) {
        for record in other.boards.values() {
            self.insert(record.clone());
        }
    }

    /// Number of boards with a record.
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// The surviving record for a board.
    pub fn get(&self, board: u32) -> Option<&BoardSafePoint> {
        self.boards.get(&board)
    }

    /// All records in board order.
    pub fn records(&self) -> impl Iterator<Item = &BoardSafePoint> {
        self.boards.values()
    }

    /// Population statistics over the stored safe points. Deterministic:
    /// every aggregate is computed in board order from the sorted map,
    /// never in insertion order.
    pub fn stats(&self) -> FleetStats {
        let mut margins: Vec<i64> = self
            .records()
            .filter_map(BoardSafePoint::margin_mv)
            .collect();
        margins.sort_unstable();
        let corner_histogram = SigmaBin::ALL
            .iter()
            .map(|bin| (*bin, self.records().filter(|r| r.bin == *bin).count()))
            .collect();
        let characterized = margins.len();
        let total_savings_watts = self.records().map(|r| r.savings_watts).sum();
        let mean_savings_fraction = if characterized == 0 {
            0.0
        } else {
            self.records()
                .filter(|r| r.operating_point.is_some())
                .map(|r| r.savings_fraction)
                .sum::<f64>()
                / characterized as f64
        };
        FleetStats {
            boards: self.len(),
            characterized,
            corner_histogram,
            min_margin_mv: margins.first().copied(),
            median_margin_mv: sorted_quantile(&margins, 0.50),
            p95_margin_mv: sorted_quantile(&margins, 0.95),
            total_savings_watts,
            mean_savings_fraction,
        }
    }
}

/// Nearest-rank quantile of an already sorted slice.
fn sorted_quantile(sorted: &[i64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1] as f64)
}

/// Population statistics of a [`SafePointStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Boards with any record.
    pub boards: usize,
    /// Boards with a derived operating point.
    pub characterized: usize,
    /// Boards per process corner, in [`SigmaBin::ALL`] order.
    pub corner_histogram: Vec<(SigmaBin, usize)>,
    /// Smallest exploited PMD margin, mV.
    pub min_margin_mv: Option<i64>,
    /// Median exploited PMD margin, mV (nearest rank).
    pub median_margin_mv: Option<f64>,
    /// 95th-percentile exploited PMD margin, mV (nearest rank).
    pub p95_margin_mv: Option<f64>,
    /// Projected fleet-wide power saving, W.
    pub total_savings_watts: f64,
    /// Mean fractional saving across characterized boards.
    pub mean_savings_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::jammer;
    use xgene_sim::sigma::SigmaBin;
    use xgene_sim::topology::CoreId;

    #[test]
    fn jammer_deployment_yields_the_papers_930_920_point() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let policy = SafePointPolicy::dsn18();
        // 4 parallel jammer instances on 8 threads (2 per instance).
        let profile = jammer::profile();
        let workloads = vec![profile; 8];
        let cores: Vec<CoreId> = CoreId::all().collect();
        let point = policy.derive(&chip, &workloads, &cores);
        assert_eq!(point.pmd_voltage, Millivolts::new(930), "{point}");
        assert_eq!(point.soc_voltage, Millivolts::new(920));
        assert_eq!(point.trefp, Milliseconds::DSN18_RELAXED_TREFP);
    }

    #[test]
    fn safe_point_clears_the_rail_vmin() {
        let chip = ChipProfile::corner(SigmaBin::Tss);
        let policy = SafePointPolicy::dsn18();
        let profile = jammer::profile();
        let workloads = vec![profile; 8];
        let cores: Vec<CoreId> = CoreId::all().collect();
        let point = policy.derive(&chip, &workloads, &cores);
        let assignments: Vec<_> = cores
            .iter()
            .zip(&workloads)
            .map(|(c, w)| (*c, w, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip.rail_vmin(&assignments).unwrap();
        assert!(point.pmd_voltage.as_u32() >= rail.as_u32() + 20);
    }

    #[test]
    fn never_exceeds_nominal() {
        let chip = ChipProfile::corner(SigmaBin::Tss);
        let policy = SafePointPolicy {
            pmd_margin_mv: 200,
            ..SafePointPolicy::dsn18()
        };
        let workloads = vec![jammer::profile(); 2];
        let cores = vec![CoreId::new(0), CoreId::new(1)];
        let point = policy.derive(&chip, &workloads, &cores);
        assert!(point.pmd_voltage <= Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn snap_up_rounds_to_grid() {
        assert_eq!(snap_up(929, 5), 930);
        assert_eq!(snap_up(930, 5), 930);
        assert_eq!(snap_up(931, 5), 935);
        assert_eq!(snap_up(7, 0), 7);
    }

    #[test]
    #[should_panic(expected = "one core per workload")]
    fn rejects_mismatched_lengths() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let _ = SafePointPolicy::dsn18().derive(&chip, &[jammer::profile()], &[]);
    }

    #[test]
    fn derive_from_measured_matches_the_model_path() {
        // Feeding the model's own rail Vmin through the measured-data path
        // must land on the same deployment point.
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let policy = SafePointPolicy::dsn18();
        let workloads = vec![jammer::profile(); 8];
        let cores: Vec<CoreId> = CoreId::all().collect();
        let modeled = policy.derive(&chip, &workloads, &cores);
        let assignments: Vec<_> = cores
            .iter()
            .zip(&workloads)
            .map(|(c, w)| (*c, w, Megahertz::XGENE2_NOMINAL))
            .collect();
        let rail = chip.rail_vmin(&assignments).unwrap();
        let measured = policy.derive_from_measured(rail, policy.trefp);
        assert_eq!(modeled, measured);
        // A board whose DRAM only validated a shorter period keeps it…
        let conservative = policy.derive_from_measured(rail, Milliseconds::new(500.0));
        assert_eq!(conservative.trefp, Milliseconds::new(500.0));
        // …and one validated beyond the policy is clamped to the policy.
        let clamped = policy.derive_from_measured(rail, Milliseconds::new(9000.0));
        assert_eq!(clamped.trefp, policy.trefp);
    }

    fn record(board: u32, attempt: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    #[test]
    fn later_attempt_wins_regardless_of_arrival_order() {
        let first = record(3, 0, 905);
        let redo = record(3, 1, 930);
        let mut forward = SafePointStore::new();
        forward.insert(first.clone());
        forward.insert(redo.clone());
        let mut backward = SafePointStore::new();
        backward.insert(redo.clone());
        backward.insert(first);
        assert_eq!(forward, backward);
        assert_eq!(forward.get(3), Some(&redo));
        assert_eq!(forward.len(), 1);
    }

    #[test]
    fn merge_is_a_join() {
        let mut a = SafePointStore::new();
        a.insert(record(0, 0, 905));
        a.insert(record(1, 1, 910));
        let mut b = SafePointStore::new();
        b.insert(record(1, 0, 900));
        b.insert(record(2, 0, 920));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.get(1).unwrap().attempt, 1);
        let again = {
            let mut s = ab.clone();
            s.merge(&b);
            s
        };
        assert_eq!(again, ab, "merge must be idempotent");
    }

    #[test]
    fn stats_summarize_the_population() {
        let mut store = SafePointStore::new();
        store.insert(record(0, 0, 905)); // margin 50 (930 deployed)
        store.insert(record(1, 0, 925)); // margin 30 (950 deployed)
        let mut failed = record(2, 0, 905);
        failed.operating_point = None;
        failed.savings_fraction = 0.0;
        failed.savings_watts = 0.0;
        failed.bin = SigmaBin::Tss;
        store.insert(failed);
        let stats = store.stats();
        assert_eq!(stats.boards, 3);
        assert_eq!(stats.characterized, 2);
        assert_eq!(stats.min_margin_mv, Some(30));
        assert_eq!(stats.median_margin_mv, Some(30.0));
        assert_eq!(stats.p95_margin_mv, Some(50.0));
        assert_eq!(
            stats.corner_histogram,
            vec![(SigmaBin::Ttt, 2), (SigmaBin::Tff, 0), (SigmaBin::Tss, 1)]
        );
        assert!((stats.total_savings_watts - 12.0).abs() < 1e-12);
        assert!((stats.mean_savings_fraction - 0.2).abs() < 1e-12);
        // Stats of an empty store are all-absent, not a panic.
        let empty = SafePointStore::new().stats();
        assert_eq!(empty.min_margin_mv, None);
        assert_eq!(empty.median_margin_mv, None);
    }

    #[test]
    fn store_roundtrips_through_json() {
        let mut store = SafePointStore::new();
        store.insert(record(5, 0, 905));
        store.insert(record(9, 2, 915));
        let text = serde::json::to_string(&store);
        let back: SafePointStore = serde::json::from_str(&text).unwrap();
        assert_eq!(back, store);
        assert_eq!(serde::json::to_string(&back), text);
    }
}
