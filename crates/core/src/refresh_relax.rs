//! DRAM refresh-guardband exploitation.
//!
//! The DDR3 64 ms refresh period is a worst-case guardband; the paper runs
//! at 2.283 s (35×) and shows SECDED absorbs every manifested error up to
//! 60 °C. This module picks the largest *safe* relaxation for a given
//! temperature from the retention model — safe meaning the expected number
//! of failing cells stays within the per-word single-error budget the ECC
//! can always correct — and quantifies the power gain.

use dram_sim::geometry::BankId;
use dram_sim::retention::RetentionModel;
use power_model::domain::DramDomain;
use power_model::units::{Celsius, Milliseconds, Watts};
use serde::{Deserialize, Serialize};

/// Policy bounding how far refresh may be relaxed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaxationPolicy {
    /// Maximum tolerated expected failing cells across the array (all of
    /// them SECDED-correctable by construction of the repair model; the
    /// budget bounds the scrubbing/reporting load).
    pub max_expected_failing_cells: f64,
    /// Candidate relaxation factors to consider, ascending.
    pub candidate_factors: Vec<f64>,
}

impl RelaxationPolicy {
    /// The paper's envelope: factors up to 64×, tolerating the ≈28 k
    /// correctable weak cells observed at 60 °C.
    pub fn dsn18() -> Self {
        RelaxationPolicy {
            max_expected_failing_cells: 30_000.0,
            candidate_factors: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 35.67, 48.0, 64.0],
        }
    }
}

/// Outcome of the relaxation search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxationChoice {
    /// Chosen refresh period.
    pub trefp: Milliseconds,
    /// Relaxation factor vs. the 64 ms nominal.
    pub factor: f64,
    /// Expected failing (CE-correctable) cells at this point.
    pub expected_failing_cells: f64,
}

/// Finds the largest candidate relaxation whose expected failing-cell
/// count stays within the policy budget at `temperature`.
pub fn choose_relaxation(
    model: &RetentionModel,
    temperature: Celsius,
    policy: &RelaxationPolicy,
) -> RelaxationChoice {
    let mut best = RelaxationChoice {
        trefp: Milliseconds::DDR3_NOMINAL_TREFP,
        factor: 1.0,
        expected_failing_cells: expected_failing(
            model,
            temperature,
            Milliseconds::DDR3_NOMINAL_TREFP,
        ),
    };
    for &factor in &policy.candidate_factors {
        let trefp = Milliseconds::DDR3_NOMINAL_TREFP.relaxed(factor);
        let expected = expected_failing(model, temperature, trefp);
        if expected <= policy.max_expected_failing_cells && factor >= best.factor {
            best = RelaxationChoice {
                trefp,
                factor,
                expected_failing_cells: expected,
            };
        }
    }
    best
}

/// Expected failing cells across the whole array at `(temperature, trefp)`.
pub fn expected_failing(model: &RetentionModel, temperature: Celsius, trefp: Milliseconds) -> f64 {
    BankId::all()
        .map(|b| model.expected_failing(b, temperature, trefp))
        .sum()
}

/// DRAM-rail power saving of a relaxation for a workload at the given
/// bandwidth utilization (Fig. 8b / Fig. 9 DRAM domain).
pub fn power_saving(
    trefp: Milliseconds,
    bandwidth_utilization: f64,
    reference_power: Watts,
) -> f64 {
    DramDomain::xgene2(reference_power).refresh_relaxation_savings(trefp, bandwidth_utilization)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_60c_the_35x_relaxation_is_chosen() {
        let model = RetentionModel::xgene2_micron();
        let choice = choose_relaxation(&model, Celsius::new(60.0), &RelaxationPolicy::dsn18());
        assert!(
            (choice.factor - 35.67).abs() < 1e-9,
            "factor {}",
            choice.factor
        );
        assert!(choice.expected_failing_cells < 30_000.0);
        assert!(choice.expected_failing_cells > 20_000.0);
    }

    #[test]
    fn cooler_dimms_allow_deeper_relaxation() {
        let model = RetentionModel::xgene2_micron();
        let policy = RelaxationPolicy::dsn18();
        let hot = choose_relaxation(&model, Celsius::new(60.0), &policy);
        let cool = choose_relaxation(&model, Celsius::new(45.0), &policy);
        assert!(cool.factor >= hot.factor);
    }

    #[test]
    fn a_tight_budget_keeps_refresh_near_nominal() {
        let model = RetentionModel::xgene2_micron();
        let policy = RelaxationPolicy {
            max_expected_failing_cells: 0.5,
            candidate_factors: RelaxationPolicy::dsn18().candidate_factors,
        };
        let choice = choose_relaxation(&model, Celsius::new(60.0), &policy);
        assert!(choice.factor <= 4.0, "factor {}", choice.factor);
    }

    #[test]
    fn expected_failing_matches_table1_total_at_60c() {
        let model = RetentionModel::xgene2_micron();
        let total = expected_failing(
            &model,
            Celsius::new(60.0),
            Milliseconds::DSN18_RELAXED_TREFP,
        );
        let paper: f64 = dram_sim::retention::TABLE1_60C.iter().sum();
        assert!((total - paper).abs() / paper < 0.02, "{total} vs {paper}");
    }

    #[test]
    fn nw_and_kmeans_savings_match_fig8b() {
        let trefp = Milliseconds::DSN18_RELAXED_TREFP;
        let nw = power_saving(trefp, 0.175, Watts::new(9.0));
        let kmeans = power_saving(trefp, 0.896, Watts::new(9.0));
        assert!((nw - 0.273).abs() < 0.02, "nw {nw}");
        assert!((kmeans - 0.094).abs() < 0.02, "kmeans {kmeans}");
    }
}
