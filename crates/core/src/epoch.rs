//! Epoch-versioned safe points: the time axis of the fleet database.
//!
//! A [`SafePointStore`] answers "what is each board's safe point?" —
//! one snapshot. The lifetime subsystem needs the *history*: silicon
//! ages, DRAM retention drifts, and each re-characterization campaign
//! produces a fresh, slightly-less-aggressive safe point. A
//! [`VersionedSafePointStore`] keeps one store per **epoch** (the
//! simulated month the campaign ran), so the fleet can
//!
//! * deploy from the latest epoch while keeping every prior epoch as
//!   the warm-start prior for the next re-characterization;
//! * quantify margin decay per board across epochs — the headline
//!   "how much guardband does aging reclaim per year" curve;
//! * merge shards from concurrent workers with the same algebra the
//!   flat store has: the pointwise (per-epoch) merge of join-
//!   semilattices is itself a join-semilattice, so associativity,
//!   commutativity and idempotence carry over and N-worker runs stay
//!   byte-identical (property-tested in `tests/lifetime.rs`).

use crate::safepoint::{BoardSafePoint, SafePointStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The epoch-indexed safe-point database.
///
/// # Examples
///
/// ```
/// use guardband_core::epoch::VersionedSafePointStore;
/// use guardband_core::safepoint::BoardSafePoint;
/// use xgene_sim::sigma::SigmaBin;
///
/// let record = |attempt| BoardSafePoint {
///     board: 7,
///     attempt,
///     bin: SigmaBin::Ttt,
///     core_vmin_mv: vec![Some(890 + attempt); 8],
///     rail_vmin_mv: Some(905 + attempt),
///     operating_point: None,
///     bank_safe_trefp_ms: vec![64.0; 8],
///     savings_fraction: 0.0,
///     savings_watts: 0.0,
/// };
/// let mut store = VersionedSafePointStore::new();
/// store.insert(0, record(0));
/// store.insert(12, record(12)); // re-characterized at month 12
/// assert_eq!(store.latest_for(7).unwrap().0, 12);
/// assert_eq!(store.history(7).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VersionedSafePointStore {
    /// Epoch (simulated month of the campaign) → that campaign's store.
    epochs: BTreeMap<u32, SafePointStore>,
}

impl VersionedSafePointStore {
    /// An empty history.
    pub fn new() -> Self {
        VersionedSafePointStore::default()
    }

    /// Inserts one record under `epoch`, with the flat store's
    /// highest-precedence-wins semantics within the epoch.
    pub fn insert(&mut self, epoch: u32, record: BoardSafePoint) {
        self.epochs.entry(epoch).or_default().insert(record);
    }

    /// Pointwise merge: each of `other`'s epoch stores joins into the
    /// matching epoch here. Associative, commutative and idempotent —
    /// see the module docs.
    pub fn merge(&mut self, other: &VersionedSafePointStore) {
        for (epoch, store) in &other.epochs {
            self.epochs.entry(*epoch).or_default().merge(store);
        }
    }

    /// Number of epochs with any record.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the history holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The most recent epoch, if any.
    pub fn latest_epoch(&self) -> Option<u32> {
        self.epochs.keys().next_back().copied()
    }

    /// Epochs in ascending order with their stores.
    pub fn epochs(&self) -> impl Iterator<Item = (u32, &SafePointStore)> {
        self.epochs.iter().map(|(e, s)| (*e, s))
    }

    /// The store of one epoch.
    pub fn epoch(&self, epoch: u32) -> Option<&SafePointStore> {
        self.epochs.get(&epoch)
    }

    /// A board's most recent record: the highest epoch that knows the
    /// board, with that epoch.
    pub fn latest_for(&self, board: u32) -> Option<(u32, &BoardSafePoint)> {
        self.epochs
            .iter()
            .rev()
            .find_map(|(epoch, store)| store.get(board).map(|r| (*epoch, r)))
    }

    /// A board's full trajectory, in epoch order.
    pub fn history(&self, board: u32) -> Vec<(u32, &BoardSafePoint)> {
        self.epochs
            .iter()
            .filter_map(|(epoch, store)| store.get(board).map(|r| (*epoch, r)))
            .collect()
    }

    /// How much exploited PMD margin a board lost between its first and
    /// latest epochs, in mV: positive means the deployed voltage had to
    /// rise (aging reclaimed guardband), zero means the safe point held.
    /// `None` until the board has two epochs with derived points.
    pub fn margin_decay_mv(&self, board: u32) -> Option<i64> {
        let history = self.history(board);
        let first = history.iter().find_map(|(_, r)| r.margin_mv())?;
        let last = history.iter().rev().find_map(|(_, r)| r.margin_mv())?;
        if history.len() < 2 {
            return None;
        }
        Some(first - last)
    }

    /// The fleet's current deployment view: every board's record from
    /// the most recent epoch that characterized it, flattened into one
    /// store. Records carry `attempt = epoch` in the lifetime flow, so
    /// the flat store's precedence order and the epoch order agree.
    pub fn latest(&self) -> SafePointStore {
        let mut flat = SafePointStore::new();
        for store in self.epochs.values() {
            flat.merge(store);
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safepoint::SafePointPolicy;
    use power_model::units::Millivolts;
    use xgene_sim::sigma::SigmaBin;

    fn record(board: u32, epoch: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt: epoch,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    #[test]
    fn latest_for_walks_epochs_backwards() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(1, 0, 905));
        store.insert(0, record(2, 0, 910));
        store.insert(14, record(1, 14, 915));
        let (epoch, r) = store.latest_for(1).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (14, Some(915)));
        let (epoch, r) = store.latest_for(2).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (0, Some(910)));
        assert_eq!(store.latest_for(3), None);
        assert_eq!(store.latest_epoch(), Some(14));
        assert_eq!(store.epoch_count(), 2);
    }

    #[test]
    fn latest_for_on_an_empty_store_is_none() {
        let store = VersionedSafePointStore::new();
        assert_eq!(store.latest_for(0), None);
        assert_eq!(store.latest_epoch(), None);
        assert!(store.is_empty());
        assert!(store.history(0).is_empty());
    }

    #[test]
    fn latest_for_skips_missing_intermediate_epochs() {
        // Board 5 was characterized at months 0 and 6 but skipped by the
        // month-12 and month-18 maintenance rounds (other boards were
        // not): the stale board serves from its last good epoch.
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(5, 0, 905));
        store.insert(6, record(5, 6, 910));
        store.insert(12, record(9, 12, 920));
        store.insert(18, record(9, 18, 925));
        let (epoch, r) = store.latest_for(5).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (6, Some(910)));
        assert_eq!(store.latest_for(9).unwrap().0, 18);
        // The fallback is also what the flattened deployment view serves.
        assert_eq!(store.latest().get(5).unwrap().attempt, 6);
        // History shows exactly the epochs that knew the board, in order.
        let history: Vec<u32> = store.history(5).iter().map(|(e, _)| *e).collect();
        assert_eq!(history, vec![0, 6]);
    }

    #[test]
    fn a_single_epoch_store_serves_that_epoch_for_everyone() {
        let mut store = VersionedSafePointStore::new();
        store.insert(3, record(0, 3, 905));
        store.insert(3, record(1, 3, 910));
        for board in 0..2 {
            let (epoch, _) = store.latest_for(board).unwrap();
            assert_eq!(epoch, 3);
        }
        assert_eq!(store.latest_for(2), None, "unknown board stays unknown");
        assert_eq!(store.epoch_count(), 1);
        assert_eq!(
            store.margin_decay_mv(0),
            None,
            "a single epoch is never a decay trend"
        );
    }

    #[test]
    fn margin_decay_tracks_the_rising_rail() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(4, 0, 905)); // deploys 930 → margin 50
        assert_eq!(store.margin_decay_mv(4), None, "one epoch is no trend");
        store.insert(18, record(4, 18, 925)); // deploys 950 → margin 30
        assert_eq!(store.margin_decay_mv(4), Some(20));
    }

    #[test]
    fn pointwise_merge_keeps_the_semilattice_laws() {
        let mut a = VersionedSafePointStore::new();
        a.insert(0, record(0, 0, 905));
        a.insert(12, record(0, 12, 915));
        let mut b = VersionedSafePointStore::new();
        b.insert(0, record(1, 0, 900));
        b.insert(12, record(0, 12, 915));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        let mut again = ab.clone();
        again.merge(&b);
        assert_eq!(again, ab, "idempotent");
        assert_eq!(ab.epoch(0).unwrap().len(), 2);
    }

    #[test]
    fn latest_flattens_to_the_deployment_view() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(0, 0, 905));
        store.insert(0, record(1, 0, 910));
        store.insert(20, record(0, 20, 920));
        let flat = store.latest();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.get(0).unwrap().attempt, 20);
        assert_eq!(flat.get(1).unwrap().attempt, 0);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(3, 0, 905));
        store.insert(9, record(3, 9, 910));
        let text = serde::json::to_string(&store);
        let back: VersionedSafePointStore = serde::json::from_str(&text).unwrap();
        assert_eq!(back, store);
    }
}
