//! Epoch-versioned safe points: the time axis of the fleet database.
//!
//! A [`SafePointStore`] answers "what is each board's safe point?" —
//! one snapshot. The lifetime subsystem needs the *history*: silicon
//! ages, DRAM retention drifts, and each re-characterization campaign
//! produces a fresh, slightly-less-aggressive safe point. A
//! [`VersionedSafePointStore`] keeps one store per **epoch** (the
//! simulated month the campaign ran), so the fleet can
//!
//! * deploy from the latest epoch while keeping every prior epoch as
//!   the warm-start prior for the next re-characterization;
//! * quantify margin decay per board across epochs — the headline
//!   "how much guardband does aging reclaim per year" curve;
//! * merge shards from concurrent workers with the same algebra the
//!   flat store has: the pointwise (per-epoch) merge of join-
//!   semilattices is itself a join-semilattice, so associativity,
//!   commutativity and idempotence carry over and N-worker runs stay
//!   byte-identical (property-tested in `tests/lifetime.rs`).

use crate::safepoint::{BoardSafePoint, SafePointStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The epoch-indexed safe-point database.
///
/// # Examples
///
/// ```
/// use guardband_core::epoch::VersionedSafePointStore;
/// use guardband_core::safepoint::BoardSafePoint;
/// use xgene_sim::sigma::SigmaBin;
///
/// let record = |attempt| BoardSafePoint {
///     board: 7,
///     attempt,
///     bin: SigmaBin::Ttt,
///     core_vmin_mv: vec![Some(890 + attempt); 8],
///     rail_vmin_mv: Some(905 + attempt),
///     operating_point: None,
///     bank_safe_trefp_ms: vec![64.0; 8],
///     savings_fraction: 0.0,
///     savings_watts: 0.0,
/// };
/// let mut store = VersionedSafePointStore::new();
/// store.insert(0, record(0));
/// store.insert(12, record(12)); // re-characterized at month 12
/// assert_eq!(store.latest_for(7).unwrap().0, 12);
/// assert_eq!(store.history(7).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VersionedSafePointStore {
    /// Epoch (simulated month of the campaign) → that campaign's store.
    epochs: BTreeMap<u32, SafePointStore>,
}

impl VersionedSafePointStore {
    /// An empty history.
    pub fn new() -> Self {
        VersionedSafePointStore::default()
    }

    /// Inserts one record under `epoch`, with the flat store's
    /// highest-precedence-wins semantics within the epoch.
    pub fn insert(&mut self, epoch: u32, record: BoardSafePoint) {
        self.epochs.entry(epoch).or_default().insert(record);
    }

    /// Pointwise merge: each of `other`'s epoch stores joins into the
    /// matching epoch here. Associative, commutative and idempotent —
    /// see the module docs.
    pub fn merge(&mut self, other: &VersionedSafePointStore) {
        for (epoch, store) in &other.epochs {
            self.epochs.entry(*epoch).or_default().merge(store);
        }
    }

    /// Number of epochs with any record.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the history holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The most recent epoch, if any.
    pub fn latest_epoch(&self) -> Option<u32> {
        self.epochs.keys().next_back().copied()
    }

    /// Epochs in ascending order with their stores.
    pub fn epochs(&self) -> impl Iterator<Item = (u32, &SafePointStore)> {
        self.epochs.iter().map(|(e, s)| (*e, s))
    }

    /// The store of one epoch.
    pub fn epoch(&self, epoch: u32) -> Option<&SafePointStore> {
        self.epochs.get(&epoch)
    }

    /// A board's most recent record: the highest epoch that knows the
    /// board, with that epoch.
    ///
    /// This is the O(epochs) scanning path — correct for one-off
    /// queries, wrong for a serving hot loop. A lookup service should
    /// build a [`LatestIndex`] once per store version instead and answer
    /// every request from it (the control plane does exactly that); the
    /// two paths are equivalence-property-tested against each other.
    pub fn latest_for(&self, board: u32) -> Option<(u32, &BoardSafePoint)> {
        self.epochs
            .iter()
            .rev()
            .find_map(|(epoch, store)| store.get(board).map(|r| (*epoch, r)))
    }

    /// Builds the read-optimized [`LatestIndex`] of this store version:
    /// one pass over every epoch, O(log boards) lookups afterwards.
    pub fn latest_index(&self) -> LatestIndex {
        LatestIndex::build(self)
    }

    /// A board's full trajectory, in epoch order.
    pub fn history(&self, board: u32) -> Vec<(u32, &BoardSafePoint)> {
        self.epochs
            .iter()
            .filter_map(|(epoch, store)| store.get(board).map(|r| (*epoch, r)))
            .collect()
    }

    /// How much exploited PMD margin a board lost between its first and
    /// latest epochs, in mV: positive means the deployed voltage had to
    /// rise (aging reclaimed guardband), zero means the safe point held.
    /// `None` until the board has two epochs with derived points.
    ///
    /// Folds the board's history through the same [`MarginTrend`]
    /// accumulator [`LatestIndex::build`] uses, so the scanning and
    /// indexed answers can never drift apart.
    pub fn margin_decay_mv(&self, board: u32) -> Option<i64> {
        let mut trend = MarginTrend::default();
        for (_, record) in self.history(board) {
            trend.push(record);
        }
        trend.decay_mv()
    }

    /// The fleet's current deployment view: every board's record from
    /// the most recent epoch that characterized it, flattened into one
    /// store. Records carry `attempt = epoch` in the lifetime flow, so
    /// the flat store's precedence order and the epoch order agree.
    pub fn latest(&self) -> SafePointStore {
        let mut flat = SafePointStore::new();
        for store in self.epochs.values() {
            flat.merge(store);
        }
        flat
    }
}

/// The margin-trajectory accumulator shared by the scanning
/// [`VersionedSafePointStore::margin_decay_mv`] and the indexed
/// [`LatestIndex`]: push a board's records in epoch order, read the
/// decay off the end. Keeping one definition is what makes the
/// "index equals scan" property structural rather than coincidental.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarginTrend {
    epochs: usize,
    first_margin_mv: Option<i64>,
    last_margin_mv: Option<i64>,
}

impl MarginTrend {
    /// Folds one record (they must arrive in ascending epoch order).
    pub fn push(&mut self, record: &BoardSafePoint) {
        self.epochs += 1;
        if let Some(margin) = record.margin_mv() {
            if self.first_margin_mv.is_none() {
                self.first_margin_mv = Some(margin);
            }
            self.last_margin_mv = Some(margin);
        }
    }

    /// Epochs folded so far (with or without a derived margin).
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// First-minus-latest exploited margin, mV — positive means aging
    /// reclaimed guardband. `None` until two epochs exist and at least
    /// one record carries a derived margin.
    pub fn decay_mv(&self) -> Option<i64> {
        if self.epochs < 2 {
            return None;
        }
        Some(self.first_margin_mv? - self.last_margin_mv?)
    }
}

/// One board's entry in a [`LatestIndex`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The highest epoch that characterized the board.
    pub epoch: u32,
    /// That epoch's record — the one a lookup service deploys.
    pub point: BoardSafePoint,
    /// The board's margin trajectory across every known epoch.
    pub trend: MarginTrend,
}

/// The read-optimized projection of one [`VersionedSafePointStore`]
/// version: board → (latest epoch, latest record, margin trend), built
/// in one pass and immutable afterwards.
///
/// [`VersionedSafePointStore::latest_for`] walks the epoch map backwards
/// on every call — O(epochs) per lookup, which a control plane serving
/// millions of lookups cannot afford. This index pays that scan once per
/// published store version; lookups are then a single map probe. The
/// equivalence of the two paths is property-tested (`latest_for` and
/// `margin_decay_mv` against [`LatestIndex::latest_for`] and
/// [`LatestIndex::margin_decay_mv`] over arbitrary stores).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatestIndex {
    entries: BTreeMap<u32, IndexEntry>,
}

impl LatestIndex {
    /// Builds the index in one ascending pass over every epoch: later
    /// epochs overwrite the latest point, and every record feeds the
    /// margin trend.
    pub fn build(store: &VersionedSafePointStore) -> Self {
        let mut entries: BTreeMap<u32, IndexEntry> = BTreeMap::new();
        for (epoch, epoch_store) in store.epochs() {
            for record in epoch_store.records() {
                match entries.get_mut(&record.board) {
                    Some(entry) => {
                        entry.epoch = epoch;
                        entry.point = record.clone();
                        entry.trend.push(record);
                    }
                    None => {
                        let mut trend = MarginTrend::default();
                        trend.push(record);
                        entries.insert(
                            record.board,
                            IndexEntry {
                                epoch,
                                point: record.clone(),
                                trend,
                            },
                        );
                    }
                }
            }
        }
        LatestIndex { entries }
    }

    /// A board's latest record with its epoch — the indexed equivalent
    /// of [`VersionedSafePointStore::latest_for`].
    pub fn latest_for(&self, board: u32) -> Option<(u32, &BoardSafePoint)> {
        self.entries.get(&board).map(|e| (e.epoch, &e.point))
    }

    /// A board's full index entry, if known.
    pub fn entry(&self, board: u32) -> Option<&IndexEntry> {
        self.entries.get(&board)
    }

    /// The indexed equivalent of
    /// [`VersionedSafePointStore::margin_decay_mv`].
    pub fn margin_decay_mv(&self, board: u32) -> Option<i64> {
        self.entries.get(&board).and_then(|e| e.trend.decay_mv())
    }

    /// Boards known to the index, ascending.
    pub fn boards(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.keys().copied()
    }

    /// Number of boards with at least one record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index knows no board at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safepoint::SafePointPolicy;
    use power_model::units::Millivolts;
    use xgene_sim::sigma::SigmaBin;

    fn record(board: u32, epoch: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt: epoch,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    #[test]
    fn latest_for_walks_epochs_backwards() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(1, 0, 905));
        store.insert(0, record(2, 0, 910));
        store.insert(14, record(1, 14, 915));
        let (epoch, r) = store.latest_for(1).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (14, Some(915)));
        let (epoch, r) = store.latest_for(2).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (0, Some(910)));
        assert_eq!(store.latest_for(3), None);
        assert_eq!(store.latest_epoch(), Some(14));
        assert_eq!(store.epoch_count(), 2);
    }

    #[test]
    fn latest_for_on_an_empty_store_is_none() {
        let store = VersionedSafePointStore::new();
        assert_eq!(store.latest_for(0), None);
        assert_eq!(store.latest_epoch(), None);
        assert!(store.is_empty());
        assert!(store.history(0).is_empty());
    }

    #[test]
    fn latest_for_skips_missing_intermediate_epochs() {
        // Board 5 was characterized at months 0 and 6 but skipped by the
        // month-12 and month-18 maintenance rounds (other boards were
        // not): the stale board serves from its last good epoch.
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(5, 0, 905));
        store.insert(6, record(5, 6, 910));
        store.insert(12, record(9, 12, 920));
        store.insert(18, record(9, 18, 925));
        let (epoch, r) = store.latest_for(5).unwrap();
        assert_eq!((epoch, r.rail_vmin_mv), (6, Some(910)));
        assert_eq!(store.latest_for(9).unwrap().0, 18);
        // The fallback is also what the flattened deployment view serves.
        assert_eq!(store.latest().get(5).unwrap().attempt, 6);
        // History shows exactly the epochs that knew the board, in order.
        let history: Vec<u32> = store.history(5).iter().map(|(e, _)| *e).collect();
        assert_eq!(history, vec![0, 6]);
    }

    #[test]
    fn a_single_epoch_store_serves_that_epoch_for_everyone() {
        let mut store = VersionedSafePointStore::new();
        store.insert(3, record(0, 3, 905));
        store.insert(3, record(1, 3, 910));
        for board in 0..2 {
            let (epoch, _) = store.latest_for(board).unwrap();
            assert_eq!(epoch, 3);
        }
        assert_eq!(store.latest_for(2), None, "unknown board stays unknown");
        assert_eq!(store.epoch_count(), 1);
        assert_eq!(
            store.margin_decay_mv(0),
            None,
            "a single epoch is never a decay trend"
        );
    }

    #[test]
    fn margin_decay_tracks_the_rising_rail() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(4, 0, 905)); // deploys 930 → margin 50
        assert_eq!(store.margin_decay_mv(4), None, "one epoch is no trend");
        store.insert(18, record(4, 18, 925)); // deploys 950 → margin 30
        assert_eq!(store.margin_decay_mv(4), Some(20));
    }

    #[test]
    fn pointwise_merge_keeps_the_semilattice_laws() {
        let mut a = VersionedSafePointStore::new();
        a.insert(0, record(0, 0, 905));
        a.insert(12, record(0, 12, 915));
        let mut b = VersionedSafePointStore::new();
        b.insert(0, record(1, 0, 900));
        b.insert(12, record(0, 12, 915));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        let mut again = ab.clone();
        again.merge(&b);
        assert_eq!(again, ab, "idempotent");
        assert_eq!(ab.epoch(0).unwrap().len(), 2);
    }

    #[test]
    fn latest_flattens_to_the_deployment_view() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(0, 0, 905));
        store.insert(0, record(1, 0, 910));
        store.insert(20, record(0, 20, 920));
        let flat = store.latest();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.get(0).unwrap().attempt, 20);
        assert_eq!(flat.get(1).unwrap().attempt, 0);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(3, 0, 905));
        store.insert(9, record(3, 9, 910));
        let text = serde::json::to_string(&store);
        let back: VersionedSafePointStore = serde::json::from_str(&text).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn the_index_answers_exactly_what_the_scan_answers() {
        let mut store = VersionedSafePointStore::new();
        store.insert(0, record(5, 0, 905));
        store.insert(6, record(5, 6, 910));
        store.insert(12, record(9, 12, 920));
        let index = store.latest_index();
        assert_eq!(index.len(), 2);
        for board in [5, 9, 77] {
            assert_eq!(index.latest_for(board), store.latest_for(board));
            assert_eq!(index.margin_decay_mv(board), store.margin_decay_mv(board));
        }
        assert_eq!(index.entry(5).unwrap().trend.epochs(), 2);
        assert_eq!(index.boards().collect::<Vec<_>>(), vec![5, 9]);
    }

    #[test]
    fn an_empty_store_builds_an_empty_index() {
        let index = VersionedSafePointStore::new().latest_index();
        assert!(index.is_empty());
        assert_eq!(index.latest_for(0), None);
        assert_eq!(index.margin_decay_mv(0), None);
    }

    #[test]
    fn margin_trend_needs_two_epochs_and_a_derived_margin() {
        let mut trend = MarginTrend::default();
        assert_eq!(trend.decay_mv(), None);
        trend.push(&record(0, 0, 905));
        assert_eq!(trend.decay_mv(), None, "one epoch is no trend");
        trend.push(&record(0, 12, 925));
        // 905 deploys 930, 925 deploys 950: 20 mV of guardband reclaimed.
        assert_eq!(trend.decay_mv(), Some(20));

        // Records with no derived operating point count as epochs but
        // contribute no margin.
        let mut bare = record(1, 0, 905);
        bare.operating_point = None;
        let mut trend = MarginTrend::default();
        trend.push(&bare);
        trend.push(&bare);
        assert_eq!(trend.epochs(), 2);
        assert_eq!(trend.decay_mv(), None);
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// A record that may or may not have a derived operating point.
        fn arb_record() -> impl Strategy<Value = (u32, u32, bool)> {
            (0u32..12, 0u32..8, proptest::prelude::any::<bool>())
        }

        proptest! {
            /// For arbitrary stores, the one-pass index and the
            /// O(epochs) scan agree on every board — latest record,
            /// latest epoch and margin decay alike.
            #[test]
            fn index_equals_scan(records in proptest::collection::vec(arb_record(), 0..40)) {
                let mut store = VersionedSafePointStore::new();
                for (board, epoch, derived) in records {
                    let mut r = record(board, epoch, 900 + 5 * epoch);
                    if !derived {
                        r.operating_point = None;
                    }
                    store.insert(epoch, r);
                }
                let index = store.latest_index();
                for board in 0..13 {
                    prop_assert_eq!(index.latest_for(board), store.latest_for(board));
                    prop_assert_eq!(index.margin_decay_mv(board), store.margin_decay_mv(board));
                }
                prop_assert_eq!(index.len(), store.latest().len());
            }
        }
    }
}
