//! Multi-programmed energy exploitation — the Fig. 5 analysis.
//!
//! For the 8-benchmark SPEC mix the paper derives a ladder of safe rail
//! voltages as the weakest PMDs are slowed to 1.2 GHz, then converts it
//! into the power/performance curve. This module derives that ladder from
//! the chip model with predictor-assisted scheduling (heaviest benchmarks
//! onto the slowed PMDs — "the predictor … can also assist task
//! scheduling"), and evaluates the resulting energy savings through the
//! dynamic-power model.

use power_model::scaling::DynamicScaling;
use power_model::tradeoff::{FrequencyPlan, TradeoffCurve, TradeoffPoint};
use power_model::units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};
use xgene_sim::sigma::ChipProfile;
use xgene_sim::topology::{CoreId, CORE_COUNT};
use xgene_sim::workload::WorkloadProfile;

/// One rung of the derived ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// PMDs running at 1.2 GHz (the weakest ones, PMD0 upward).
    pub slow_pmds: usize,
    /// Safe rail voltage for the mix under this plan.
    pub rail_voltage: Millivolts,
    /// Which benchmark (by index into the mix) runs on each core.
    pub assignment: [usize; CORE_COUNT],
}

/// Derives the safe rail voltage ladder for a mix of 8 benchmarks.
///
/// Scheduling policy: benchmarks are sorted by droop score; the heaviest
/// go to the slowed PMDs (their Vmin drops with frequency), and the rail
/// must cover the *worst-case* placement among the remaining full-speed
/// cores (the OS may migrate tasks within the full-speed set). Voltages
/// snap up to the 5 mV regulator grid.
///
/// # Panics
///
/// Panics if the mix does not contain exactly 8 workloads.
pub fn derive_ladder(chip: &ChipProfile, mix: &[WorkloadProfile]) -> Vec<LadderRung> {
    assert_eq!(
        mix.len(),
        CORE_COUNT,
        "the Fig. 5 mix runs one benchmark per core"
    );
    // Benchmarks sorted by droop score, heaviest first.
    let mut order: Vec<usize> = (0..mix.len()).collect();
    order.sort_by(|&a, &b| mix[b].droop_score().total_cmp(&mix[a].droop_score()));

    let mut ladder = Vec::new();
    for slow_pmds in 0..=4usize {
        let slow_cores = slow_pmds * 2;
        // Heaviest `slow_cores` benchmarks on the slowed cores (0..).
        let mut assignment = [0usize; CORE_COUNT];
        for (i, &bench) in order.iter().enumerate() {
            assignment[i] = bench; // core i gets the i-th heaviest
        }
        let mut rail = 0u32;
        for core_idx in 0..CORE_COUNT {
            let core = CoreId::new(core_idx as u8);
            let freq = if core_idx < slow_cores {
                Megahertz::XGENE2_HALF
            } else {
                Megahertz::XGENE2_NOMINAL
            };
            if core_idx < slow_cores {
                let w = &mix[assignment[core_idx]];
                let v = chip.vmin_with_active_cores(core, w, freq, CORE_COUNT);
                rail = rail.max(v.as_u32());
            } else {
                // Worst-case placement: any of the remaining benchmarks may
                // land on any full-speed core.
                for &bench in &order[slow_cores..] {
                    let v = chip.vmin_with_active_cores(core, &mix[bench], freq, CORE_COUNT);
                    rail = rail.max(v.as_u32());
                }
            }
        }
        let rail_voltage = Millivolts::new(rail.div_ceil(5) * 5);
        ladder.push(LadderRung {
            slow_pmds,
            rail_voltage,
            assignment,
        });
    }
    ladder
}

/// Converts a derived ladder into trade-off points through the dynamic
/// power model (relative performance and power vs. the nominal point).
pub fn ladder_tradeoff(ladder: &[LadderRung]) -> Vec<TradeoffPoint> {
    let scaling = DynamicScaling::xgene2();
    let mut steps = Vec::with_capacity(ladder.len() + 1);
    steps.push((FrequencyPlan::all_nominal(), Millivolts::XGENE2_NOMINAL));
    for rung in ladder {
        steps.push((
            FrequencyPlan::with_slow_pmds(rung.slow_pmds),
            rung.rail_voltage,
        ));
    }
    TradeoffCurve::new(scaling, steps).points()
}

/// The published Fig. 5 curve (measured ladder), for comparison against
/// the model-derived one.
pub fn published_fig5() -> TradeoffCurve {
    TradeoffCurve::xgene2_fig5()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::spec::fig5_mix;
    use xgene_sim::sigma::SigmaBin;

    fn mix() -> Vec<WorkloadProfile> {
        fig5_mix().iter().map(|b| b.profile()).collect()
    }

    #[test]
    fn ladder_tracks_published_fig5_within_10mv() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let ladder = derive_ladder(&chip, &mix());
        let paper = [915u32, 900, 885, 875, 850];
        assert_eq!(ladder.len(), paper.len());
        for (rung, expect) in ladder.iter().zip(paper) {
            let got = rung.rail_voltage.as_u32();
            assert!(
                (i64::from(got) - i64::from(expect)).abs() <= 10,
                "{} slow PMDs: model {got} mV vs paper {expect} mV",
                rung.slow_pmds
            );
        }
    }

    #[test]
    fn ladder_voltage_decreases_with_slowed_pmds() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let ladder = derive_ladder(&chip, &mix());
        for w in ladder.windows(2) {
            assert!(w[1].rail_voltage <= w[0].rail_voltage);
        }
    }

    #[test]
    fn tradeoff_reproduces_headline_savings_shape() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let points = ladder_tradeoff(&derive_ladder(&chip, &mix()));
        // Point 1 = no performance loss: savings close to the paper's 12.8%.
        let free = points[1].power_savings();
        assert!((free - 0.128).abs() < 0.03, "free savings {free}");
        // Point 3 = 25% performance loss: close to the paper's 38.8%.
        let quarter = points[3].power_savings();
        assert!((quarter - 0.388).abs() < 0.03, "quarter savings {quarter}");
        assert!((points[3].performance_loss() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn heaviest_benchmarks_scheduled_onto_weakest_cores() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let m = mix();
        let ladder = derive_ladder(&chip, &m);
        let rung = &ladder[2]; // 2 slow PMDs
                               // Core 0 hosts the heaviest benchmark of the mix.
        let heaviest = rung.assignment[0];
        for (i, w) in m.iter().enumerate() {
            assert!(
                w.droop_score() <= m[heaviest].droop_score() + 1e-12,
                "bench {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one benchmark per core")]
    fn rejects_wrong_mix_size() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let _ = derive_ladder(&chip, &mix()[..4]);
    }
}
