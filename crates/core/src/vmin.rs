//! High-level Vmin characterization flows built on the framework.
//!
//! Ties the characterization framework to the methodology: characterize a
//! suite across chips and cores (the Fig. 4 study), compare a virus's Vmin
//! against a suite (Fig. 6), and expose inter-chip variation (Fig. 7).

use char_fw::runner::CampaignRunner;
use char_fw::setup::VminCampaign;
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::SigmaBin;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

use crate::guardband::{Guardband, GuardbandSummary};

/// Per-benchmark Vmin of one chip's most robust core — one Fig. 4 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipVminSeries {
    /// Chip corner.
    pub chip: SigmaBin,
    /// Core the series was measured on.
    pub core: CoreId,
    /// `(benchmark, vmin)` pairs in campaign order.
    pub vmins: Vec<(String, Millivolts)>,
}

impl ChipVminSeries {
    /// Converts the series into guardband records against nominal.
    pub fn guardbands(&self) -> GuardbandSummary {
        GuardbandSummary {
            chip: self.chip,
            entries: self
                .vmins
                .iter()
                .map(|(name, v)| {
                    Guardband::new(name.clone(), self.chip, *v, Millivolts::XGENE2_NOMINAL)
                })
                .collect(),
        }
    }

    /// Range `(min, max)` of the series.
    pub fn range(&self) -> Option<(Millivolts, Millivolts)> {
        let min = self.vmins.iter().map(|(_, v)| *v).min()?;
        let max = self.vmins.iter().map(|(_, v)| *v).max()?;
        Some((min, max))
    }
}

/// Runs the undervolting campaign for `suite` on `chip`'s most robust
/// core, deterministic in `seed` (the Fig. 4 measurement for one chip).
pub fn characterize_chip(chip: SigmaBin, suite: &[WorkloadProfile], seed: u64) -> ChipVminSeries {
    let mut server = XGene2Server::new(chip, seed);
    let core = server.chip().most_robust_core();
    let campaign = VminCampaign::dsn18(suite.to_vec(), vec![core]);
    let result = CampaignRunner::new(&mut server).run(&campaign);
    let vmins = suite
        .iter()
        .map(|w| {
            let v = result
                .vmin(w.name(), core)
                .expect("campaign schedules reach below every real workload's Vmin");
            (w.name().to_owned(), v)
        })
        .collect();
    ChipVminSeries { chip, core, vmins }
}

/// The Fig. 6/7 measurement: the virus's Vmin on each corner, with the
/// margin to nominal. Returns `(chip, virus vmin, margin_mv)`.
pub fn virus_margins(virus: &WorkloadProfile, seed: u64) -> Vec<(SigmaBin, Millivolts, i64)> {
    SigmaBin::ALL
        .iter()
        .map(|&bin| {
            let series = characterize_chip(bin, std::slice::from_ref(virus), seed);
            let (_, vmin) = series.vmins[0].clone();
            let margin = i64::from(Millivolts::XGENE2_NOMINAL.as_u32()) - i64::from(vmin.as_u32());
            (bin, vmin, margin)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::spec::SPEC_SUITE;

    fn suite() -> Vec<WorkloadProfile> {
        // A 3-benchmark subset keeps the campaign fast while spanning the
        // score range.
        ["mcf", "leslie3d", "milc"]
            .iter()
            .map(|n| SPEC_SUITE.iter().find(|b| b.name == *n).unwrap().profile())
            .collect()
    }

    #[test]
    fn fig4_series_lands_in_published_ranges() {
        let expected = [
            (SigmaBin::Ttt, 855u32, 895u32),
            (SigmaBin::Tff, 865, 895),
            (SigmaBin::Tss, 865, 910),
        ];
        for (bin, lo, hi) in expected {
            let series = characterize_chip(bin, &suite(), 77);
            let (min, max) = series.range().unwrap();
            assert!(min.as_u32() >= lo, "{bin}: min {min}");
            assert!(max.as_u32() <= hi, "{bin}: max {max}");
        }
    }

    #[test]
    fn guardband_summary_reports_workload_variation() {
        let series = characterize_chip(SigmaBin::Ttt, &suite(), 78);
        let summary = series.guardbands();
        assert!(summary.workload_variation_mv() >= 15);
        assert!(summary.guaranteed().unwrap().power_fraction() > 0.15);
    }

    #[test]
    fn virus_margins_reproduce_fig7() {
        let virus = WorkloadProfile::builder("em-virus")
            .activity(0.5)
            .swing(1.0)
            .resonance_alignment(1.0)
            .build();
        let margins = virus_margins(&virus, 79);
        let get = |bin| margins.iter().find(|(b, _, _)| *b == bin).unwrap().2;
        assert!(
            (get(SigmaBin::Ttt) - 60).abs() <= 10,
            "TTT {}",
            get(SigmaBin::Ttt)
        );
        assert!(
            (get(SigmaBin::Tff) - 20).abs() <= 10,
            "TFF {}",
            get(SigmaBin::Tff)
        );
        assert!(get(SigmaBin::Tss) <= 15, "TSS {}", get(SigmaBin::Tss));
    }
}
