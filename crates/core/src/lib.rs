//! The DSN'18 guardband methodology as a reusable library.
//!
//! This crate is the paper's primary contribution: the end-to-end flow
//! from characterization to exploitation of the voltage and refresh
//! guardbands of a server platform. It composes the substrates in the
//! sibling crates (the X-Gene2 model, the DRAM array, the thermal testbed,
//! the stress generators and the characterization framework) into the
//! study's analyses:
//!
//! * [`vmin`] — suite characterization across chips and cores (Fig. 4),
//!   virus comparisons and inter-chip margins (Figs. 6, 7);
//! * [`guardband`] — voltage- and power-equivalent margin accounting
//!   (the "18.4 % / 15.7 %" numbers);
//! * [`energy`] — the multi-programmed power/performance ladder (Fig. 5)
//!   with predictor-assisted scheduling;
//! * [`safepoint`] — deriving deployable safe operating points (§IV.D,
//!   the 930 mV / 920 mV / 35× point);
//! * [`epoch`] — the time axis of the safe-point database: one store
//!   per re-characterization epoch, margin-decay queries, and the same
//!   mergeable-shard algebra the flat store has;
//! * [`refresh_relax`] — choosing and valuing DRAM refresh relaxations
//!   (Fig. 8b);
//! * [`predictor`] — the performance-counter Vmin predictor (MICRO'17
//!   style, §IV.D);
//! * [`droop_history`] — the droop-history failure-probability predictor
//!   sketched as future work in §IV.D;
//! * [`governor`] — the online voltage-adoption governor §IV.D aims for,
//!   combining feed-forward prediction, the droop floor and reactive
//!   error feedback;
//! * [`safety`] — the production safety net: deadline watchdog,
//!   redundant-execution SDC sentinels and a CE-rate circuit breaker
//!   that make below-guardband operation self-protecting without oracle
//!   outcome labels.
//!
//! # Examples
//!
//! Derive the deployable safe point for the jammer detector on a typical
//! chip and quantify the total server saving:
//!
//! ```
//! use guardband_core::safepoint::SafePointPolicy;
//! use power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};
//! use workload_sim::jammer;
//! use xgene_sim::sigma::{ChipProfile, SigmaBin};
//! use xgene_sim::topology::CoreId;
//!
//! let chip = ChipProfile::corner(SigmaBin::Ttt);
//! let cores: Vec<CoreId> = CoreId::all().collect();
//! let workloads = vec![jammer::profile(); 8];
//! let point = SafePointPolicy::dsn18().derive(&chip, &workloads, &cores);
//!
//! let server = ServerPowerModel::xgene2();
//! let load = ServerLoad::jammer_detector();
//! let savings = server.total_savings(&point, &load);
//! assert!((savings - 0.202).abs() < 0.015);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod droop_history;
pub mod energy;
pub mod epoch;
pub mod governor;
pub mod guardband;
pub mod predictor;
pub mod refresh_relax;
pub mod safepoint;
pub mod safety;
pub mod vmin;

pub use droop_history::{DroopHistory, FailurePredictor};
pub use energy::{derive_ladder, ladder_tradeoff, LadderRung};
pub use epoch::VersionedSafePointStore;
pub use governor::{GovernorConfig, GovernorStats, OnlineGovernor};
pub use guardband::{Guardband, GuardbandSummary};
pub use predictor::VminPredictor;
pub use refresh_relax::{choose_relaxation, RelaxationChoice, RelaxationPolicy};
pub use safepoint::{BoardSafePoint, FleetStats, SafePointPolicy, SafePointStore};
pub use safety::{Observation, SafetyNet, SafetyNetConfig};
pub use vmin::{characterize_chip, virus_margins, ChipVminSeries};
