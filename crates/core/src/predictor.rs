//! Workload-dependent Vmin prediction from performance-counter features.
//!
//! §IV.D: "we can train a workload dependent prediction model considering
//! also performance counters as we recently proposed in \[11\]" (MICRO'17).
//! The model here is ordinary least squares over per-workload features the
//! platform can observe online — IPC, memory intensity and the activity /
//! swing statistics the counters proxy — trained on characterization
//! campaign results, then used to suggest a safe voltage for an unseen
//! workload without rerunning the undervolting campaign.

use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use xgene_sim::workload::WorkloadProfile;

/// Number of model features (including the intercept).
const FEATURES: usize = 5;

fn features(w: &WorkloadProfile) -> [f64; FEATURES] {
    [1.0, w.activity(), w.swing(), w.memory_intensity(), w.ipc()]
}

/// A trained linear Vmin model.
///
/// # Examples
///
/// ```
/// use guardband_core::predictor::VminPredictor;
/// use power_model::units::Millivolts;
/// use workload_sim::spec::SPEC_SUITE;
/// use xgene_sim::sigma::{ChipProfile, SigmaBin};
/// use power_model::units::Megahertz;
///
/// let chip = ChipProfile::corner(SigmaBin::Ttt);
/// let core = chip.most_robust_core();
/// let data: Vec<_> = SPEC_SUITE.iter().map(|b| {
///     let p = b.profile();
///     let v = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
///     (p, v)
/// }).collect();
/// let model = VminPredictor::train(&data).expect("training data is well-posed");
/// let err = model.training_rmse_mv(&data);
/// assert!(err < 3.0, "rmse {err}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminPredictor {
    coefficients: [f64; FEATURES],
}

/// Error returned when the training system is singular or under-determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainError;

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("training system is singular or has too few samples")
    }
}

impl std::error::Error for TrainError {}

impl VminPredictor {
    /// Trains by ordinary least squares on `(profile, measured Vmin)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] with fewer samples than features or a
    /// singular normal system.
    pub fn train(data: &[(WorkloadProfile, Millivolts)]) -> Result<Self, TrainError> {
        if data.len() < FEATURES {
            return Err(TrainError);
        }
        // Normal equations XᵀX β = Xᵀy with a tiny ridge for stability.
        let mut xtx = [[0.0f64; FEATURES]; FEATURES];
        let mut xty = [0.0f64; FEATURES];
        for (w, v) in data {
            let x = features(w);
            let y = f64::from(v.as_u32());
            for i in 0..FEATURES {
                xty[i] += x[i] * y;
                for j in 0..FEATURES {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let coefficients = solve(xtx, xty).ok_or(TrainError)?;
        Ok(VminPredictor { coefficients })
    }

    /// Predicted Vmin for a workload.
    pub fn predict(&self, workload: &WorkloadProfile) -> Millivolts {
        let x = features(workload);
        let v: f64 = x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum();
        Millivolts::new(v.round().clamp(0.0, 2000.0) as u32)
    }

    /// Predicted safe voltage: prediction plus a margin, snapped up to the
    /// regulator grid.
    pub fn suggest_safe_voltage(&self, workload: &WorkloadProfile, margin_mv: u32) -> Millivolts {
        let v = self.predict(workload).as_u32() + margin_mv;
        Millivolts::new(v.div_ceil(5) * 5)
    }

    /// Root-mean-square training error in mV.
    pub fn training_rmse_mv(&self, data: &[(WorkloadProfile, Millivolts)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sq: f64 = data
            .iter()
            .map(|(w, v)| {
                let e = f64::from(self.predict(w).as_u32()) - f64::from(v.as_u32());
                e * e
            })
            .sum();
        (sq / data.len() as f64).sqrt()
    }

    /// The fitted coefficients `[intercept, activity, swing, mem, ipc]`.
    pub fn coefficients(&self) -> &[f64; FEATURES] {
        &self.coefficients
    }
}

/// Solves a dense FEATURES×FEATURES system by Gaussian elimination with
/// partial pivoting.
fn solve(mut a: [[f64; FEATURES]; FEATURES], mut b: [f64; FEATURES]) -> Option<[f64; FEATURES]> {
    for col in 0..FEATURES {
        // Pivot.
        let pivot = (col..FEATURES).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..FEATURES {
            let f = a[row][col] / a[col][col];
            // Two rows of `a` are live at once, so stay on indices.
            #[allow(clippy::needless_range_loop)]
            for k in col..FEATURES {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; FEATURES];
    for col in (0..FEATURES).rev() {
        let mut sum = b[col];
        for k in col + 1..FEATURES {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use workload_sim::nas::NAS_SUITE;
    use workload_sim::spec::SPEC_SUITE;
    use xgene_sim::sigma::{ChipProfile, SigmaBin};

    fn training_data(bin: SigmaBin) -> Vec<(WorkloadProfile, Millivolts)> {
        let chip = ChipProfile::corner(bin);
        let core = chip.most_robust_core();
        SPEC_SUITE
            .iter()
            .map(|b| {
                let p = b.profile();
                let v = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
                (p, v)
            })
            .collect()
    }

    #[test]
    fn fits_spec_training_set_tightly() {
        for bin in [SigmaBin::Ttt, SigmaBin::Tff, SigmaBin::Tss] {
            let data = training_data(bin);
            let model = VminPredictor::train(&data).unwrap();
            assert!(model.training_rmse_mv(&data) < 2.0, "{bin:?}");
        }
    }

    #[test]
    fn generalizes_to_nas_kernels() {
        let data = training_data(SigmaBin::Ttt);
        let model = VminPredictor::train(&data).unwrap();
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let core = chip.most_robust_core();
        for kernel in &NAS_SUITE {
            let p = kernel.profile();
            let truth = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            let pred = model.predict(&p);
            let err = (i64::from(pred.as_u32()) - i64::from(truth.as_u32())).abs();
            assert!(err <= 5, "{}: predicted {pred}, true {truth}", kernel.name);
        }
    }

    #[test]
    fn suggested_voltage_is_safe_and_gridded() {
        let data = training_data(SigmaBin::Ttt);
        let model = VminPredictor::train(&data).unwrap();
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let core = chip.most_robust_core();
        for b in &SPEC_SUITE {
            let p = b.profile();
            let suggested = model.suggest_safe_voltage(&p, 10);
            let truth = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            assert!(suggested >= truth, "{}", b.name);
            assert_eq!(suggested.as_u32() % 5, 0);
        }
    }

    #[test]
    fn too_few_samples_fail_training() {
        let data = training_data(SigmaBin::Ttt);
        assert_eq!(VminPredictor::train(&data[..3]).unwrap_err(), TrainError);
    }

    #[test]
    fn activity_coefficient_dominates() {
        // The chip model builds Vmin mainly from activity; the regression
        // should recover a large positive activity weight.
        let data = training_data(SigmaBin::Ttt);
        let model = VminPredictor::train(&data).unwrap();
        assert!(model.coefficients()[1] > 10.0, "{:?}", model.coefficients());
    }
}
