//! An online voltage governor — the paper's stated future aim made
//! concrete.
//!
//! §IV.D: "The characterization results could finally be used to develop a
//! module for predicting the hardware behavior and suggesting optimistic
//! 'safe' operating points to the Linux governor … Solid prediction will
//! help establishing a robust and efficient online voltage adoption
//! mechanism."
//!
//! The governor combines the three signals the paper names: the
//! counter-driven [`VminPredictor`] (feed-forward per workload phase), the
//! droop-history failure predictor (a probabilistic floor), and reactive
//! feedback from hardware error reports (CE ⇒ back off; disruption ⇒
//! retreat hard and hold).

use crate::droop_history::FailurePredictor;
use crate::predictor::VminPredictor;
use char_fw::safety::{TenantAttribution, TripReason};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use telemetry::Level;
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// Governor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Base margin added above the predicted Vmin, in mV.
    pub base_margin_mv: u32,
    /// Extra margin added per recent correctable error, in mV.
    pub ce_backoff_mv: u32,
    /// Margin added permanently after a disruption (SDC/UE/crash), in mV.
    pub disruption_backoff_mv: u32,
    /// Clean epochs before one step of margin relaxation.
    pub clean_streak_to_relax: u32,
    /// Margin step removed per relaxation, in mV.
    pub relax_step_mv: u32,
    /// The dynamic margin never drops below this, in mV.
    pub min_margin_mv: u32,
    /// Per-epoch failure-probability target for the droop floor.
    pub target_failure_probability: f64,
    /// Consecutive disruptions that trigger graceful degradation: the
    /// governor rolls back to nominal instead of oscillating around a
    /// voltage the chip keeps rejecting.
    pub degrade_after_disruptions: u32,
    /// Epochs spent at nominal before scaled operation resumes.
    pub degrade_hold_epochs: u32,
}

impl GovernorConfig {
    /// Conservative defaults: 15 mV base margin, strong backoff, slow
    /// relaxation, 10⁻⁵ droop-crossing target.
    pub fn conservative() -> Self {
        GovernorConfig {
            base_margin_mv: 15,
            ce_backoff_mv: 10,
            disruption_backoff_mv: 40,
            clean_streak_to_relax: 20,
            relax_step_mv: 5,
            min_margin_mv: 10,
            target_failure_probability: 1e-5,
            degrade_after_disruptions: 3,
            degrade_hold_epochs: 50,
        }
    }
}

/// Aggregate governor telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Epochs executed.
    pub epochs: u64,
    /// Correctable-error backoffs taken.
    pub ce_backoffs: u64,
    /// Disruptions (SDC/UE/crash) suffered.
    pub disruptions: u64,
    /// Sum of commanded voltages (for the mean).
    pub voltage_sum_mv: u64,
    /// Sum of `(V/Vnom)²` (dynamic-power proxy).
    pub power_proxy_sum: f64,
    /// Graceful degradations: rollbacks to nominal after consecutive
    /// disruptions.
    pub degradations: u64,
    /// Circuit-breaker trips recorded against this governor by the safety
    /// net. Defaults keep pre-safety-net serialized stats decodable.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Reason of the most recent recorded breaker trip.
    #[serde(default)]
    pub last_trip_reason: Option<TripReason>,
    /// Tenant the most recent trip was attributed to (board fault vs
    /// cross-tenant droop attack).
    #[serde(default)]
    pub last_trip_attribution: Option<TenantAttribution>,
    /// Attacker quarantines the safety net recorded against this
    /// governor's tenure (evictions that spared the board a trip).
    #[serde(default)]
    pub attacker_quarantines: u64,
}

impl GovernorStats {
    /// Mean commanded voltage in mV.
    pub fn mean_voltage_mv(&self) -> f64 {
        if self.epochs == 0 {
            return 0.0;
        }
        self.voltage_sum_mv as f64 / self.epochs as f64
    }

    /// Mean dynamic-power ratio vs nominal — `1 − this` is the savings
    /// proxy the governor achieved.
    pub fn mean_power_ratio(&self) -> f64 {
        if self.epochs == 0 {
            return 1.0;
        }
        self.power_proxy_sum / self.epochs as f64
    }
}

/// The online governor.
#[derive(Debug, Clone)]
pub struct OnlineGovernor {
    predictor: Option<VminPredictor>,
    droop_floor: Option<FailurePredictor>,
    config: GovernorConfig,
    /// Current adaptive margin above the prediction, in mV.
    dynamic_margin_mv: u32,
    clean_streak: u32,
    consecutive_disruptions: u32,
    /// Epochs left at nominal after a graceful degradation.
    hold_remaining: u32,
    stats: GovernorStats,
}

impl OnlineGovernor {
    /// Creates a governor. `predictor` may be `None` for the purely
    /// reactive ablation; `droop_floor` may be `None` when no droop
    /// history exists yet.
    pub fn new(
        predictor: Option<VminPredictor>,
        droop_floor: Option<FailurePredictor>,
        config: GovernorConfig,
    ) -> Self {
        OnlineGovernor {
            predictor,
            droop_floor,
            config,
            dynamic_margin_mv: config.base_margin_mv,
            clean_streak: 0,
            consecutive_disruptions: 0,
            hold_remaining: 0,
            stats: GovernorStats::default(),
        }
    }

    /// Whether the governor is currently degraded to nominal operation.
    pub fn is_degraded(&self) -> bool {
        self.hold_remaining > 0
    }

    /// Telemetry so far.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// The currently applied adaptive margin, in mV.
    pub fn dynamic_margin_mv(&self) -> u32 {
        self.dynamic_margin_mv
    }

    /// Widens the adaptive margin by `extra_mv` (the safety net's margin
    /// restore on a breaker trip) and resets the clean streak: the extra
    /// caution must be earned away, not inherited.
    pub fn widen_margin(&mut self, extra_mv: u32) {
        if extra_mv == 0 {
            return;
        }
        self.clean_streak = 0;
        telemetry::event!(
            Level::Warn,
            "margin_widen",
            reason = "breaker_trip",
            from_mv = self.dynamic_margin_mv,
            to_mv = self.dynamic_margin_mv + extra_mv,
        );
        telemetry::counter!("governor_margin_widens_total");
        self.dynamic_margin_mv += extra_mv;
        telemetry::gauge!("governor_margin_mv", f64::from(self.dynamic_margin_mv));
    }

    /// Holds the relaxation machinery still for this epoch: the clean
    /// streak is cleared so margins cannot narrow while the safety net's
    /// breaker sits in its Watch state.
    pub fn hold_relaxation(&mut self) {
        self.clean_streak = 0;
    }

    /// Records a circuit-breaker trip against this governor's stats.
    pub fn record_breaker_trip(&mut self, reason: TripReason) {
        self.stats.breaker_trips += 1;
        self.stats.last_trip_reason = Some(reason);
        self.stats.last_trip_attribution = Some(reason.attribution());
    }

    /// Records an attacker quarantine: the safety net evicted a
    /// co-tenant instead of tripping the breaker, so the board keeps
    /// scaling uninterrupted.
    pub fn record_attacker_quarantine(&mut self) {
        self.stats.attacker_quarantines += 1;
    }

    /// Chooses the voltage for the next epoch of `workload`.
    pub fn choose(&self, workload: &WorkloadProfile) -> Millivolts {
        if self.hold_remaining > 0 {
            // Degraded: hold nominal until the chip has proven itself
            // again rather than oscillating around a rejected voltage.
            return Millivolts::XGENE2_NOMINAL;
        }
        let predicted = match &self.predictor {
            Some(p) => p.predict(workload).as_u32(),
            // Reactive-only ablation starts from a mid guardband guess.
            None => 900,
        };
        let mut v = predicted + self.dynamic_margin_mv;
        if let Some(floor) = &self.droop_floor {
            v = v.max(
                floor
                    .voltage_for(self.config.target_failure_probability)
                    .as_u32(),
            );
        }
        let gridded = v.div_ceil(5) * 5;
        Millivolts::new(gridded.min(Millivolts::XGENE2_NOMINAL.as_u32()))
    }

    /// Feeds back one epoch's outcome at the commanded voltage.
    pub fn observe(&mut self, commanded: Millivolts, outcome: RunOutcome) {
        self.stats.epochs += 1;
        self.stats.voltage_sum_mv += u64::from(commanded.as_u32());
        let r = commanded.ratio_to(Millivolts::XGENE2_NOMINAL);
        self.stats.power_proxy_sum += r * r;
        let holding = self.hold_remaining > 0;
        if holding {
            self.hold_remaining -= 1;
        }
        match outcome {
            RunOutcome::Correct => {
                self.consecutive_disruptions = 0;
                // Clean epochs at nominal prove the chip, not the margin:
                // relaxation only restarts once the hold has expired.
                if !holding {
                    self.clean_streak += 1;
                    if self.clean_streak >= self.config.clean_streak_to_relax {
                        self.clean_streak = 0;
                        let before = self.dynamic_margin_mv;
                        self.dynamic_margin_mv = self
                            .dynamic_margin_mv
                            .saturating_sub(self.config.relax_step_mv)
                            .max(self.config.min_margin_mv);
                        if self.dynamic_margin_mv < before {
                            telemetry::event!(
                                Level::Info,
                                "margin_narrow",
                                reason = "clean_streak",
                                from_mv = before,
                                to_mv = self.dynamic_margin_mv,
                            );
                            telemetry::counter!("governor_margin_narrows_total");
                        }
                        telemetry::gauge!("governor_margin_mv", f64::from(self.dynamic_margin_mv));
                    }
                }
            }
            RunOutcome::CorrectableError => {
                self.clean_streak = 0;
                self.consecutive_disruptions = 0;
                self.stats.ce_backoffs += 1;
                telemetry::event!(
                    Level::Info,
                    "margin_widen",
                    reason = "correctable_error",
                    from_mv = self.dynamic_margin_mv,
                    to_mv = self.dynamic_margin_mv + self.config.ce_backoff_mv,
                );
                telemetry::counter!("governor_margin_widens_total");
                self.dynamic_margin_mv += self.config.ce_backoff_mv;
                telemetry::gauge!("governor_margin_mv", f64::from(self.dynamic_margin_mv));
            }
            RunOutcome::UncorrectableError
            | RunOutcome::SilentDataCorruption
            | RunOutcome::Crash => {
                self.clean_streak = 0;
                self.stats.disruptions += 1;
                telemetry::event!(
                    Level::Warn,
                    "margin_widen",
                    reason = "disruption",
                    outcome = outcome.to_string(),
                    from_mv = self.dynamic_margin_mv,
                    to_mv = self.dynamic_margin_mv + self.config.disruption_backoff_mv,
                );
                telemetry::counter!("governor_margin_widens_total");
                self.dynamic_margin_mv += self.config.disruption_backoff_mv;
                telemetry::gauge!("governor_margin_mv", f64::from(self.dynamic_margin_mv));
                self.consecutive_disruptions += 1;
                if self.consecutive_disruptions >= self.config.degrade_after_disruptions
                    && self.hold_remaining == 0
                {
                    self.stats.degradations += 1;
                    self.hold_remaining = self.config.degrade_hold_epochs;
                    self.consecutive_disruptions = 0;
                    // Re-widen so the post-hold restart is conservative.
                    self.dynamic_margin_mv = self
                        .dynamic_margin_mv
                        .max(self.config.base_margin_mv + self.config.disruption_backoff_mv);
                    telemetry::event!(
                        Level::Error,
                        "governor_degraded",
                        hold_epochs = self.config.degrade_hold_epochs,
                        margin_mv = self.dynamic_margin_mv,
                    );
                    telemetry::counter!("governor_degradations_total");
                }
            }
        }
    }
}

/// Simulates the governor driving one core of a server through a schedule
/// of workload phases, one epoch each, cycling `epochs` times.
pub fn simulate(
    server: &mut XGene2Server,
    governor: &mut OnlineGovernor,
    schedule: &[WorkloadProfile],
    core: CoreId,
    epochs: usize,
) -> GovernorStats {
    assert!(!schedule.is_empty(), "schedule must not be empty");
    for e in 0..epochs {
        let workload = &schedule[e % schedule.len()];
        let v = governor.choose(workload);
        server
            .set_pmd_voltage(v)
            .expect("governor voltages stay within the regulator range");
        let outcome = server.run_on_core(core, workload).outcome;
        governor.observe(v, outcome);
    }
    governor.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use workload_sim::spec::SPEC_SUITE;
    use xgene_sim::sigma::{ChipProfile, SigmaBin};

    fn trained_predictor(bin: SigmaBin) -> VminPredictor {
        let chip = ChipProfile::corner(bin);
        let core = chip.most_robust_core();
        let data: Vec<_> = SPEC_SUITE
            .iter()
            .map(|b| {
                let p = b.profile();
                (p.clone(), chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL))
            })
            .collect();
        VminPredictor::train(&data).expect("well-posed")
    }

    fn schedule() -> Vec<WorkloadProfile> {
        SPEC_SUITE.iter().map(|b| b.profile()).collect()
    }

    #[test]
    fn predictive_governor_saves_power_without_disruption() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 71);
        let core = server.chip().most_robust_core();
        let mut gov = OnlineGovernor::new(
            Some(trained_predictor(SigmaBin::Ttt)),
            None,
            GovernorConfig::conservative(),
        );
        let stats = simulate(&mut server, &mut gov, &schedule(), core, 500);
        assert_eq!(stats.disruptions, 0, "{stats:?}");
        let savings = 1.0 - stats.mean_power_ratio();
        assert!(savings > 0.12, "power savings proxy {savings}");
        assert!(
            stats.mean_voltage_mv() < 920.0,
            "{}",
            stats.mean_voltage_mv()
        );
    }

    #[test]
    fn governor_tracks_workload_phases() {
        // The commanded voltage follows the predictor across phases:
        // higher for milc than for mcf.
        let gov = OnlineGovernor::new(
            Some(trained_predictor(SigmaBin::Ttt)),
            None,
            GovernorConfig::conservative(),
        );
        let mcf = SPEC_SUITE
            .iter()
            .find(|b| b.name == "mcf")
            .unwrap()
            .profile();
        let milc = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        assert!(gov.choose(&milc) > gov.choose(&mcf));
    }

    #[test]
    fn ce_feedback_backs_off_and_clean_streaks_relax() {
        let mut gov = OnlineGovernor::new(None, None, GovernorConfig::conservative());
        let start = gov.dynamic_margin_mv();
        gov.observe(Millivolts::new(900), RunOutcome::CorrectableError);
        assert_eq!(gov.dynamic_margin_mv(), start + 10);
        for _ in 0..40 {
            gov.observe(Millivolts::new(900), RunOutcome::Correct);
        }
        assert!(gov.dynamic_margin_mv() < start + 10);
        assert!(gov.dynamic_margin_mv() >= GovernorConfig::conservative().min_margin_mv);
    }

    #[test]
    fn reactive_only_ablation_is_worse() {
        // Without the predictor the governor either suffers disruptions or
        // ends up holding a higher mean voltage after the backoffs.
        let run = |predictive: bool| {
            let mut server = XGene2Server::new(SigmaBin::Ttt, 72);
            let core = server.chip().most_robust_core();
            let predictor = predictive.then(|| trained_predictor(SigmaBin::Ttt));
            let mut gov = OnlineGovernor::new(predictor, None, GovernorConfig::conservative());
            simulate(&mut server, &mut gov, &schedule(), core, 500)
        };
        let predictive = run(true);
        let reactive = run(false);
        let worse = reactive.disruptions > predictive.disruptions
            || reactive.mean_power_ratio() > predictive.mean_power_ratio()
            || reactive.ce_backoffs > predictive.ce_backoffs + 5;
        assert!(worse, "reactive {reactive:?} vs predictive {predictive:?}");
    }

    #[test]
    fn droop_floor_raises_the_choice() {
        use crate::droop_history::DroopHistory;
        let mut history = DroopHistory::new(64);
        for _ in 0..64 {
            history.record(45.0); // large observed droops
        }
        let floor = FailurePredictor::new(Millivolts::new(880), history);
        let with_floor = OnlineGovernor::new(
            Some(trained_predictor(SigmaBin::Ttt)),
            Some(floor),
            GovernorConfig::conservative(),
        );
        let without = OnlineGovernor::new(
            Some(trained_predictor(SigmaBin::Ttt)),
            None,
            GovernorConfig::conservative(),
        );
        let mcf = SPEC_SUITE
            .iter()
            .find(|b| b.name == "mcf")
            .unwrap()
            .profile();
        assert!(with_floor.choose(&mcf) > without.choose(&mcf));
    }

    #[test]
    fn repeated_disruptions_degrade_to_nominal_and_hold() {
        let config = GovernorConfig {
            disruption_backoff_mv: 5,
            degrade_after_disruptions: 3,
            degrade_hold_epochs: 10,
            ..GovernorConfig::conservative()
        };
        let mut gov = OnlineGovernor::new(None, None, config);
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        for _ in 0..3 {
            let v = gov.choose(&heavy);
            gov.observe(v, RunOutcome::Crash);
        }
        assert_eq!(gov.stats().degradations, 1);
        assert!(gov.is_degraded());
        for _ in 0..10 {
            assert_eq!(
                gov.choose(&heavy),
                Millivolts::XGENE2_NOMINAL,
                "holds nominal"
            );
            gov.observe(Millivolts::XGENE2_NOMINAL, RunOutcome::Correct);
        }
        assert!(!gov.is_degraded(), "the hold expires");
        // Scaled operation resumes from the re-widened margin: 900 mV
        // reactive base + (15 base + 3×5 backoff) margin.
        assert_eq!(gov.choose(&heavy), Millivolts::new(930));
        assert_eq!(gov.stats().degradations, 1, "no re-trigger while holding");
    }

    #[test]
    fn degradation_does_not_oscillate_under_sustained_faults() {
        let config = GovernorConfig {
            degrade_after_disruptions: 3,
            degrade_hold_epochs: 20,
            ..GovernorConfig::conservative()
        };
        let mut gov = OnlineGovernor::new(None, None, config);
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        // 30 straight crashes: one degradation fires, then the hold
        // absorbs the rest instead of re-triggering every third epoch.
        for _ in 0..30 {
            let v = gov.choose(&heavy);
            gov.observe(v, RunOutcome::Crash);
        }
        assert!(gov.stats().degradations <= 2, "{:?}", gov.stats());
    }

    #[test]
    fn zero_hold_epochs_never_degrades_operation() {
        // Boundary: with a zero hold the degradation machinery fires (the
        // margin re-widens, the stat increments) but there is no nominal
        // hold at all — the very next choice is already scaled.
        let config = GovernorConfig {
            disruption_backoff_mv: 5,
            degrade_after_disruptions: 2,
            degrade_hold_epochs: 0,
            ..GovernorConfig::conservative()
        };
        let mut gov = OnlineGovernor::new(None, None, config);
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        for _ in 0..2 {
            let v = gov.choose(&heavy);
            gov.observe(v, RunOutcome::Crash);
        }
        assert_eq!(gov.stats().degradations, 1);
        assert!(!gov.is_degraded(), "a zero hold expires instantly");
        assert!(gov.choose(&heavy) < Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn one_hold_epoch_holds_nominal_exactly_once() {
        let config = GovernorConfig {
            disruption_backoff_mv: 5,
            degrade_after_disruptions: 2,
            degrade_hold_epochs: 1,
            ..GovernorConfig::conservative()
        };
        let mut gov = OnlineGovernor::new(None, None, config);
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        for _ in 0..2 {
            let v = gov.choose(&heavy);
            gov.observe(v, RunOutcome::Crash);
        }
        assert!(gov.is_degraded());
        assert_eq!(gov.choose(&heavy), Millivolts::XGENE2_NOMINAL);
        gov.observe(Millivolts::XGENE2_NOMINAL, RunOutcome::Correct);
        assert!(!gov.is_degraded(), "one observed epoch consumes the hold");
        assert!(gov.choose(&heavy) < Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn hold_expires_exactly_at_the_configured_epoch() {
        let hold = 7;
        let config = GovernorConfig {
            disruption_backoff_mv: 5,
            degrade_after_disruptions: 2,
            degrade_hold_epochs: hold,
            ..GovernorConfig::conservative()
        };
        let mut gov = OnlineGovernor::new(None, None, config);
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        for _ in 0..2 {
            let v = gov.choose(&heavy);
            gov.observe(v, RunOutcome::Crash);
        }
        // Epochs 1..=hold are nominal; epoch hold+1 is scaled again.
        for epoch in 1..=hold {
            assert!(gov.is_degraded(), "epoch {epoch} still inside the hold");
            assert_eq!(gov.choose(&heavy), Millivolts::XGENE2_NOMINAL);
            gov.observe(Millivolts::XGENE2_NOMINAL, RunOutcome::Correct);
        }
        assert!(!gov.is_degraded(), "the hold expires at epoch {hold}");
        assert!(gov.choose(&heavy) < Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn breaker_trips_are_recorded_and_widen_margin() {
        use char_fw::safety::TripReason;
        let mut gov = OnlineGovernor::new(None, None, GovernorConfig::conservative());
        let before = gov.dynamic_margin_mv();
        gov.widen_margin(30);
        gov.record_breaker_trip(TripReason::SdcVote);
        assert_eq!(gov.dynamic_margin_mv(), before + 30);
        assert_eq!(gov.stats().breaker_trips, 1);
        assert_eq!(gov.stats().last_trip_reason, Some(TripReason::SdcVote));
        // Stats roundtrip with the new fields, and old serialized stats
        // (without them) still decode.
        let text = serde::json::to_string(&gov.stats());
        let back: GovernorStats = serde::json::from_str(&text).unwrap();
        assert_eq!(back, gov.stats());
        let legacy = "{\"epochs\":3,\"ce_backoffs\":1,\"disruptions\":0,\
                      \"voltage_sum_mv\":2700,\"power_proxy_sum\":2.4,\"degradations\":0}";
        let old: GovernorStats = serde::json::from_str(legacy).unwrap();
        assert_eq!(old.breaker_trips, 0);
        assert_eq!(old.last_trip_reason, None);
    }

    #[test]
    fn hold_relaxation_freezes_margin_narrowing() {
        let mut gov = OnlineGovernor::new(None, None, GovernorConfig::conservative());
        gov.observe(Millivolts::new(900), RunOutcome::CorrectableError);
        let widened = gov.dynamic_margin_mv();
        // Clean epochs would normally relax the margin — holding the
        // relaxation every epoch must pin it.
        for _ in 0..100 {
            gov.hold_relaxation();
            gov.observe(Millivolts::new(900), RunOutcome::Correct);
        }
        assert_eq!(gov.dynamic_margin_mv(), widened);
    }

    #[test]
    fn never_exceeds_nominal() {
        let mut gov = OnlineGovernor::new(None, None, GovernorConfig::conservative());
        for _ in 0..30 {
            gov.observe(Millivolts::new(950), RunOutcome::Crash);
        }
        let heavy = SPEC_SUITE
            .iter()
            .find(|b| b.name == "milc")
            .unwrap()
            .profile();
        assert!(gov.choose(&heavy) <= Millivolts::XGENE2_NOMINAL);
    }
}
