//! The assembled safety net around the online governor.
//!
//! [`SafetyNet::run_epoch`] is the production epoch loop: choose a voltage
//! (nominal whenever the breaker is open), run the workload, project the
//! outcome through the observability boundary, feed the governor only
//! what production can see, interleave DMR sentinel checks, and fold all
//! observables into the circuit breaker. A trip restores the governor
//! margin and rolls the DRAM refresh period back to nominal; the breaker's
//! hold-then-cooldown hysteresis re-earns the relaxed settings.

use crate::governor::OnlineGovernor;
use crate::safety::observe::{ErrorReport, Observation};
use char_fw::resilience::{recover_board, RetryPolicy};
use char_fw::safety::{
    BreakerConfig, BreakerState, CircuitBreaker, HealthSignal, SentinelRunner, SentinelStats,
    SentinelVerdict,
};
use dram_sim::array::DramArray;
use dram_sim::scrubber::ScrubberStats;
use power_model::units::{Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use telemetry::Level;
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::watchdog::{DeadlineWatchdog, WatchdogConfig, WatchdogStats};
use xgene_sim::workload::WorkloadProfile;

/// Safety-net tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyNetConfig {
    /// Circuit-breaker thresholds and hold/cooldown lengths.
    pub breaker: BreakerConfig,
    /// Deadline watchdog budget.
    pub watchdog: WatchdogConfig,
    /// Board-recovery retry schedule after a watchdog power cycle.
    pub retry: RetryPolicy,
    /// Run one DMR sentinel check every this many epochs (0 disables
    /// sentinels — not recommended below the guardband).
    pub sentinel_every_epochs: u32,
    /// Extra adaptive margin restored onto the governor when the breaker
    /// trips, in mV.
    pub trip_margin_widen_mv: u32,
    /// The relaxed DRAM refresh period used while the breaker is closed;
    /// an open breaker rolls back to the DDR3 nominal 64 ms.
    pub relaxed_trefp: Milliseconds,
    /// Conservative platform constant (mV per unit of co-runner resonant
    /// energy) used to *estimate* the cross-tenant droop from co-located
    /// tenants' PMU telemetry — both to compensate the commanded voltage
    /// and to feed the breaker's droop EWMA. `0` (the default, and what
    /// every legacy config decodes to) disables estimation entirely.
    #[serde(default)]
    pub cross_droop_mv_per_unit: f64,
    /// Adaptive sentinel cadence: while the droop estimate or breaker
    /// state is anomalous, the sentinel period tightens from
    /// `sentinel_every_epochs` down to this floor. `0` disables.
    #[serde(default)]
    pub min_sentinel_every_epochs: u32,
    /// When the droop EWMA is about to cross the trip threshold,
    /// quarantine the *attacker* (evict the co-tenant, keep the healthy
    /// board scaled) instead of tripping the breaker into nominal hold.
    /// Board-fault trips are untouched — this is what makes attacker
    /// quarantine distinct from board quarantine.
    #[serde(default)]
    pub quarantine_attacker: bool,
}

impl SafetyNetConfig {
    /// Production defaults around the paper's safe point: sentinels every
    /// 10 epochs, a 30 mV margin restore per trip, and the 35× relaxed
    /// refresh period while healthy.
    pub fn dsn18() -> Self {
        SafetyNetConfig {
            breaker: BreakerConfig::dsn18(),
            watchdog: WatchdogConfig::dsn18(),
            retry: RetryPolicy::dsn18(),
            sentinel_every_epochs: 10,
            trip_margin_widen_mv: 30,
            relaxed_trefp: Milliseconds::DSN18_RELAXED_TREFP,
            cross_droop_mv_per_unit: 0.0,
            min_sentinel_every_epochs: 0,
            quarantine_attacker: false,
        }
    }

    /// The red-team-motivated hardening on top of [`Self::dsn18`]:
    ///
    /// * droop estimation at 48 mV per unit resonant energy — the
    ///   worst-characterized corner's rail coupling (0.55 × the TFF droop
    ///   coefficient) plus sampling headroom, so feed-forward
    ///   compensation covers every board in the fleet without oracle
    ///   access to the victim chip's true coefficient;
    /// * droop attribution in the breaker (watch at 12 mV, trip at
    ///   25 mV smoothed);
    /// * sentinel cadence tightening to every 2 epochs under anomalous
    ///   droop or CE bursts;
    /// * attacker quarantine instead of board trips for droop
    ///   excursions.
    pub fn hardened() -> Self {
        SafetyNetConfig {
            breaker: BreakerConfig {
                droop_watch_mv: 12.0,
                droop_trip_mv: 25.0,
                ..BreakerConfig::dsn18()
            },
            cross_droop_mv_per_unit: 48.0,
            min_sentinel_every_epochs: 2,
            quarantine_attacker: true,
            ..SafetyNetConfig::dsn18()
        }
    }
}

impl Default for SafetyNetConfig {
    fn default() -> Self {
        SafetyNetConfig::dsn18()
    }
}

/// Ground-truth bookkeeping for tests and post-hoc analysis. The control
/// path never reads this: it exists so experiments can *prove* the
/// detection coverage the net claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcAudit {
    /// True SDCs suffered by production workload epochs. These are
    /// invisible by construction — the net's answer to them is the
    /// sentinel cadence, not per-run detection.
    pub workload_true_sdcs: u64,
    /// True SDCs that occurred *before* the net's first detection event
    /// (breaker trip or attacker quarantine) — the red-team escape
    /// count. Equal to `workload_true_sdcs` when nothing ever detects.
    #[serde(default)]
    pub escaped_sdcs: u64,
}

/// Aggregate net bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyNetStats {
    /// Epochs executed through the net.
    pub epochs: u64,
    /// Epochs spent at nominal because the breaker was open.
    pub nominal_epochs: u64,
    /// Refresh rollbacks to the DDR3 nominal period (one per trip).
    pub refresh_rollbacks: u64,
    /// Relaxed-refresh restores after a full recovery.
    pub refresh_restores: u64,
    /// Transitions of the sentinel cadence from the relaxed period to
    /// the tightened floor (see
    /// [`SafetyNetConfig::min_sentinel_every_epochs`]).
    #[serde(default)]
    pub cadence_tightenings: u64,
    /// Co-tenants evicted by the droop-attribution preview instead of
    /// tripping the breaker.
    #[serde(default)]
    pub attacker_quarantines: u64,
    /// Epoch index (1-based) of the first detection event — a breaker
    /// trip or an attacker quarantine — if one has happened.
    #[serde(default)]
    pub first_detection_epoch: Option<u64>,
}

/// What one guarded epoch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Voltage commanded for the workload epoch.
    pub commanded: Millivolts,
    /// The epoch as production observed it.
    pub observation: Observation,
    /// Verdict of the sentinel check, if one was scheduled this epoch.
    pub sentinel: Option<SentinelVerdict>,
    /// Breaker state after folding this epoch in.
    pub breaker_state: BreakerState,
    /// Refresh period in force after this epoch.
    pub trefp: Milliseconds,
    /// Estimated cross-tenant droop folded into this epoch's breaker
    /// signal, in mV (0 on a dedicated PMD or with estimation disabled).
    pub cross_droop_estimate_mv: f64,
    /// Whether an attacker quarantine was in force during this epoch.
    pub attacker_quarantined: bool,
}

/// The assembled safety net.
#[derive(Debug, Clone)]
pub struct SafetyNet {
    config: SafetyNetConfig,
    breaker: CircuitBreaker,
    sentinel: SentinelRunner,
    watchdog: DeadlineWatchdog,
    epochs_since_sentinel: u32,
    /// Latest DRAM scrubber correction rate (corrections/epoch), fed via
    /// [`Self::feed_scrubber`]; folded into every breaker epoch.
    scrub_ce_rate: f64,
    last_scrub: Option<ScrubberStats>,
    audit: SdcAudit,
    stats: SafetyNetStats,
    attacker_quarantined: bool,
    cadence_tightened: bool,
}

impl SafetyNet {
    /// A closed net with the default canary suite.
    pub fn new(config: SafetyNetConfig) -> Self {
        SafetyNet {
            config,
            breaker: CircuitBreaker::new(config.breaker),
            sentinel: SentinelRunner::default(),
            watchdog: DeadlineWatchdog::new(config.watchdog),
            epochs_since_sentinel: 0,
            scrub_ce_rate: 0.0,
            last_scrub: None,
            audit: SdcAudit::default(),
            stats: SafetyNetStats::default(),
            attacker_quarantined: false,
            cadence_tightened: false,
        }
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Breaker trips so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// Sentinel bookkeeping.
    pub fn sentinel_stats(&self) -> SentinelStats {
        self.sentinel.stats()
    }

    /// Watchdog bookkeeping.
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog.stats()
    }

    /// Ground-truth audit (tests only — see [`SdcAudit`]).
    pub fn audit(&self) -> SdcAudit {
        self.audit
    }

    /// Net bookkeeping.
    pub fn stats(&self) -> SafetyNetStats {
        self.stats
    }

    /// The refresh period currently authorized: relaxed while the breaker
    /// permits scaled operation, the DDR3 nominal 64 ms otherwise.
    pub fn current_trefp(&self) -> Milliseconds {
        if self.breaker.allows_scaling() {
            self.config.relaxed_trefp
        } else {
            Milliseconds::DDR3_NOMINAL_TREFP
        }
    }

    /// Applies the authorized refresh period to a DRAM array.
    pub fn apply_refresh(&self, dram: &mut DramArray) {
        dram.set_trefp(self.current_trefp());
    }

    /// Feeds the DRAM scrubber's cumulative stats, converting the delta
    /// since the previous feed into a corrections-per-epoch rate that the
    /// breaker folds into its EWMA. `epochs` is how many epochs the delta
    /// spans.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is not strictly positive.
    pub fn feed_scrubber(&mut self, stats: ScrubberStats, epochs: f64) {
        assert!(epochs > 0.0, "the feed must span at least part of an epoch");
        let prev = self.last_scrub.unwrap_or_default();
        let corrections = stats.corrections.saturating_sub(prev.corrections);
        self.scrub_ce_rate = corrections as f64 / epochs;
        self.last_scrub = Some(stats);
        telemetry::gauge!("scrub_ce_rate_per_epoch", self.scrub_ce_rate);
    }

    /// Whether the droop-attribution preview has evicted the co-tenant.
    /// Once set, every later epoch runs the victim solo regardless of the
    /// schedule passed in.
    pub fn attacker_quarantined(&self) -> bool {
        self.attacker_quarantined
    }

    /// Estimated cross-tenant droop, in mV, from the co-runners' PMU
    /// telemetry (resonant energy), scaled by the platform constant. This
    /// is the net's *estimate* — it has no oracle access to the victim
    /// chip's true coupling coefficient.
    fn droop_estimate(&self, co_tenants: &[(CoreId, &WorkloadProfile)]) -> f64 {
        self.config.cross_droop_mv_per_unit
            * co_tenants
                .iter()
                .map(|(_, w)| w.resonant_energy())
                .sum::<f64>()
    }

    /// Feed-forward compensation: raise the governor's choice by the
    /// estimated co-tenant droop (rounded up), never above nominal.
    fn compensate(chosen: Millivolts, droop_estimate_mv: f64) -> Millivolts {
        if droop_estimate_mv <= 0.0 {
            return chosen;
        }
        let bumped = chosen.as_u32() + droop_estimate_mv.ceil() as u32;
        Millivolts::new(bumped.min(Millivolts::XGENE2_NOMINAL.as_u32()))
    }

    /// Marks the first detection event (trip or quarantine) if none has
    /// been recorded yet.
    fn mark_detection(&mut self) {
        if self.stats.first_detection_epoch.is_none() {
            self.stats.first_detection_epoch = Some(self.stats.epochs);
        }
    }

    fn evict_attacker(&mut self, governor: &mut OnlineGovernor) {
        self.attacker_quarantined = true;
        self.stats.attacker_quarantines += 1;
        self.mark_detection();
        governor.record_attacker_quarantine();
        telemetry::event!(
            Level::Warn,
            "attacker_quarantined",
            epoch = self.stats.epochs,
        );
        telemetry::counter!("safety_redteam_attacker_quarantines_total");
    }

    /// Runs one guarded epoch of `workload` on `core`: voltage choice
    /// (nominal when the breaker is open), execution, observation through
    /// the watchdog, governor feedback from observables only, scheduled
    /// sentinel checks, and the breaker update with its trip/recovery
    /// actions.
    pub fn run_epoch(
        &mut self,
        server: &mut XGene2Server,
        governor: &mut OnlineGovernor,
        core: CoreId,
        workload: &WorkloadProfile,
    ) -> EpochReport {
        self.run_epoch_colocated(server, governor, core, workload, &[])
    }

    /// Runs one guarded epoch with `co_tenants` sharing the victim's PMD
    /// rail. With an empty schedule this is exactly [`Self::run_epoch`].
    ///
    /// The hardening knobs in [`SafetyNetConfig`] act here:
    ///
    /// * the co-tenants' droop is estimated from their observable PMU
    ///   profile and compensated feed-forward into the commanded voltage;
    /// * the estimate feeds the breaker's droop EWMA for cross-tenant
    ///   attribution;
    /// * when the EWMA would cross the trip threshold, the *attacker* is
    ///   quarantined (evicted for all later epochs) instead of the board;
    /// * anomalous droop tightens the sentinel cadence to the configured
    ///   floor.
    ///
    /// With every knob at its zeroed default the schedule still runs, but
    /// the net is blind to the coupling — the seed-net ablation the
    /// red-team campaign attacks.
    pub fn run_epoch_colocated(
        &mut self,
        server: &mut XGene2Server,
        governor: &mut OnlineGovernor,
        core: CoreId,
        workload: &WorkloadProfile,
        co_tenants: &[(CoreId, &WorkloadProfile)],
    ) -> EpochReport {
        self.stats.epochs += 1;

        // A quarantined attacker stays evicted: later epochs run solo.
        let co_tenants: &[(CoreId, &WorkloadProfile)] = if self.attacker_quarantined {
            &[]
        } else {
            co_tenants
        };
        let mut droop_estimate = self.droop_estimate(co_tenants);
        // Quarantine preview: if folding this estimate in would trip the
        // breaker on droop, evict the attacker *before* the epoch and keep
        // the (healthy) board scaled. Board-fault trips are unaffected.
        if self.config.quarantine_attacker
            && !co_tenants.is_empty()
            && self.breaker.would_trip_on_droop(droop_estimate)
        {
            self.evict_attacker(governor);
        }
        let co_tenants: &[(CoreId, &WorkloadProfile)] = if self.attacker_quarantined {
            droop_estimate = 0.0;
            &[]
        } else {
            co_tenants
        };

        let commanded = if self.breaker.allows_scaling() {
            if !self.breaker.allows_relaxation() {
                // Watch: keep running scaled but freeze margin narrowing.
                governor.hold_relaxation();
            }
            Self::compensate(governor.choose(workload), droop_estimate)
        } else {
            self.stats.nominal_epochs += 1;
            Millivolts::XGENE2_NOMINAL
        };
        server
            .set_pmd_voltage(commanded)
            .expect("net voltages stay within the regulator range");

        let run = server.run_colocated(core, workload, co_tenants);
        if run.victim.outcome == RunOutcome::SilentDataCorruption {
            // Ground truth only: production cannot see this branch.
            self.audit.workload_true_sdcs += 1;
            if self.stats.first_detection_epoch.is_none() {
                self.audit.escaped_sdcs += 1;
                telemetry::counter!("safety_redteam_escapes_total");
            }
        }
        // An aggressor crash resets the shared board, so the epoch is
        // lost even when the victim's own run would have survived.
        let outcome = if !run.victim.outcome.needs_reset()
            && run.aggressors.iter().any(|a| a.outcome.needs_reset())
        {
            RunOutcome::Crash
        } else {
            run.victim.outcome
        };
        let observation = Observation::from_outcome(outcome, &mut self.watchdog);
        if observation.timed_out() {
            recover_board(server, &self.config.retry);
        }
        governor.observe(commanded, observation.as_feedback());

        let mut signal = HealthSignal {
            ce_events: u32::from(
                observation
                    == Observation::Completed {
                        report: ErrorReport::Corrected,
                    },
            ),
            scrub_ce_rate: self.scrub_ce_rate,
            ue: observation
                == Observation::Completed {
                    report: ErrorReport::Uncorrectable,
                },
            sdc_checksum: false,
            sdc_vote: false,
            timeout: observation.timed_out(),
            droop_mv: droop_estimate,
        };

        // Adaptive cadence: tighten the sentinel period while the droop
        // picture is anomalous (estimate in the watch band, the breaker's
        // droop EWMA elevated, or the breaker escalated to Watch by a CE
        // burst).
        let mut sentinel_period = self.config.sentinel_every_epochs;
        let tighten = self.config.min_sentinel_every_epochs > 0
            && sentinel_period > 0
            && (self.breaker.droop_watch_active()
                || self.breaker.state() == BreakerState::Watch
                || (self.config.breaker.droop_attribution_enabled()
                    && droop_estimate >= self.config.breaker.droop_watch_mv));
        if tighten {
            sentinel_period = self.config.min_sentinel_every_epochs.min(sentinel_period);
            if !self.cadence_tightened {
                self.stats.cadence_tightenings += 1;
                telemetry::event!(
                    Level::Info,
                    "sentinel_cadence_tightened",
                    every_epochs = sentinel_period,
                );
                telemetry::counter!("safety_redteam_cadence_tightenings_total");
            }
        }
        self.cadence_tightened = tighten;

        let mut sentinel_verdict = None;
        if sentinel_period > 0 {
            self.epochs_since_sentinel += 1;
            if self.epochs_since_sentinel >= sentinel_period {
                self.epochs_since_sentinel = 0;
                let report = self.sentinel.check(server, core.pmd());
                recover_board(server, &self.config.retry);
                signal.ce_events += report.ce_events;
                signal.ue |= report.verdict == SentinelVerdict::HwError;
                signal.timeout |= report.verdict == SentinelVerdict::Timeout;
                signal.sdc_checksum = report.verdict == SentinelVerdict::ChecksumMismatch;
                signal.sdc_vote = report.verdict == SentinelVerdict::VoteSplit;
                sentinel_verdict = Some(report.verdict);
            }
        }

        let scaling_before = self.breaker.allows_scaling();
        let tripped_before = self.breaker.state() == BreakerState::Tripped;
        let state = self.breaker.record_epoch(&signal);
        if state == BreakerState::Tripped && !tripped_before {
            self.mark_detection();
            let reason = self
                .breaker
                .last_trip_reason()
                .expect("a fresh trip always records its reason");
            governor.record_breaker_trip(reason);
            governor.widen_margin(self.config.trip_margin_widen_mv);
            if scaling_before {
                self.stats.refresh_rollbacks += 1;
                telemetry::event!(
                    Level::Warn,
                    "refresh_rollback",
                    reason = reason.to_string(),
                    trefp_ms = Milliseconds::DDR3_NOMINAL_TREFP.as_f64(),
                );
                telemetry::counter!("refresh_rollbacks_total");
            }
        } else if !scaling_before && self.breaker.allows_scaling() {
            self.stats.refresh_restores += 1;
            telemetry::event!(
                Level::Info,
                "refresh_restore",
                trefp_ms = self.config.relaxed_trefp.as_f64(),
            );
            telemetry::counter!("refresh_restores_total");
        }

        EpochReport {
            commanded,
            observation,
            sentinel: sentinel_verdict,
            breaker_state: state,
            trefp: self.current_trefp(),
            cross_droop_estimate_mv: droop_estimate,
            attacker_quarantined: self.attacker_quarantined,
        }
    }
}

impl Default for SafetyNet {
    fn default() -> Self {
        SafetyNet::new(SafetyNetConfig::dsn18())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorConfig;
    use xgene_sim::fault::FaultPlan;
    use xgene_sim::sigma::SigmaBin;

    fn reactive_governor() -> OnlineGovernor {
        OnlineGovernor::new(None, None, GovernorConfig::conservative())
    }

    fn light_workload() -> WorkloadProfile {
        WorkloadProfile::builder("light").activity(0.2).build()
    }

    #[test]
    fn healthy_epochs_stay_scaled_and_relaxed() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::dsn18());
        let w = light_workload();
        for _ in 0..30 {
            let r = net.run_epoch(&mut server, &mut gov, core, &w);
            assert_eq!(r.breaker_state, BreakerState::Healthy);
            assert!(r.commanded < Millivolts::XGENE2_NOMINAL);
            assert_eq!(r.trefp, Milliseconds::DSN18_RELAXED_TREFP);
        }
        assert_eq!(net.breaker_trips(), 0);
        assert_eq!(net.sentinel_stats().checks, 3, "one check per 10 epochs");
        assert_eq!(net.sentinel_stats().undetected_sdcs, 0);
        assert_eq!(net.stats().nominal_epochs, 0);
    }

    #[test]
    fn a_detected_sentinel_sdc_trips_margin_and_refresh() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 91);
        // The first sentinel canary run is forced silent; the check must
        // catch it and open the breaker.
        server.install_fault_plan(FaultPlan::quiet(91).force_sdc_at_run(1));
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let margin_before = gov.dynamic_margin_mv();
        let config = SafetyNetConfig {
            sentinel_every_epochs: 1,
            ..SafetyNetConfig::dsn18()
        };
        let mut net = SafetyNet::new(config);
        let w = light_workload();
        let r = net.run_epoch(&mut server, &mut gov, core, &w);
        assert!(matches!(
            r.sentinel,
            Some(SentinelVerdict::VoteSplit | SentinelVerdict::ChecksumMismatch)
        ));
        assert_eq!(r.breaker_state, BreakerState::Tripped);
        assert_eq!(r.trefp, Milliseconds::DDR3_NOMINAL_TREFP, "rolled back");
        assert_eq!(net.breaker_trips(), 1);
        assert_eq!(net.stats().refresh_rollbacks, 1);
        assert_eq!(gov.stats().breaker_trips, 1);
        assert_eq!(
            gov.dynamic_margin_mv(),
            margin_before + config.trip_margin_widen_mv
        );
        // While open, epochs run at nominal.
        let r = net.run_epoch(&mut server, &mut gov, core, &w);
        assert_eq!(r.commanded, Millivolts::XGENE2_NOMINAL);
        assert!(net.stats().nominal_epochs >= 1);
    }

    #[test]
    fn trip_recovers_through_cooldown_and_restores_refresh() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 92);
        // Run draw 0 is the first workload epoch; draws 1–2 are the first
        // sentinel's canary pair. Force the first canary silent.
        server.install_fault_plan(FaultPlan::quiet(92).force_sdc_at_run(1));
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let config = SafetyNetConfig {
            breaker: BreakerConfig {
                trip_hold_epochs: 4,
                cooldown_epochs: 3,
                ..BreakerConfig::dsn18()
            },
            sentinel_every_epochs: 1,
            ..SafetyNetConfig::dsn18()
        };
        let mut net = SafetyNet::new(config);
        let w = light_workload();
        let mut states = Vec::new();
        for _ in 0..30 {
            states.push(net.run_epoch(&mut server, &mut gov, core, &w).breaker_state);
            if *states.last().unwrap() == BreakerState::Healthy && states.len() > 1 {
                break;
            }
        }
        assert!(states.contains(&BreakerState::Tripped), "{states:?}");
        assert!(states.contains(&BreakerState::Cooldown), "{states:?}");
        assert_eq!(*states.last().unwrap(), BreakerState::Healthy);
        assert_eq!(net.stats().refresh_restores, 1);
        assert_eq!(net.current_trefp(), Milliseconds::DSN18_RELAXED_TREFP);
        assert_eq!(net.breaker_trips(), 1, "one trip, one recovery");
    }

    #[test]
    fn scrubber_ce_rate_feeds_the_breaker() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 93);
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::dsn18());
        let w = light_workload();
        // A scrubber correcting 3 words/epoch is far above the 0.5 trip
        // threshold: the EWMA must open the breaker within a few epochs.
        net.feed_scrubber(
            ScrubberStats {
                words_scrubbed: 10_000,
                corrections: 300,
                uncorrectable: 0,
            },
            100.0,
        );
        let mut tripped_at = None;
        for e in 0..20 {
            let r = net.run_epoch(&mut server, &mut gov, core, &w);
            if r.breaker_state == BreakerState::Tripped {
                tripped_at = Some(e);
                break;
            }
        }
        assert!(tripped_at.is_some(), "scrubber rate never tripped");
        assert_eq!(net.breaker_state(), BreakerState::Tripped,);
        // A later feed with no new corrections drops the rate again.
        net.feed_scrubber(
            ScrubberStats {
                words_scrubbed: 20_000,
                corrections: 300,
                uncorrectable: 0,
            },
            100.0,
        );
        assert_eq!(net.audit().workload_true_sdcs, 0);
    }

    #[test]
    fn refresh_application_follows_the_breaker() {
        use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
        use power_model::units::Celsius;
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            5,
        );
        let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
        let net = SafetyNet::new(SafetyNetConfig::dsn18());
        net.apply_refresh(&mut dram);
        assert_eq!(dram.trefp(), Milliseconds::DSN18_RELAXED_TREFP);
    }

    /// A crafted dI/dt virus neighbor: full activity swing, near-resonant
    /// alignment (resonant energy 0.9).
    fn virus_neighbor() -> WorkloadProfile {
        WorkloadProfile::builder("didt-virus")
            .activity(1.0)
            .swing(1.0)
            .resonance_alignment(0.9)
            .build()
    }

    fn victim_and_sibling(server: &XGene2Server) -> (CoreId, CoreId) {
        let victim = server.chip().most_robust_core();
        let sibling = victim
            .pmd()
            .cores()
            .into_iter()
            .find(|c| *c != victim)
            .expect("a PMD has two cores");
        (victim, sibling)
    }

    #[test]
    fn seed_net_is_blind_to_cross_tenant_droop() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let (victim, sibling) = victim_and_sibling(&server);
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::dsn18());
        let w = light_workload();
        let virus = virus_neighbor();
        for _ in 0..10 {
            let r =
                net.run_epoch_colocated(&mut server, &mut gov, victim, &w, &[(sibling, &virus)]);
            // Every hardening knob defaults to off: no estimate, no
            // compensation, no quarantine — the schedule just runs.
            assert_eq!(r.cross_droop_estimate_mv, 0.0);
            assert!(!r.attacker_quarantined);
        }
        assert_eq!(net.stats().attacker_quarantines, 0);
        assert_eq!(net.stats().cadence_tightenings, 0);
    }

    #[test]
    fn hardened_net_quarantines_the_attacker_not_the_board() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let (victim, sibling) = victim_and_sibling(&server);
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::hardened());
        let w = light_workload();
        let virus = virus_neighbor();
        let mut quarantine_epoch = None;
        for e in 1..=20u64 {
            let r =
                net.run_epoch_colocated(&mut server, &mut gov, victim, &w, &[(sibling, &virus)]);
            if r.attacker_quarantined && quarantine_epoch.is_none() {
                quarantine_epoch = Some(e);
            }
            if quarantine_epoch.is_none() {
                // Feed-forward compensation: the estimate (48 × 0.9 mV,
                // rounded up) is added to the governor's choice.
                assert_eq!(r.cross_droop_estimate_mv, 48.0 * 0.9);
                assert_eq!(
                    r.commanded.as_u32(),
                    gov.choose(&w).as_u32() + 44,
                    "commanded voltage is compensated while the attacker runs"
                );
            } else {
                assert_eq!(
                    r.cross_droop_estimate_mv, 0.0,
                    "evicted attacker couples nothing"
                );
            }
        }
        // The droop EWMA preview evicts the attacker before the trip
        // threshold is ever folded in: the board never trips.
        let detected = quarantine_epoch.expect("the droop EWMA must quarantine the attacker");
        assert!(
            detected <= 10,
            "within one relaxed sentinel period, got {detected}"
        );
        assert_eq!(
            net.breaker_trips(),
            0,
            "attacker quarantine spares the board"
        );
        assert_eq!(net.stats().attacker_quarantines, 1);
        assert_eq!(net.stats().first_detection_epoch, Some(detected));
        assert_eq!(gov.stats().attacker_quarantines, 1);
        assert_eq!(gov.stats().breaker_trips, 0);
        assert!(net.attacker_quarantined());
        // The board keeps its scaled voltage and relaxed refresh.
        assert_eq!(net.current_trefp(), Milliseconds::DSN18_RELAXED_TREFP);
    }

    #[test]
    fn droop_trip_without_quarantine_attributes_the_attacker() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let (victim, sibling) = victim_and_sibling(&server);
        let mut gov = reactive_governor();
        // Attribution on, eviction off: the breaker itself must trip and
        // blame the attacker, not the board.
        let config = SafetyNetConfig {
            quarantine_attacker: false,
            ..SafetyNetConfig::hardened()
        };
        let mut net = SafetyNet::new(config);
        let w = light_workload();
        let virus = virus_neighbor();
        let mut tripped_at = None;
        for e in 1..=20u64 {
            let r =
                net.run_epoch_colocated(&mut server, &mut gov, victim, &w, &[(sibling, &virus)]);
            if r.breaker_state == BreakerState::Tripped {
                tripped_at = Some(e);
                break;
            }
        }
        assert!(tripped_at.is_some(), "the droop EWMA must trip the breaker");
        assert_eq!(net.stats().attacker_quarantines, 0);
        assert_eq!(net.stats().first_detection_epoch, tripped_at);
        assert_eq!(
            gov.stats().last_trip_attribution,
            Some(crate::safety::TenantAttribution::Attacker)
        );
    }

    #[test]
    fn anomalous_droop_tightens_the_sentinel_cadence() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let (victim, sibling) = victim_and_sibling(&server);
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::hardened());
        let w = light_workload();
        let virus = virus_neighbor();
        for _ in 0..8 {
            net.run_epoch_colocated(&mut server, &mut gov, victim, &w, &[(sibling, &virus)]);
        }
        // Under the relaxed every-10 cadence no sentinel would have run
        // yet; the droop anomaly tightened it to every 2 epochs.
        assert_eq!(net.stats().cadence_tightenings, 1, "one tighten transition");
        assert!(
            net.sentinel_stats().checks >= 2,
            "tightened cadence ran sentinels early: {:?}",
            net.sentinel_stats()
        );
        // Once the attacker is quarantined and the EWMA decays, the
        // cadence relaxes again without a second transition being counted
        // as a new event until the next anomaly.
        for _ in 0..20 {
            net.run_epoch(&mut server, &mut gov, victim, &w);
        }
        assert_eq!(net.stats().cadence_tightenings, 1);
    }
}
