//! The assembled safety net around the online governor.
//!
//! [`SafetyNet::run_epoch`] is the production epoch loop: choose a voltage
//! (nominal whenever the breaker is open), run the workload, project the
//! outcome through the observability boundary, feed the governor only
//! what production can see, interleave DMR sentinel checks, and fold all
//! observables into the circuit breaker. A trip restores the governor
//! margin and rolls the DRAM refresh period back to nominal; the breaker's
//! hold-then-cooldown hysteresis re-earns the relaxed settings.

use crate::governor::OnlineGovernor;
use crate::safety::observe::{ErrorReport, Observation};
use char_fw::resilience::{recover_board, RetryPolicy};
use char_fw::safety::{
    BreakerConfig, BreakerState, CircuitBreaker, HealthSignal, SentinelRunner, SentinelStats,
    SentinelVerdict,
};
use dram_sim::array::DramArray;
use dram_sim::scrubber::ScrubberStats;
use power_model::units::{Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use telemetry::Level;
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::watchdog::{DeadlineWatchdog, WatchdogConfig, WatchdogStats};
use xgene_sim::workload::WorkloadProfile;

/// Safety-net tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyNetConfig {
    /// Circuit-breaker thresholds and hold/cooldown lengths.
    pub breaker: BreakerConfig,
    /// Deadline watchdog budget.
    pub watchdog: WatchdogConfig,
    /// Board-recovery retry schedule after a watchdog power cycle.
    pub retry: RetryPolicy,
    /// Run one DMR sentinel check every this many epochs (0 disables
    /// sentinels — not recommended below the guardband).
    pub sentinel_every_epochs: u32,
    /// Extra adaptive margin restored onto the governor when the breaker
    /// trips, in mV.
    pub trip_margin_widen_mv: u32,
    /// The relaxed DRAM refresh period used while the breaker is closed;
    /// an open breaker rolls back to the DDR3 nominal 64 ms.
    pub relaxed_trefp: Milliseconds,
}

impl SafetyNetConfig {
    /// Production defaults around the paper's safe point: sentinels every
    /// 10 epochs, a 30 mV margin restore per trip, and the 35× relaxed
    /// refresh period while healthy.
    pub fn dsn18() -> Self {
        SafetyNetConfig {
            breaker: BreakerConfig::dsn18(),
            watchdog: WatchdogConfig::dsn18(),
            retry: RetryPolicy::dsn18(),
            sentinel_every_epochs: 10,
            trip_margin_widen_mv: 30,
            relaxed_trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }
}

impl Default for SafetyNetConfig {
    fn default() -> Self {
        SafetyNetConfig::dsn18()
    }
}

/// Ground-truth bookkeeping for tests and post-hoc analysis. The control
/// path never reads this: it exists so experiments can *prove* the
/// detection coverage the net claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcAudit {
    /// True SDCs suffered by production workload epochs. These are
    /// invisible by construction — the net's answer to them is the
    /// sentinel cadence, not per-run detection.
    pub workload_true_sdcs: u64,
}

/// Aggregate net bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyNetStats {
    /// Epochs executed through the net.
    pub epochs: u64,
    /// Epochs spent at nominal because the breaker was open.
    pub nominal_epochs: u64,
    /// Refresh rollbacks to the DDR3 nominal period (one per trip).
    pub refresh_rollbacks: u64,
    /// Relaxed-refresh restores after a full recovery.
    pub refresh_restores: u64,
}

/// What one guarded epoch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Voltage commanded for the workload epoch.
    pub commanded: Millivolts,
    /// The epoch as production observed it.
    pub observation: Observation,
    /// Verdict of the sentinel check, if one was scheduled this epoch.
    pub sentinel: Option<SentinelVerdict>,
    /// Breaker state after folding this epoch in.
    pub breaker_state: BreakerState,
    /// Refresh period in force after this epoch.
    pub trefp: Milliseconds,
}

/// The assembled safety net.
#[derive(Debug, Clone)]
pub struct SafetyNet {
    config: SafetyNetConfig,
    breaker: CircuitBreaker,
    sentinel: SentinelRunner,
    watchdog: DeadlineWatchdog,
    epochs_since_sentinel: u32,
    /// Latest DRAM scrubber correction rate (corrections/epoch), fed via
    /// [`Self::feed_scrubber`]; folded into every breaker epoch.
    scrub_ce_rate: f64,
    last_scrub: Option<ScrubberStats>,
    audit: SdcAudit,
    stats: SafetyNetStats,
}

impl SafetyNet {
    /// A closed net with the default canary suite.
    pub fn new(config: SafetyNetConfig) -> Self {
        SafetyNet {
            config,
            breaker: CircuitBreaker::new(config.breaker),
            sentinel: SentinelRunner::default(),
            watchdog: DeadlineWatchdog::new(config.watchdog),
            epochs_since_sentinel: 0,
            scrub_ce_rate: 0.0,
            last_scrub: None,
            audit: SdcAudit::default(),
            stats: SafetyNetStats::default(),
        }
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Breaker trips so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// Sentinel bookkeeping.
    pub fn sentinel_stats(&self) -> SentinelStats {
        self.sentinel.stats()
    }

    /// Watchdog bookkeeping.
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog.stats()
    }

    /// Ground-truth audit (tests only — see [`SdcAudit`]).
    pub fn audit(&self) -> SdcAudit {
        self.audit
    }

    /// Net bookkeeping.
    pub fn stats(&self) -> SafetyNetStats {
        self.stats
    }

    /// The refresh period currently authorized: relaxed while the breaker
    /// permits scaled operation, the DDR3 nominal 64 ms otherwise.
    pub fn current_trefp(&self) -> Milliseconds {
        if self.breaker.allows_scaling() {
            self.config.relaxed_trefp
        } else {
            Milliseconds::DDR3_NOMINAL_TREFP
        }
    }

    /// Applies the authorized refresh period to a DRAM array.
    pub fn apply_refresh(&self, dram: &mut DramArray) {
        dram.set_trefp(self.current_trefp());
    }

    /// Feeds the DRAM scrubber's cumulative stats, converting the delta
    /// since the previous feed into a corrections-per-epoch rate that the
    /// breaker folds into its EWMA. `epochs` is how many epochs the delta
    /// spans.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is not strictly positive.
    pub fn feed_scrubber(&mut self, stats: ScrubberStats, epochs: f64) {
        assert!(epochs > 0.0, "the feed must span at least part of an epoch");
        let prev = self.last_scrub.unwrap_or_default();
        let corrections = stats.corrections.saturating_sub(prev.corrections);
        self.scrub_ce_rate = corrections as f64 / epochs;
        self.last_scrub = Some(stats);
        telemetry::gauge!("scrub_ce_rate_per_epoch", self.scrub_ce_rate);
    }

    /// Runs one guarded epoch of `workload` on `core`: voltage choice
    /// (nominal when the breaker is open), execution, observation through
    /// the watchdog, governor feedback from observables only, scheduled
    /// sentinel checks, and the breaker update with its trip/recovery
    /// actions.
    pub fn run_epoch(
        &mut self,
        server: &mut XGene2Server,
        governor: &mut OnlineGovernor,
        core: CoreId,
        workload: &WorkloadProfile,
    ) -> EpochReport {
        self.stats.epochs += 1;
        let commanded = if self.breaker.allows_scaling() {
            if !self.breaker.allows_relaxation() {
                // Watch: keep running scaled but freeze margin narrowing.
                governor.hold_relaxation();
            }
            governor.choose(workload)
        } else {
            self.stats.nominal_epochs += 1;
            Millivolts::XGENE2_NOMINAL
        };
        server
            .set_pmd_voltage(commanded)
            .expect("net voltages stay within the regulator range");

        let outcome = server.run_on_core(core, workload).outcome;
        if outcome == RunOutcome::SilentDataCorruption {
            // Ground truth only: production cannot see this branch.
            self.audit.workload_true_sdcs += 1;
        }
        let observation = Observation::from_outcome(outcome, &mut self.watchdog);
        if observation.timed_out() {
            recover_board(server, &self.config.retry);
        }
        governor.observe(commanded, observation.as_feedback());

        let mut signal = HealthSignal {
            ce_events: u32::from(
                observation
                    == Observation::Completed {
                        report: ErrorReport::Corrected,
                    },
            ),
            scrub_ce_rate: self.scrub_ce_rate,
            ue: observation
                == Observation::Completed {
                    report: ErrorReport::Uncorrectable,
                },
            sdc_checksum: false,
            sdc_vote: false,
            timeout: observation.timed_out(),
        };

        let mut sentinel_verdict = None;
        if self.config.sentinel_every_epochs > 0 {
            self.epochs_since_sentinel += 1;
            if self.epochs_since_sentinel >= self.config.sentinel_every_epochs {
                self.epochs_since_sentinel = 0;
                let report = self.sentinel.check(server, core.pmd());
                recover_board(server, &self.config.retry);
                signal.ce_events += report.ce_events;
                signal.ue |= report.verdict == SentinelVerdict::HwError;
                signal.timeout |= report.verdict == SentinelVerdict::Timeout;
                signal.sdc_checksum = report.verdict == SentinelVerdict::ChecksumMismatch;
                signal.sdc_vote = report.verdict == SentinelVerdict::VoteSplit;
                sentinel_verdict = Some(report.verdict);
            }
        }

        let scaling_before = self.breaker.allows_scaling();
        let tripped_before = self.breaker.state() == BreakerState::Tripped;
        let state = self.breaker.record_epoch(&signal);
        if state == BreakerState::Tripped && !tripped_before {
            let reason = self
                .breaker
                .last_trip_reason()
                .expect("a fresh trip always records its reason");
            governor.record_breaker_trip(reason);
            governor.widen_margin(self.config.trip_margin_widen_mv);
            if scaling_before {
                self.stats.refresh_rollbacks += 1;
                telemetry::event!(
                    Level::Warn,
                    "refresh_rollback",
                    reason = reason.to_string(),
                    trefp_ms = Milliseconds::DDR3_NOMINAL_TREFP.as_f64(),
                );
                telemetry::counter!("refresh_rollbacks_total");
            }
        } else if !scaling_before && self.breaker.allows_scaling() {
            self.stats.refresh_restores += 1;
            telemetry::event!(
                Level::Info,
                "refresh_restore",
                trefp_ms = self.config.relaxed_trefp.as_f64(),
            );
            telemetry::counter!("refresh_restores_total");
        }

        EpochReport {
            commanded,
            observation,
            sentinel: sentinel_verdict,
            breaker_state: state,
            trefp: self.current_trefp(),
        }
    }
}

impl Default for SafetyNet {
    fn default() -> Self {
        SafetyNet::new(SafetyNetConfig::dsn18())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::GovernorConfig;
    use xgene_sim::fault::FaultPlan;
    use xgene_sim::sigma::SigmaBin;

    fn reactive_governor() -> OnlineGovernor {
        OnlineGovernor::new(None, None, GovernorConfig::conservative())
    }

    fn light_workload() -> WorkloadProfile {
        WorkloadProfile::builder("light").activity(0.2).build()
    }

    #[test]
    fn healthy_epochs_stay_scaled_and_relaxed() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 90);
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::dsn18());
        let w = light_workload();
        for _ in 0..30 {
            let r = net.run_epoch(&mut server, &mut gov, core, &w);
            assert_eq!(r.breaker_state, BreakerState::Healthy);
            assert!(r.commanded < Millivolts::XGENE2_NOMINAL);
            assert_eq!(r.trefp, Milliseconds::DSN18_RELAXED_TREFP);
        }
        assert_eq!(net.breaker_trips(), 0);
        assert_eq!(net.sentinel_stats().checks, 3, "one check per 10 epochs");
        assert_eq!(net.sentinel_stats().undetected_sdcs, 0);
        assert_eq!(net.stats().nominal_epochs, 0);
    }

    #[test]
    fn a_detected_sentinel_sdc_trips_margin_and_refresh() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 91);
        // The first sentinel canary run is forced silent; the check must
        // catch it and open the breaker.
        server.install_fault_plan(FaultPlan::quiet(91).force_sdc_at_run(1));
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let margin_before = gov.dynamic_margin_mv();
        let config = SafetyNetConfig {
            sentinel_every_epochs: 1,
            ..SafetyNetConfig::dsn18()
        };
        let mut net = SafetyNet::new(config);
        let w = light_workload();
        let r = net.run_epoch(&mut server, &mut gov, core, &w);
        assert!(matches!(
            r.sentinel,
            Some(SentinelVerdict::VoteSplit | SentinelVerdict::ChecksumMismatch)
        ));
        assert_eq!(r.breaker_state, BreakerState::Tripped);
        assert_eq!(r.trefp, Milliseconds::DDR3_NOMINAL_TREFP, "rolled back");
        assert_eq!(net.breaker_trips(), 1);
        assert_eq!(net.stats().refresh_rollbacks, 1);
        assert_eq!(gov.stats().breaker_trips, 1);
        assert_eq!(
            gov.dynamic_margin_mv(),
            margin_before + config.trip_margin_widen_mv
        );
        // While open, epochs run at nominal.
        let r = net.run_epoch(&mut server, &mut gov, core, &w);
        assert_eq!(r.commanded, Millivolts::XGENE2_NOMINAL);
        assert!(net.stats().nominal_epochs >= 1);
    }

    #[test]
    fn trip_recovers_through_cooldown_and_restores_refresh() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 92);
        // Run draw 0 is the first workload epoch; draws 1–2 are the first
        // sentinel's canary pair. Force the first canary silent.
        server.install_fault_plan(FaultPlan::quiet(92).force_sdc_at_run(1));
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let config = SafetyNetConfig {
            breaker: BreakerConfig {
                trip_hold_epochs: 4,
                cooldown_epochs: 3,
                ..BreakerConfig::dsn18()
            },
            sentinel_every_epochs: 1,
            ..SafetyNetConfig::dsn18()
        };
        let mut net = SafetyNet::new(config);
        let w = light_workload();
        let mut states = Vec::new();
        for _ in 0..30 {
            states.push(net.run_epoch(&mut server, &mut gov, core, &w).breaker_state);
            if *states.last().unwrap() == BreakerState::Healthy && states.len() > 1 {
                break;
            }
        }
        assert!(states.contains(&BreakerState::Tripped), "{states:?}");
        assert!(states.contains(&BreakerState::Cooldown), "{states:?}");
        assert_eq!(*states.last().unwrap(), BreakerState::Healthy);
        assert_eq!(net.stats().refresh_restores, 1);
        assert_eq!(net.current_trefp(), Milliseconds::DSN18_RELAXED_TREFP);
        assert_eq!(net.breaker_trips(), 1, "one trip, one recovery");
    }

    #[test]
    fn scrubber_ce_rate_feeds_the_breaker() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 93);
        let core = server.chip().most_robust_core();
        let mut gov = reactive_governor();
        let mut net = SafetyNet::new(SafetyNetConfig::dsn18());
        let w = light_workload();
        // A scrubber correcting 3 words/epoch is far above the 0.5 trip
        // threshold: the EWMA must open the breaker within a few epochs.
        net.feed_scrubber(
            ScrubberStats {
                words_scrubbed: 10_000,
                corrections: 300,
                uncorrectable: 0,
            },
            100.0,
        );
        let mut tripped_at = None;
        for e in 0..20 {
            let r = net.run_epoch(&mut server, &mut gov, core, &w);
            if r.breaker_state == BreakerState::Tripped {
                tripped_at = Some(e);
                break;
            }
        }
        assert!(tripped_at.is_some(), "scrubber rate never tripped");
        assert_eq!(net.breaker_state(), BreakerState::Tripped,);
        // A later feed with no new corrections drops the rate again.
        net.feed_scrubber(
            ScrubberStats {
                words_scrubbed: 20_000,
                corrections: 300,
                uncorrectable: 0,
            },
            100.0,
        );
        assert_eq!(net.audit().workload_true_sdcs, 0);
    }

    #[test]
    fn refresh_application_follows_the_breaker() {
        use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
        use power_model::units::Celsius;
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            5,
        );
        let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
        let net = SafetyNet::new(SafetyNetConfig::dsn18());
        net.apply_refresh(&mut dram);
        assert_eq!(dram.trefp(), Milliseconds::DSN18_RELAXED_TREFP);
    }
}
