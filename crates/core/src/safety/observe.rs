//! The observability boundary between characterization and production.
//!
//! Characterization campaigns compare against golden references offline,
//! so they can label every run with its true [`RunOutcome`] — including
//! [`RunOutcome::SilentDataCorruption`], which by definition produces no
//! hardware error report. A production system has none of that: it sees a
//! run either complete (with at most an ECC error report) or miss its
//! deadline. [`Observation::from_outcome`] performs that information-
//! destroying projection explicitly, so everything downstream of it is
//! honest about what a deployed governor can actually know.

use serde::{Deserialize, Serialize};
use xgene_sim::fault::RunOutcome;
use xgene_sim::watchdog::DeadlineWatchdog;

/// What the hardware error-reporting machinery said about a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorReport {
    /// No error reported.
    None,
    /// A corrected error was reported (ECC / pipeline replay).
    Corrected,
    /// An uncorrectable error was reported.
    Uncorrectable,
}

/// One epoch as production observes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Observation {
    /// The run completed before its deadline.
    Completed {
        /// The hardware error report attached to the completion.
        report: ErrorReport,
    },
    /// The deadline expired: the watchdog fired and the board was
    /// power-cycled.
    TimedOut,
}

impl Observation {
    /// Projects an oracle outcome through the deadline watchdog onto what
    /// production observes. The crucial line is the silent corruption:
    /// it completes with **no** error report and is indistinguishable
    /// from a correct run here — only a sentinel checksum can unmask it.
    pub fn from_outcome(outcome: RunOutcome, watchdog: &mut DeadlineWatchdog) -> Self {
        if watchdog.guard(outcome).timed_out() {
            return Observation::TimedOut;
        }
        let report = match outcome {
            RunOutcome::CorrectableError => ErrorReport::Corrected,
            RunOutcome::UncorrectableError => ErrorReport::Uncorrectable,
            RunOutcome::Correct | RunOutcome::SilentDataCorruption => ErrorReport::None,
            // needs_reset outcomes never reach here.
            RunOutcome::Crash => unreachable!("crashes time out"),
        };
        Observation::Completed { report }
    }

    /// The outcome a production feedback loop may legitimately feed its
    /// governor: the observable projection, NOT the oracle label. An
    /// undetected SDC maps to `Correct` — the honest lie the sentinels
    /// exist to correct.
    pub fn as_feedback(self) -> RunOutcome {
        match self {
            Observation::Completed {
                report: ErrorReport::None,
            } => RunOutcome::Correct,
            Observation::Completed {
                report: ErrorReport::Corrected,
            } => RunOutcome::CorrectableError,
            Observation::Completed {
                report: ErrorReport::Uncorrectable,
            } => RunOutcome::UncorrectableError,
            Observation::TimedOut => RunOutcome::Crash,
        }
    }

    /// Whether the watchdog had to fire.
    pub fn timed_out(self) -> bool {
        self == Observation::TimedOut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdc_is_observationally_identical_to_correct() {
        let mut wd = DeadlineWatchdog::default();
        let clean = Observation::from_outcome(RunOutcome::Correct, &mut wd);
        let silent = Observation::from_outcome(RunOutcome::SilentDataCorruption, &mut wd);
        assert_eq!(clean, silent, "the observability boundary erases SDCs");
        assert_eq!(silent.as_feedback(), RunOutcome::Correct);
    }

    #[test]
    fn crash_projects_to_timeout_and_feeds_back_as_crash() {
        let mut wd = DeadlineWatchdog::default();
        let o = Observation::from_outcome(RunOutcome::Crash, &mut wd);
        assert!(o.timed_out());
        assert_eq!(o.as_feedback(), RunOutcome::Crash);
        assert_eq!(wd.stats().timeouts, 1);
    }

    #[test]
    fn error_reports_survive_the_projection() {
        let mut wd = DeadlineWatchdog::default();
        assert_eq!(
            Observation::from_outcome(RunOutcome::CorrectableError, &mut wd).as_feedback(),
            RunOutcome::CorrectableError
        );
        assert_eq!(
            Observation::from_outcome(RunOutcome::UncorrectableError, &mut wd).as_feedback(),
            RunOutcome::UncorrectableError
        );
    }
}
