//! The production safety net: self-protecting below-guardband operation.
//!
//! §IV.D of the paper stops at "solid prediction will help establishing a
//! robust and efficient online voltage adoption mechanism". This module is
//! the robustness half of that sentence. A production system running at
//! the 930 mV / 920 mV / 35×-refresh safe point cannot see the oracle
//! outcome labels the characterization campaigns enjoy: a silent data
//! corruption *completes without any hardware error report*, and a crash
//! is only visible as the absence of completion. The safety net therefore
//! composes three detectors that need nothing but observables:
//!
//! * [`observe`] — the observability boundary itself: the deadline
//!   watchdog converts hangs into timeouts, and every completing outcome
//!   (including SDC) reads back as a completion plus at most an ECC error
//!   report;
//! * sentinels ([`char_fw::safety::SentinelRunner`], re-exported here) —
//!   periodic canary workloads with precomputed golden checksums run
//!   redundantly on both cores of a PMD, turning silent corruptions into
//!   checksum mismatches and vote splits;
//! * the circuit breaker ([`char_fw::safety::CircuitBreaker`]) — an EWMA
//!   CE-rate monitor over CPU error reports and DRAM scrubber correction
//!   rates, with a Healthy → Watch → Tripped → Cooldown state machine and
//!   hysteresis;
//!
//! and [`net`] wires them around the [`OnlineGovernor`]: a trip restores
//! the voltage margin and rolls the DRAM refresh period back to nominal;
//! recovery (trip hold, then clean cooldown) re-earns the relaxed
//! settings.
//!
//! [`OnlineGovernor`]: crate::governor::OnlineGovernor

pub mod net;
pub mod observe;

pub use char_fw::safety::{
    BreakerConfig, BreakerState, CircuitBreaker, HealthSignal, SentinelReport, SentinelRunner,
    SentinelStats, SentinelVerdict, TenantAttribution, TripReason,
};
pub use net::{EpochReport, SafetyNet, SafetyNetConfig, SafetyNetStats, SdcAudit};
pub use observe::{ErrorReport, Observation};
