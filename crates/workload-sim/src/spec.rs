//! SPEC CPU2006 activity descriptors.
//!
//! The paper characterizes Vmin for 10 SPEC CPU2006 programs (Fig. 4) and
//! builds its Fig. 5 power/performance trade-off from an 8-benchmark mix
//! (bwaves, cactusADM, dealII, gromacs, leslie3d, mcf, milc, namd). We
//! cannot run SPEC itself (proprietary); each program is represented by an
//! activity descriptor — switching activity, current swing, memory
//! intensity, IPC — calibrated so the Fig. 4 most-robust-core Vmin ranges
//! emerge from the chip model. Relative ordering follows each program's
//! published microarchitectural character (memory-bound codes like mcf
//! draw the least switching current; dense FP codes the most).

use xgene_sim::workload::WorkloadProfile;

/// One SPEC benchmark descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecBenchmark {
    /// SPEC program name.
    pub name: &'static str,
    /// Target droop score in `[0, 1]` (drives Vmin via the chip model).
    pub droop_score: f64,
    /// DRAM bandwidth utilization in `[0, 1]`.
    pub memory_intensity: f64,
    /// Nominal IPC.
    pub ipc: f64,
}

impl SpecBenchmark {
    /// Builds the electrical workload profile for this benchmark.
    pub fn profile(&self) -> WorkloadProfile {
        profile_for_score(self.name, self.droop_score, self.memory_intensity, self.ipc)
    }
}

/// Builds a non-resonant (ordinary program) profile with an exact droop
/// score: swing 0.5 with zero resonance alignment contributes 0.04, the
/// rest comes from activity. Real programs carry essentially no spectral
/// energy at the PDN resonance, which is exactly why the dI/dt virus beats
/// them (Fig. 6).
pub fn profile_for_score(
    name: &str,
    droop_score: f64,
    memory_intensity: f64,
    ipc: f64,
) -> WorkloadProfile {
    WorkloadProfile::builder(name)
        .activity(((droop_score - 0.04) / 0.75).clamp(0.0, 1.0))
        .swing(0.5)
        .resonance_alignment(0.0)
        .memory_intensity(memory_intensity)
        .ipc(ipc)
        .build()
}

/// The 10 SPEC CPU2006 programs of the Fig. 4 campaign, with calibrated
/// droop scores spanning `[0.2, 0.7]` (TTT Vmin 860–885 mV).
pub const SPEC_SUITE: [SpecBenchmark; 10] = [
    SpecBenchmark {
        name: "mcf",
        droop_score: 0.20,
        memory_intensity: 0.85,
        ipc: 0.45,
    },
    SpecBenchmark {
        name: "lbm",
        droop_score: 0.26,
        memory_intensity: 0.90,
        ipc: 0.60,
    },
    SpecBenchmark {
        name: "soplex",
        droop_score: 0.30,
        memory_intensity: 0.65,
        ipc: 0.75,
    },
    SpecBenchmark {
        name: "bwaves",
        droop_score: 0.34,
        memory_intensity: 0.70,
        ipc: 0.90,
    },
    SpecBenchmark {
        name: "leslie3d",
        droop_score: 0.42,
        memory_intensity: 0.60,
        ipc: 1.10,
    },
    SpecBenchmark {
        name: "cactusADM",
        droop_score: 0.48,
        memory_intensity: 0.45,
        ipc: 1.15,
    },
    SpecBenchmark {
        name: "gromacs",
        droop_score: 0.55,
        memory_intensity: 0.15,
        ipc: 1.60,
    },
    SpecBenchmark {
        name: "dealII",
        droop_score: 0.60,
        memory_intensity: 0.25,
        ipc: 1.55,
    },
    SpecBenchmark {
        name: "namd",
        droop_score: 0.66,
        memory_intensity: 0.10,
        ipc: 1.85,
    },
    SpecBenchmark {
        name: "milc",
        droop_score: 0.70,
        memory_intensity: 0.55,
        ipc: 1.20,
    },
];

/// The 8-benchmark mix of Fig. 5: bwaves, cactusADM, dealII, gromacs,
/// leslie3d, mcf, milc, namd.
pub fn fig5_mix() -> Vec<SpecBenchmark> {
    const MIX: [&str; 8] = [
        "bwaves",
        "cactusADM",
        "dealII",
        "gromacs",
        "leslie3d",
        "mcf",
        "milc",
        "namd",
    ];
    SPEC_SUITE
        .iter()
        .filter(|b| MIX.contains(&b.name))
        .cloned()
        .collect()
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static SpecBenchmark> {
    SPEC_SUITE.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use xgene_sim::sigma::{ChipProfile, SigmaBin};

    #[test]
    fn profiles_reproduce_their_droop_scores() {
        for b in &SPEC_SUITE {
            let p = b.profile();
            assert!(
                (p.droop_score() - b.droop_score).abs() < 1e-9,
                "{}: {} vs {}",
                b.name,
                p.droop_score(),
                b.droop_score
            );
        }
    }

    #[test]
    fn fig4_ttt_vmin_range() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let vmins: Vec<u32> = SPEC_SUITE
            .iter()
            .map(|b| {
                ttt.vmin(core, &b.profile(), Megahertz::XGENE2_NOMINAL)
                    .as_u32()
            })
            .collect();
        let min = *vmins.iter().min().unwrap();
        let max = *vmins.iter().max().unwrap();
        assert!((858..=862).contains(&min), "min Vmin {min}");
        assert!((883..=887).contains(&max), "max Vmin {max}");
    }

    #[test]
    fn mcf_is_the_most_undervoltable() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let mcf = ttt.vmin(
            core,
            &by_name("mcf").unwrap().profile(),
            Megahertz::XGENE2_NOMINAL,
        );
        for b in &SPEC_SUITE {
            let v = ttt.vmin(core, &b.profile(), Megahertz::XGENE2_NOMINAL);
            assert!(v >= mcf, "{} has lower Vmin than mcf", b.name);
        }
    }

    #[test]
    fn fig5_mix_has_eight_members() {
        let mix = fig5_mix();
        assert_eq!(mix.len(), 8);
        assert!(mix.iter().any(|b| b.name == "mcf"));
        assert!(!mix.iter().any(|b| b.name == "soplex"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("milc").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn workload_to_workload_trends_hold_across_chips() {
        // The paper: "workload-to-workload variation follows similar trends
        // across the 3 chips" — orderings agree.
        let core_vmins = |bin| {
            let chip = ChipProfile::corner(bin);
            let core = chip.most_robust_core();
            SPEC_SUITE
                .iter()
                .map(|b| {
                    chip.vmin(core, &b.profile(), Megahertz::XGENE2_NOMINAL)
                        .as_u32()
                })
                .collect::<Vec<_>>()
        };
        let ttt = core_vmins(SigmaBin::Ttt);
        let tff = core_vmins(SigmaBin::Tff);
        let tss = core_vmins(SigmaBin::Tss);
        for i in 1..ttt.len() {
            assert!(ttt[i] >= ttt[i - 1]);
            assert!(tff[i] >= tff[i - 1]);
            assert!(tss[i] >= tss[i - 1]);
        }
    }
}
