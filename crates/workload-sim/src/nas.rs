//! NAS Parallel Benchmark activity descriptors.
//!
//! Fig. 6 compares the Vmin of the GA-evolved EM virus against the NAS
//! suite: the virus sits strictly above every NAS kernel. As with SPEC,
//! each kernel is an activity descriptor calibrated from its known
//! character (EP is compute-dense, CG/IS are memory/irregular, FT/MG are
//! bandwidth-heavy transforms).

use crate::spec::profile_for_score;
use xgene_sim::workload::WorkloadProfile;

/// One NAS kernel descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct NasBenchmark {
    /// Kernel name (NPB 3.x naming).
    pub name: &'static str,
    /// Target droop score in `[0, 1]`.
    pub droop_score: f64,
    /// DRAM bandwidth utilization in `[0, 1]`.
    pub memory_intensity: f64,
    /// Nominal IPC.
    pub ipc: f64,
}

impl NasBenchmark {
    /// Builds the electrical workload profile for this kernel.
    pub fn profile(&self) -> WorkloadProfile {
        profile_for_score(self.name, self.droop_score, self.memory_intensity, self.ipc)
    }
}

/// The NAS kernels used in the Fig. 6 comparison.
pub const NAS_SUITE: [NasBenchmark; 8] = [
    NasBenchmark {
        name: "is",
        droop_score: 0.24,
        memory_intensity: 0.80,
        ipc: 0.55,
    },
    NasBenchmark {
        name: "cg",
        droop_score: 0.30,
        memory_intensity: 0.75,
        ipc: 0.65,
    },
    NasBenchmark {
        name: "mg",
        droop_score: 0.42,
        memory_intensity: 0.70,
        ipc: 0.95,
    },
    NasBenchmark {
        name: "ft",
        droop_score: 0.50,
        memory_intensity: 0.65,
        ipc: 1.05,
    },
    NasBenchmark {
        name: "sp",
        droop_score: 0.55,
        memory_intensity: 0.50,
        ipc: 1.15,
    },
    NasBenchmark {
        name: "bt",
        droop_score: 0.60,
        memory_intensity: 0.45,
        ipc: 1.25,
    },
    NasBenchmark {
        name: "lu",
        droop_score: 0.63,
        memory_intensity: 0.40,
        ipc: 1.30,
    },
    NasBenchmark {
        name: "ep",
        droop_score: 0.68,
        memory_intensity: 0.05,
        ipc: 1.75,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use xgene_sim::sigma::{ChipProfile, SigmaBin};
    use xgene_sim::workload::WorkloadProfile;

    fn virus() -> WorkloadProfile {
        WorkloadProfile::builder("em-virus")
            .activity(0.5)
            .swing(1.0)
            .resonance_alignment(1.0)
            .build()
    }

    #[test]
    fn fig6_virus_dominates_every_nas_kernel() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let virus_vmin = ttt.vmin(core, &virus(), Megahertz::XGENE2_NOMINAL);
        for kernel in &NAS_SUITE {
            let v = ttt.vmin(core, &kernel.profile(), Megahertz::XGENE2_NOMINAL);
            assert!(
                virus_vmin > v,
                "{}: NAS Vmin {v} should be below virus {virus_vmin}",
                kernel.name
            );
        }
    }

    #[test]
    fn nas_vmins_span_a_plausible_band() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        for kernel in &NAS_SUITE {
            let v = ttt
                .vmin(core, &kernel.profile(), Megahertz::XGENE2_NOMINAL)
                .as_u32();
            assert!((855..=890).contains(&v), "{} Vmin {v}", kernel.name);
        }
    }

    #[test]
    fn ep_draws_more_current_than_is() {
        let ep = NAS_SUITE.iter().find(|k| k.name == "ep").unwrap().profile();
        let is = NAS_SUITE.iter().find(|k| k.name == "is").unwrap().profile();
        assert!(ep.droop_score() > is.droop_score());
    }
}
