//! Multi-tenant co-location: placing an adversarial tenant next to a
//! victim workload on the same PMD.
//!
//! The X-Gene2 shares one voltage rail across all PMDs and one L2 per
//! PMD pair, so a cloud-style scheduler that packs two tenants onto one
//! PMD gives the neighbour a direct PDN coupling path to the victim
//! (see `ChipProfile::cross_tenant_droop_mv` in `xgene-sim`). This
//! module is the scheduler-side view of that arrangement: who runs
//! where, which tenant is trusted, and what a co-location schedule
//! hands to `XGene2Server::run_colocated`.

use serde::{Deserialize, Serialize};
use std::fmt;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// The trust class of a co-located tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TenantKind {
    /// The workload whose correctness the operator guarantees.
    #[default]
    Victim,
    /// An untrusted neighbour — potentially a dI/dt adversary.
    Attacker,
}

impl fmt::Display for TenantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TenantKind::Victim => "victim",
            TenantKind::Attacker => "attacker",
        })
    }
}

/// One tenant as the scheduler sees it: a trust class plus the activity
/// profile its PMU telemetry exposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Trust class.
    pub kind: TenantKind,
    /// The tenant's observable activity profile.
    pub profile: WorkloadProfile,
}

/// A two-tenant placement on one PMD: the victim on its assigned core,
/// the co-tenant on the PMD's sibling core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmdColocation {
    /// Core the victim runs on.
    pub victim_core: CoreId,
    /// The sibling core of the same PMD, where the co-tenant lands.
    pub neighbor_core: CoreId,
}

impl PmdColocation {
    /// Packs a co-tenant onto the same PMD as `victim_core` — the
    /// tightest placement a pair-wise scheduler can produce, and the one
    /// with the strongest PDN coupling.
    pub fn same_pmd(victim_core: CoreId) -> Self {
        PmdColocation {
            victim_core,
            neighbor_core: sibling_core(victim_core),
        }
    }
}

/// The sibling core sharing `core`'s PMD (and therefore its L2 and the
/// strongest rail coupling).
pub fn sibling_core(core: CoreId) -> CoreId {
    let [a, b] = core.pmd().cores();
    if a == core {
        b
    } else {
        a
    }
}

/// A benign co-tenant: busy, but with its current swing spread far off
/// the PDN resonance — the profile an ordinary cloud neighbour exposes.
/// Useful as the control arm of adversarial experiments.
pub fn benign_neighbor() -> WorkloadProfile {
    WorkloadProfile::builder("benign-neighbor")
        .activity(0.6)
        .swing(0.4)
        .resonance_alignment(0.0)
        .build()
}

/// An epoch-by-epoch co-location schedule: the victim's profile plus an
/// optional untrusted neighbour. `None` models a dedicated (or vacated)
/// PMD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationSchedule {
    /// Placement of the two tenants.
    pub placement: PmdColocation,
    /// The victim tenant.
    pub victim: Tenant,
    /// The untrusted neighbour, if the PMD is shared this epoch.
    pub neighbor: Option<Tenant>,
}

impl ColocationSchedule {
    /// A dedicated-PMD schedule: the victim runs alone.
    pub fn dedicated(victim_core: CoreId, victim: WorkloadProfile) -> Self {
        ColocationSchedule {
            placement: PmdColocation::same_pmd(victim_core),
            victim: Tenant {
                kind: TenantKind::Victim,
                profile: victim,
            },
            neighbor: None,
        }
    }

    /// A shared-PMD schedule with an untrusted neighbour on the sibling
    /// core.
    pub fn shared(victim_core: CoreId, victim: WorkloadProfile, neighbor: WorkloadProfile) -> Self {
        ColocationSchedule {
            placement: PmdColocation::same_pmd(victim_core),
            victim: Tenant {
                kind: TenantKind::Victim,
                profile: victim,
            },
            neighbor: Some(Tenant {
                kind: TenantKind::Attacker,
                profile: neighbor,
            }),
        }
    }

    /// Evicts the neighbour (attacker quarantine leaves the victim with a
    /// dedicated PMD).
    pub fn evict_neighbor(&mut self) -> Option<Tenant> {
        self.neighbor.take()
    }

    /// The co-tenant assignments to hand to
    /// `XGene2Server::run_colocated` alongside the victim.
    pub fn co_tenant_assignments(&self) -> Vec<(CoreId, &WorkloadProfile)> {
        self.neighbor
            .iter()
            .map(|t| (self.placement.neighbor_core, &t.profile))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_is_the_other_core_of_the_same_pmd() {
        for i in 0..8u8 {
            let core = CoreId::new(i);
            let sib = sibling_core(core);
            assert_ne!(core, sib);
            assert_eq!(core.pmd(), sib.pmd());
            assert_eq!(sibling_core(sib), core);
        }
    }

    #[test]
    fn shared_schedule_exposes_one_assignment_until_eviction() {
        let victim = WorkloadProfile::builder("victim").activity(0.4).build();
        let mut schedule = ColocationSchedule::shared(CoreId::new(2), victim, benign_neighbor());
        assert_eq!(schedule.placement.neighbor_core.pmd().index(), 1);
        let assignments = schedule.co_tenant_assignments();
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].0, schedule.placement.neighbor_core);
        let evicted = schedule.evict_neighbor().expect("a neighbour was placed");
        assert_eq!(evicted.kind, TenantKind::Attacker);
        assert!(schedule.co_tenant_assignments().is_empty());
    }

    #[test]
    fn benign_neighbor_couples_no_resonant_energy() {
        assert_eq!(benign_neighbor().resonant_energy(), 0.0);
    }
}
