//! The multi-threaded jammer-detector application (§IV.D).
//!
//! The paper's end-to-end exploitation workload monitors the wireless
//! spectrum with software-defined-radio modules and flags devices that
//! could mount denial-of-service attacks. Four parallel instances keep the
//! CPU and memory busy while a quality-of-service bound (detection latency)
//! must hold. We implement the detector for real: a synthetic SDR front
//! end produces IQ-like sample blocks containing noise plus scheduled
//! jammer bursts; each instance runs Hann-windowed FFTs, tracks a noise
//! floor per bin, and raises detections when a band exceeds the floor —
//! then detection latency is measured against the QoS bound.

use crate::dsp::power_spectrum;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::thread;
use xgene_sim::workload::WorkloadProfile;

/// FFT block size.
const BLOCK: usize = 1024;

/// Configuration of one detector run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JammerConfig {
    /// Parallel detector instances (the paper runs 4).
    pub instances: usize,
    /// Sample blocks processed per instance.
    pub blocks: usize,
    /// Jammer burst every this many blocks.
    pub burst_period: usize,
    /// Burst length in blocks.
    pub burst_len: usize,
    /// QoS bound: a burst must be flagged within this many blocks.
    pub qos_blocks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl JammerConfig {
    /// The paper's setup: 4 instances, with a QoS bound of 3 blocks.
    pub fn dsn18() -> Self {
        JammerConfig {
            instances: 4,
            blocks: 400,
            burst_period: 40,
            burst_len: 6,
            qos_blocks: 3,
            seed: 2018,
        }
    }
}

/// Result of one detector instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Number of injected jammer bursts.
    pub bursts: usize,
    /// Bursts detected within the QoS bound.
    pub detected_in_time: usize,
    /// Bursts detected late.
    pub detected_late: usize,
    /// Bursts missed entirely.
    pub missed: usize,
    /// False alarms on clean blocks.
    pub false_alarms: usize,
    /// Mean detection latency in blocks over detected bursts.
    pub mean_latency_blocks: f64,
}

impl InstanceReport {
    /// Whether every burst met the QoS bound.
    pub fn qos_met(&self) -> bool {
        self.missed == 0 && self.detected_late == 0
    }
}

/// Aggregated detector result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JammerReport {
    /// Per-instance reports.
    pub instances: Vec<InstanceReport>,
}

impl JammerReport {
    /// Whether the whole deployment met QoS.
    pub fn qos_met(&self) -> bool {
        self.instances.iter().all(InstanceReport::qos_met)
    }

    /// Detection rate across instances.
    pub fn detection_rate(&self) -> f64 {
        let bursts: usize = self.instances.iter().map(|i| i.bursts).sum();
        if bursts == 0 {
            return 1.0;
        }
        let found: usize = self
            .instances
            .iter()
            .map(|i| i.detected_in_time + i.detected_late)
            .sum();
        found as f64 / bursts as f64
    }
}

/// The CPU-side activity profile of the 4-instance deployment (drives the
/// power model; the jammer's DRAM utilization is ~10.7 %).
pub fn profile() -> WorkloadProfile {
    WorkloadProfile::builder("jammer-detector")
        .activity(0.62)
        .swing(0.35)
        .resonance_alignment(0.0)
        .memory_intensity(0.107)
        .ipc(1.3)
        .build()
}

/// Runs the detector with one OS thread per instance.
pub fn run(config: &JammerConfig) -> JammerReport {
    let handles: Vec<_> = (0..config.instances)
        .map(|i| {
            let cfg = *config;
            thread::spawn(move || run_instance(&cfg, i as u64))
        })
        .collect();
    let instances = handles
        .into_iter()
        .map(|h| h.join().expect("detector instance panicked"))
        .collect();
    JammerReport { instances }
}

/// Runs a single detector instance (deterministic in `config.seed` + id).
pub fn run_instance(config: &JammerConfig, instance_id: u64) -> InstanceReport {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(instance_id * 7919));
    // Each instance watches a different jammer center bin.
    let jam_bin = 100 + (instance_id as usize * 97) % (BLOCK / 2 - 200);

    let mut noise_floor = vec![1.0f64; BLOCK / 2];
    let mut report = InstanceReport {
        bursts: 0,
        detected_in_time: 0,
        detected_late: 0,
        missed: 0,
        false_alarms: 0,
        mean_latency_blocks: 0.0,
    };
    let mut latency_sum = 0usize;
    let mut latency_count = 0usize;
    // State of the currently active burst: (start_block, detected_at).
    let mut active_burst: Option<(usize, Option<usize>)> = None;

    for block_idx in 0..config.blocks {
        let in_burst = block_idx % config.burst_period < config.burst_len
            && block_idx / config.burst_period > 0;
        // New burst begins.
        if in_burst && block_idx % config.burst_period == 0 {
            // (handled below via block_idx boundaries)
        }
        let burst_starts = in_burst && block_idx % config.burst_period == 0;
        if !in_burst {
            if let Some((start, detected)) = active_burst.take() {
                report.bursts += 1;
                match detected {
                    Some(at) => {
                        let latency = at - start;
                        latency_sum += latency;
                        latency_count += 1;
                        if latency <= config.qos_blocks {
                            report.detected_in_time += 1;
                        } else {
                            report.detected_late += 1;
                        }
                    }
                    None => report.missed += 1,
                }
            }
        } else if burst_starts || active_burst.is_none() {
            active_burst = Some((block_idx, active_burst.and_then(|(_, d)| d)));
        }

        // Synthesize the block: white noise + optional jammer tone sweep.
        let samples: Vec<f64> = (0..BLOCK)
            .map(|i| {
                let noise: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                let jam = if in_burst {
                    3.0 * (2.0 * std::f64::consts::PI * jam_bin as f64 * i as f64 / BLOCK as f64)
                        .sin()
                } else {
                    0.0
                };
                noise * 0.7 + jam
            })
            .collect();

        let spectrum = power_spectrum(&samples);
        // Detection: any bin > threshold × its tracked noise floor.
        let mut hit = false;
        for (bin, p) in spectrum.iter().enumerate().skip(4) {
            if *p > 12.0 * noise_floor[bin] {
                hit = true;
            } else {
                // Only adapt the floor on non-anomalous bins.
                noise_floor[bin] = 0.95 * noise_floor[bin] + 0.05 * p.max(1e-12);
            }
        }
        match (&mut active_burst, hit) {
            (Some((_, detected @ None)), true) => *detected = Some(block_idx),
            (None, true) => report.false_alarms += 1,
            _ => {}
        }
    }
    // Account a burst still active at the end.
    if let Some((start, detected)) = active_burst.take() {
        report.bursts += 1;
        match detected {
            Some(at) => {
                let latency = at - start;
                latency_sum += latency;
                latency_count += 1;
                if latency <= config.qos_blocks {
                    report.detected_in_time += 1;
                } else {
                    report.detected_late += 1;
                }
            }
            None => report.missed += 1,
        }
    }
    report.mean_latency_blocks = if latency_count == 0 {
        0.0
    } else {
        latency_sum as f64 / latency_count as f64
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_all_bursts_within_qos() {
        let report = run(&JammerConfig::dsn18());
        assert_eq!(report.instances.len(), 4);
        assert!(
            report.detection_rate() > 0.99,
            "rate {}",
            report.detection_rate()
        );
        assert!(report.qos_met(), "{:#?}", report.instances);
    }

    #[test]
    fn latency_is_prompt() {
        let r = run_instance(&JammerConfig::dsn18(), 0);
        assert!(r.bursts >= 8, "bursts {}", r.bursts);
        assert!(
            r.mean_latency_blocks <= 1.0,
            "latency {}",
            r.mean_latency_blocks
        );
    }

    #[test]
    fn false_alarm_rate_is_low() {
        let r = run_instance(&JammerConfig::dsn18(), 1);
        assert!(r.false_alarms <= 2, "false alarms {}", r.false_alarms);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_instance(&JammerConfig::dsn18(), 2);
        let b = run_instance(&JammerConfig::dsn18(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn profile_matches_fig9_load() {
        let p = profile();
        assert!((p.memory_intensity() - 0.107).abs() < 1e-9);
    }
}
