//! Data-pattern benchmark (DPBench) campaigns over the DRAM array.
//!
//! A DPBench round fills the array with a pattern, waits while refresh runs
//! at the configured TREFP, then reads everything back, counting corrected
//! and uncorrected errors. Multi-round campaigns (with re-randomized data
//! each round) accumulate the unique error locations — the Table I
//! measurement — because both cell polarities and worst-case neighborhoods
//! get exercised over rounds.

use dram_sim::array::{DramArray, ScrubReport};
use dram_sim::geometry::{BANKS_PER_CHIP, DATA_BYTES};
use dram_sim::patterns::DataPattern;
use serde::{Deserialize, Serialize};

/// Result of one DPBench round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpBenchRound {
    /// The pattern used.
    pub pattern: DataPattern,
    /// The array-wide scrub report.
    pub report: ScrubReport,
    /// Bit-error rate relative to the full 32 GiB array.
    pub ber: f64,
}

/// Result of a whole campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpBenchCampaign {
    /// Every executed round in order.
    pub rounds: Vec<DpBenchRound>,
    /// Unique error locations per bank accumulated over the campaign.
    pub unique_per_bank: [u64; BANKS_PER_CHIP],
    /// Total unique error locations.
    pub unique_total: usize,
    /// Total corrected errors.
    pub ce_total: u64,
    /// Total uncorrectable errors.
    pub ue_total: u64,
}

/// Runs one DPBench round: fill, wait `wait_factor` refresh periods, scrub.
pub fn run_round(dram: &mut DramArray, pattern: DataPattern, wait_factor: f64) -> DpBenchRound {
    dram.fill_pattern(pattern);
    dram.advance(dram.trefp().as_f64() * wait_factor);
    let report = dram.scrub();
    let ber = report.ber(DATA_BYTES * 8);
    DpBenchRound {
        pattern,
        report,
        ber,
    }
}

/// Runs a multi-round campaign with the paper's methodology: the four
/// standard patterns, with the random pattern re-seeded `random_rounds`
/// times to cover both cell polarities.
pub fn run_campaign(dram: &mut DramArray, random_rounds: u64, wait_factor: f64) -> DpBenchCampaign {
    dram.clear_error_log();
    let mut rounds = Vec::new();
    for pattern in [
        DataPattern::AllZeros,
        DataPattern::AllOnes,
        DataPattern::Checkerboard { inverted: false },
        DataPattern::Checkerboard { inverted: true },
    ] {
        rounds.push(run_round(dram, pattern, wait_factor));
    }
    for seed in 0..random_rounds {
        rounds.push(run_round(dram, DataPattern::Random { seed }, wait_factor));
    }
    let log = dram.error_log();
    DpBenchCampaign {
        unique_per_bank: log.unique_per_bank(),
        unique_total: log.unique_locations(),
        ce_total: log.ce_count(),
        ue_total: log.ue_count(),
        rounds,
    }
}

/// BER of each of the four standard patterns in one round each (the
/// Fig. 8a DPBench bars), returned as `(pattern, ber)`.
pub fn pattern_bers(dram: &mut DramArray, seed: u64) -> Vec<(DataPattern, f64)> {
    DataPattern::dpbench_suite(seed)
        .into_iter()
        .map(|p| {
            let round = run_round(dram, p, 1.5);
            (p, round.ber)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
    use dram_sim::retention::{TABLE1_50C, TABLE1_60C};
    use power_model::units::{Celsius, Milliseconds};

    fn dram(temp_c: f64, seed: u64) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            seed,
        );
        DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(temp_c))
    }

    #[test]
    fn campaign_reproduces_table1_at_60c() {
        let mut d = dram(60.0, 11);
        let campaign = run_campaign(&mut d, 6, 1.5);
        for (b, (got, expect)) in campaign.unique_per_bank.iter().zip(TABLE1_60C).enumerate() {
            let rel = (*got as f64 - expect).abs() / expect;
            assert!(rel < 0.12, "bank {b}: {got} vs paper {expect}");
        }
        assert_eq!(campaign.ue_total, 0, "SECDED corrects everything at 60 °C");
    }

    #[test]
    fn campaign_reproduces_table1_at_50c() {
        let mut d = dram(50.0, 11);
        let campaign = run_campaign(&mut d, 6, 1.5);
        let total: u64 = campaign.unique_per_bank.iter().sum();
        let expect: f64 = TABLE1_50C.iter().sum();
        let rel = (total as f64 - expect).abs() / expect;
        assert!(rel < 0.20, "total {total} vs paper {expect}");
    }

    #[test]
    fn random_round_has_highest_ber() {
        let mut d = dram(60.0, 12);
        let bers = pattern_bers(&mut d, 5);
        let random_ber = bers
            .iter()
            .find(|(p, _)| matches!(p, DataPattern::Random { .. }))
            .unwrap()
            .1;
        for (p, ber) in &bers {
            if !matches!(p, DataPattern::Random { .. }) {
                assert!(random_ber > *ber, "{p}: {ber} vs random {random_ber}");
            }
        }
    }

    #[test]
    fn nominal_refresh_yields_zero_ber() {
        let mut d = dram(60.0, 13);
        d.set_trefp(Milliseconds::DDR3_NOMINAL_TREFP);
        let bers = pattern_bers(&mut d, 5);
        for (p, ber) in bers {
            assert_eq!(ber, 0.0, "{p} at nominal refresh");
        }
    }

    #[test]
    fn more_random_rounds_find_more_unique_locations() {
        let mut d1 = dram(60.0, 14);
        let few = run_campaign(&mut d1, 1, 1.5);
        let mut d2 = dram(60.0, 14);
        let many = run_campaign(&mut d2, 6, 1.5);
        assert!(many.unique_total > few.unique_total);
    }
}
