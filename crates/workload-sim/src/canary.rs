//! Canary kernels for redundant-execution SDC sentinels.
//!
//! A silent data corruption is, by definition, invisible to the hardware
//! error reporting: the run completes, no CE/UE is logged, and the output
//! is simply wrong. The only way a production system operating below the
//! guardband can *observe* one is to run a workload whose correct output
//! is known in advance and compare. These canaries are that workload: tiny
//! deterministic integer/float kernels whose full execution folds into a
//! single 64-bit checksum, with the golden value precomputed at
//! construction so a sentinel check is one equality test.
//!
//! Two properties matter:
//!
//! * **Determinism** — the same kernel always produces the same checksum,
//!   on any host, so golden values can be computed once and reused across
//!   epochs, cores and (in DMR mode) compared between the two cores of a
//!   PMD;
//! * **Fault sensitivity** — any single-bit upset in the kernel's working
//!   set changes the checksum. The fold is FNV-1a over every intermediate
//!   word, so a flip anywhere in the stream avalanches into the digest.
//!
//! [`CanaryKernel::run_corrupted`] models what an SDC does to the kernel:
//! it flips one deterministic pseudo-random bit mid-stream and returns the
//! resulting (wrong) checksum, which the sentinel layer uses to emulate
//! corrupted executions without needing oracle access to outcomes.

use serde::{Deserialize, Serialize};
use xgene_sim::workload::{StressTarget, WorkloadProfile};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic checksum kernel with a precomputed golden value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanaryKernel {
    name: String,
    /// Working-set length in 64-bit words.
    words: usize,
    /// Seed of the input stream.
    seed: u64,
    /// Checksum of a fault-free execution.
    golden: u64,
}

impl CanaryKernel {
    /// Builds a kernel and precomputes its golden checksum.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(name: impl Into<String>, words: usize, seed: u64) -> Self {
        assert!(words > 0, "a canary needs a non-empty working set");
        let mut kernel = CanaryKernel {
            name: name.into(),
            words,
            seed,
            golden: 0,
        };
        kernel.golden = kernel.checksum(None);
        kernel
    }

    /// The integer-pipeline canary: multiply/rotate chains the ALUs see.
    pub fn int_alu() -> Self {
        CanaryKernel::new("canary-int", 2048, 0x1A5C_0FFE)
    }

    /// The streaming canary: a longer working set, representative of the
    /// cache-resident data an SDC would corrupt in flight.
    pub fn stream() -> Self {
        CanaryKernel::new("canary-stream", 8192, 0x5EED_CAFE)
    }

    /// The default sentinel pair: one short ALU-bound and one streaming
    /// canary, alternated by the sentinel scheduler.
    pub fn sentinel_suite() -> Vec<CanaryKernel> {
        vec![CanaryKernel::int_alu(), CanaryKernel::stream()]
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The precomputed golden checksum.
    pub fn golden(&self) -> u64 {
        self.golden
    }

    /// Electrical activity profile of the canary for the fault model: a
    /// moderate, mixed-stress load (sentinels must not themselves be
    /// viruses — they probe the operating point the *production* workload
    /// runs at, without dragging Vmin up).
    pub fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::builder(self.name.clone())
            .activity(0.55)
            .swing(0.35)
            .resonance_alignment(0.05)
            .memory_intensity(if self.words >= 4096 { 0.5 } else { 0.1 })
            .target(StressTarget::IntAlu)
            .build()
    }

    /// Executes the kernel fault-free and returns the checksum (always
    /// equal to [`Self::golden`]).
    pub fn run_clean(&self) -> u64 {
        self.checksum(None)
    }

    /// Executes the kernel with one single-bit upset injected at a
    /// position derived deterministically from `fault_seed`, returning the
    /// corrupted checksum. Guaranteed (and tested) to differ from golden
    /// for every seed: the flipped word enters the FNV fold directly.
    pub fn run_corrupted(&self, fault_seed: u64) -> u64 {
        let word = (splitmix64(fault_seed) % self.words as u64) as usize;
        let bit = (splitmix64(fault_seed ^ 0x9E37_79B9) % 64) as u32;
        self.checksum(Some((word, bit)))
    }

    /// The kernel body: an xorshift input stream pushed through a short
    /// integer pipeline, every intermediate folded into FNV-1a.
    fn checksum(&self, fault: Option<(usize, u32)>) -> u64 {
        let mut x = self.seed | 1;
        let mut acc: u64 = 0x2545_F491_4F6C_DD1D;
        let mut digest = FNV_OFFSET;
        for i in 0..self.words {
            // xorshift64 input stream.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // A dependent multiply-rotate-add chain: the kind of dataflow
            // whose corruption an SDC cannot hide from the fold.
            let mut v = x
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left((i % 63) as u32)
                .wrapping_add(acc);
            if let Some((word, bit)) = fault {
                if i == word {
                    v ^= 1u64 << bit;
                }
            }
            acc = acc.wrapping_add(v).rotate_left(7);
            for byte in v.to_le_bytes() {
                digest ^= u64::from(byte);
                digest = digest.wrapping_mul(FNV_PRIME);
            }
        }
        digest
    }
}

/// SplitMix64 finalizer — used to spread fault seeds over (word, bit)
/// positions without a generator state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_is_reproducible() {
        let a = CanaryKernel::int_alu();
        let b = CanaryKernel::int_alu();
        assert_eq!(a.golden(), b.golden());
        assert_eq!(a.run_clean(), a.golden());
        for _ in 0..5 {
            assert_eq!(a.run_clean(), a.golden(), "checksum is pure");
        }
    }

    #[test]
    fn suite_kernels_have_distinct_goldens() {
        let suite = CanaryKernel::sentinel_suite();
        assert_eq!(suite.len(), 2);
        assert_ne!(suite[0].golden(), suite[1].golden());
        assert_ne!(suite[0].name(), suite[1].name());
    }

    #[test]
    fn every_injected_fault_changes_the_checksum() {
        // The acceptance-critical property: a single-bit upset anywhere in
        // the stream is never absorbed by the fold.
        for kernel in CanaryKernel::sentinel_suite() {
            for fault_seed in 0..512u64 {
                let corrupted = kernel.run_corrupted(fault_seed);
                assert_ne!(
                    corrupted,
                    kernel.golden(),
                    "fault seed {fault_seed} collided with golden on {}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn distinct_faults_usually_produce_distinct_checksums() {
        let kernel = CanaryKernel::int_alu();
        let mut seen = std::collections::HashSet::new();
        for fault_seed in 0..256u64 {
            seen.insert(kernel.run_corrupted(fault_seed));
        }
        // (word, bit) positions collide across seeds, but far fewer than
        // half of them may alias.
        assert!(seen.len() > 128, "only {} distinct checksums", seen.len());
    }

    #[test]
    fn profile_is_moderate() {
        let p = CanaryKernel::stream().profile();
        assert!(p.droop_score() < 0.7, "sentinels must not be viruses");
        assert_eq!(p.target(), StressTarget::IntAlu);
    }

    #[test]
    fn serde_roundtrip_preserves_golden() {
        let kernel = CanaryKernel::stream();
        let text = serde::json::to_string(&kernel);
        let back: CanaryKernel = serde::json::from_str(&text).unwrap();
        assert_eq!(kernel, back);
        assert_eq!(back.run_clean(), back.golden());
    }
}
