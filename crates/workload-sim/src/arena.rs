//! A host-backed data arena over the simulated DRAM.
//!
//! Workload kernels keep their data in ordinary host memory (a `Vec<u64>`)
//! while every read and write is mirrored to the [`DramArray`] for refresh
//! bookkeeping, decay evaluation and ECC accounting. Linear indices are
//! interleaved across ranks and banks the way a real memory controller
//! stripes physical addresses, so a kernel's footprint samples weak cells
//! from every bank.

use dram_sim::array::DramArray;
use dram_sim::geometry::{BankId, RankId, WordAddr, COLS_PER_ROW, ROWS_PER_BANK};
use serde::{Deserialize, Serialize};

/// Maps a linear word index to an interleaved physical address:
/// rank, then bank, then column, then row — matching a controller that
/// stripes consecutive cache lines across channels and banks.
///
/// # Panics
///
/// Panics if the index exceeds the array capacity.
pub fn interleave(linear: u64) -> WordAddr {
    let rank = RankId::new((linear % 8) as u8);
    let rest = linear / 8;
    let bank = BankId::new((rest % 8) as u8);
    let rest = rest / 8;
    let col = (rest % COLS_PER_ROW as u64) as u16;
    let row = rest / COLS_PER_ROW as u64;
    assert!(
        row < ROWS_PER_BANK as u64,
        "linear index out of array range"
    );
    WordAddr::new(rank, bank, row as u32, col)
}

/// Access statistics of an arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Word reads performed.
    pub reads: u64,
    /// Word writes performed.
    pub writes: u64,
    /// Corrected single-bit errors encountered during reads.
    pub corrected_errors: u64,
    /// Uncorrectable errors encountered during reads.
    pub uncorrectable_errors: u64,
    /// Total decayed bits observed (before correction).
    pub flipped_bits: u64,
}

impl ArenaStats {
    /// Bit-error rate over the words this arena read.
    pub fn ber(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.flipped_bits as f64 / (self.reads as f64 * 72.0)
    }
}

/// A contiguous (in linear index space) region of DRAM-backed `u64` words.
///
/// # Examples
///
/// ```
/// use dram_sim::array::DramArray;
/// use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
/// use power_model::units::{Celsius, Milliseconds};
/// use workload_sim::arena::DramArena;
///
/// let pop = WeakCellPopulation::generate(
///     &RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 3);
/// let mut dram = DramArray::new(pop, Milliseconds::DDR3_NOMINAL_TREFP, Celsius::new(45.0));
/// let mut arena = DramArena::new(&mut dram, 0, 1024);
/// arena.write(5, 42);
/// assert_eq!(arena.read(5), 42);
/// ```
#[derive(Debug)]
pub struct DramArena<'a> {
    dram: &'a mut DramArray,
    base: u64,
    data: Vec<u64>,
    stats: ArenaStats,
}

impl<'a> DramArena<'a> {
    /// Allocates an arena of `len` words starting at linear index `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the array capacity.
    pub fn new(dram: &'a mut DramArray, base: u64, len: usize) -> Self {
        // Validate both endpoints map into the array.
        let _ = interleave(base);
        if len > 0 {
            let _ = interleave(base + len as u64 - 1);
        }
        DramArena {
            dram,
            base,
            data: vec![0; len],
            stats: ArenaStats::default(),
        }
    }

    /// Number of words in the arena.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// The underlying DRAM (e.g. to advance time between iterations).
    pub fn dram_mut(&mut self) -> &mut DramArray {
        self.dram
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write(&mut self, index: usize, value: u64) {
        self.data[index] = value;
        self.dram
            .write_external(interleave(self.base + index as u64));
        self.stats.writes += 1;
    }

    /// Reads a word through the DRAM decay/ECC path. Uncorrectable errors
    /// return the *stored* (pre-decay) value — matching a machine-check
    /// that the framework logs — and are counted in the statistics.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read(&mut self, index: usize) -> u64 {
        let stored = self.data[index];
        let out = self
            .dram
            .read_external(interleave(self.base + index as u64), stored);
        self.stats.reads += 1;
        self.stats.flipped_bits += out.flipped_bits.len() as u64;
        match out.decode {
            dram_sim::ecc::DecodeOutcome::Corrected { .. } => self.stats.corrected_errors += 1,
            dram_sim::ecc::DecodeOutcome::Uncorrectable => self.stats.uncorrectable_errors += 1,
            dram_sim::ecc::DecodeOutcome::Clean { .. } => {}
        }
        out.data.unwrap_or(stored)
    }

    /// Reads an `f64` stored via [`Self::write_f64`].
    pub fn read_f64(&mut self, index: usize) -> f64 {
        f64::from_bits(self.read(index))
    }

    /// Stores an `f64` in one word.
    pub fn write_f64(&mut self, index: usize, value: f64) {
        self.write(index, value.to_bits());
    }

    /// Reads an `i64`.
    pub fn read_i64(&mut self, index: usize) -> i64 {
        self.read(index) as i64
    }

    /// Stores an `i64`.
    pub fn write_i64(&mut self, index: usize, value: i64) {
        self.write(index, value as u64);
    }

    /// Advances simulated DRAM time by `ms` (models compute phases between
    /// memory bursts).
    pub fn advance_time(&mut self, ms: f64) {
        self.dram.advance(ms);
    }

    /// Number of weak cells that physically fall inside this arena's
    /// footprint (useful to size experiments).
    pub fn weak_cells_in_footprint(&self) -> usize {
        let base = self.base;
        let len = self.data.len() as u64;
        self.dram
            .population()
            .cells()
            .iter()
            .filter(|c| {
                // Invert the interleave for membership testing.
                let w = c.addr.word;
                let linear = ((u64::from(w.row) * COLS_PER_ROW as u64 + u64::from(w.col)) * 8
                    + w.bank.index() as u64)
                    * 8
                    + w.rank.index() as u64;
                linear >= base && linear < base + len
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
    use power_model::units::{Celsius, Milliseconds};

    fn dram(seed: u64) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            seed,
        );
        DramArray::new(pop, Milliseconds::DDR3_NOMINAL_TREFP, Celsius::new(45.0))
    }

    #[test]
    fn interleave_is_injective_over_a_window() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(interleave(i)), "collision at {i}");
        }
    }

    #[test]
    fn interleave_strides_ranks_then_banks() {
        assert_eq!(interleave(0).rank.index(), 0);
        assert_eq!(interleave(1).rank.index(), 1);
        assert_eq!(interleave(8).bank.index(), 1);
        assert_eq!(interleave(64).col, 1);
    }

    #[test]
    fn roundtrip_values() {
        let mut d = dram(1);
        let mut arena = DramArena::new(&mut d, 0, 4096);
        for i in 0..4096 {
            arena.write(i, i as u64 * 3);
        }
        for i in 0..4096 {
            assert_eq!(arena.read(i), i as u64 * 3);
        }
        assert_eq!(arena.stats().reads, 4096);
        assert_eq!(arena.stats().writes, 4096);
    }

    #[test]
    fn f64_and_i64_roundtrip() {
        let mut d = dram(1);
        let mut arena = DramArena::new(&mut d, 0, 16);
        arena.write_f64(0, -3.25);
        arena.write_i64(1, -77);
        assert_eq!(arena.read_f64(0), -3.25);
        assert_eq!(arena.read_i64(1), -77);
    }

    #[test]
    fn footprint_contains_weak_cells_at_scale() {
        let mut d = dram(2);
        // 16 Mi words = 128 MiB.
        let arena = DramArena::new(&mut d, 0, 16 * 1024 * 1024);
        let cells = arena.weak_cells_in_footprint();
        assert!(cells > 20, "expected dozens of weak cells, got {cells}");
    }

    #[test]
    fn decay_manifests_under_relaxed_refresh() {
        let mut d = dram(3);
        d.set_trefp(Milliseconds::DSN18_RELAXED_TREFP);
        d.set_temperature(Celsius::new(60.0));
        let words = 4 * 1024 * 1024;
        let mut arena = DramArena::new(&mut d, 0, words);
        for i in 0..words {
            arena.write(i, u64::MAX);
        }
        arena.advance_time(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
        for i in 0..words {
            arena.read(i);
        }
        assert!(
            arena.stats().corrected_errors > 0,
            "expected corrected errors over a 32 MiB footprint, stats {:?}",
            arena.stats()
        );
    }

    #[test]
    #[should_panic(expected = "out of array range")]
    fn arena_rejects_oversized_region() {
        let mut d = dram(1);
        let _ = DramArena::new(&mut d, u64::MAX / 2, 10);
    }
}
