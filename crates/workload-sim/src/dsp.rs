//! Minimal DSP toolbox for the jammer detector: complex numbers, an
//! iterative radix-2 FFT and a Hann window — no external dependencies.

use serde::{Deserialize, Serialize};

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex value.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2].mul(w);
                buf[i + k] = u.add(v);
                buf[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Power spectrum (squared magnitudes) of a real sample block after Hann
/// windowing; returns `n/2` bins.
pub fn power_spectrum(samples: &[f64]) -> Vec<f64> {
    let n = samples.len();
    let mut buf: Vec<Complex> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos());
            Complex::new(s * w, 0.0)
        })
        .collect();
    fft(&mut buf);
    buf[..n / 2]
        .iter()
        .map(|c| c.norm_sq() / (n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::default(); 64];
        buf[0] = Complex::new(1.0, 0.0);
        fft(&mut buf);
        for c in &buf {
            assert!((c.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        let n = 256;
        let k = 19;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&samples);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn parseval_holds_for_unwindowed_fft() {
        let n = 128;
        let samples: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i * 37) % 11) as f64 - 5.0, 0.0))
            .collect();
        let time_energy: f64 = samples.iter().map(|c| c.norm_sq()).sum();
        let mut buf = samples;
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 100];
        fft(&mut buf);
    }
}
