//! Stencil access-pattern scheduling (§IV.C, citing Tovletoglou IOLTS'17).
//!
//! The paper reorders the memory accesses of stencil algorithms "by
//! ensuring that all accesses occur within a targeted time period that is
//! less than the next scheduled refresh operation": if every DRAM row of
//! the grid is revisited within the (relaxed) refresh period, the accesses
//! themselves refresh the cells and the reliance on ECC shrinks.
//!
//! Two schedules are contrasted: the natural *bursty* execution — compute
//! all sweeps back-to-back, then leave the result idle in DRAM while the
//! application post-processes — and the *paced* schedule that spreads the
//! sweeps so no row sits untouched longer than the target period.

use crate::arena::DramArena;
use dram_sim::array::DramArray;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the stencil sweeps are laid out in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SweepSchedule {
    /// All sweeps execute within `duty` of the runtime, then the grid sits
    /// idle for the remainder (typical unscheduled application behaviour).
    Bursty {
        /// Fraction of the runtime spent computing, in `(0, 1]`.
        duty: f64,
    },
    /// Sweeps are spread evenly over the runtime so every row is revisited
    /// once per `runtime / sweeps`.
    Paced,
}

/// Result of a stencil run with access-interval measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilReport {
    /// Maximum observed interval between consecutive accesses to the same
    /// DRAM-row bucket of the grid footprint, in ms.
    pub max_row_interval_ms: f64,
    /// Mean such interval.
    pub mean_row_interval_ms: f64,
    /// Corrected errors observed (events; repeated reads of a decayed
    /// cell count once per read).
    pub corrected_errors: u64,
    /// Decayed bits observed (events).
    pub flipped_bits: u64,
    /// Distinct failing cell locations over the run.
    pub unique_error_locations: usize,
    /// Output checksum.
    pub checksum: u64,
}

/// A 2-D 5-point Jacobi stencil over a DRAM-resident, double-buffered grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobiStencil {
    /// Grid side length (words).
    pub side: usize,
    /// Number of sweeps.
    pub sweeps: usize,
    /// Total simulated runtime in ms (compute + idle).
    pub runtime_ms: f64,
}

impl JacobiStencil {
    /// Creates a stencil run description.
    ///
    /// # Panics
    ///
    /// Panics if `side < 4` or `sweeps == 0`.
    pub fn new(side: usize, sweeps: usize, runtime_ms: f64) -> Self {
        assert!(side >= 4, "grid side must be at least 4");
        assert!(sweeps > 0, "at least one sweep");
        JacobiStencil {
            side,
            sweeps,
            runtime_ms,
        }
    }

    /// Runs the stencil under `schedule`, tracking per-DRAM-row access
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if a bursty duty is outside `(0, 1]`.
    pub fn run(&self, dram: &mut DramArray, schedule: SweepSchedule) -> StencilReport {
        let s = self.side;
        let words = 2 * s * s; // double-buffered grid
        dram.clear_error_log();
        let mut arena = DramArena::new(dram, 0, words);
        for y in 0..s {
            for x in 0..s {
                let v = if (x as i64 - s as i64 / 2).abs() < 3 && y < 3 {
                    100.0
                } else {
                    0.0
                };
                arena.write_f64(y * s + x, v);
            }
        }

        let (per_sweep_ms, trailing_idle_ms) = match schedule {
            SweepSchedule::Paced => (self.runtime_ms / self.sweeps as f64, 0.0),
            SweepSchedule::Bursty { duty } => {
                assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0,1]");
                let compute = self.runtime_ms * duty;
                (compute / self.sweeps as f64, self.runtime_ms - compute)
            }
        };

        let mut tracker = RowIntervalTracker::default();
        let mut src = 0usize; // buffer offset: 0 or s*s
        for _sweep in 0..self.sweeps {
            let dst = s * s - src;
            for y in 0..s {
                for x in 0..s {
                    let now = arena.dram_mut().now();
                    tracker.touch(row_bucket(y * s + x), now);
                    tracker.touch(row_bucket(s * s + y * s + x), now);
                    let c = arena.read_f64(src + y * s + x);
                    let n = arena.read_f64(src + y.saturating_sub(1) * s + x);
                    let sv = arena.read_f64(src + (y + 1).min(s - 1) * s + x);
                    let w = arena.read_f64(src + y * s + x.saturating_sub(1));
                    let e = arena.read_f64(src + y * s + (x + 1).min(s - 1));
                    arena.write_f64(dst + y * s + x, 0.2 * (c + n + sv + w + e));
                }
            }
            arena.advance_time(per_sweep_ms);
            src = s * s - src;
        }
        if trailing_idle_ms > 0.0 {
            arena.advance_time(trailing_idle_ms);
        }

        // Final read-out (post-processing touches every grid word once).
        let mut checksum = 0u64;
        let now = arena.dram_mut().now();
        for i in 0..s * s {
            tracker.touch(row_bucket(src + i), now);
            let v = arena.read_f64(src + i);
            checksum = checksum
                .rotate_left(1)
                .wrapping_add((v * 1e6).round() as i64 as u64);
        }
        let stats = arena.stats();
        let unique_error_locations = arena.dram_mut().error_log().unique_locations();
        let (max_i, mean_i) = tracker.intervals();
        StencilReport {
            max_row_interval_ms: max_i,
            mean_row_interval_ms: mean_i,
            corrected_errors: stats.corrected_errors,
            flipped_bits: stats.flipped_bits,
            unique_error_locations,
            checksum,
        }
    }
}

/// Maps a linear arena word index to a coarse DRAM-row bucket: the
/// interleaved mapping advances the physical row every 65 536 consecutive
/// linear words (8 ranks × 8 banks × 1024 columns).
fn row_bucket(linear: usize) -> u64 {
    (linear / 65_536) as u64
}

/// Tracks intervals between consecutive touches of each row bucket.
#[derive(Debug, Default)]
struct RowIntervalTracker {
    last: HashMap<u64, f64>,
    max_interval: f64,
    sum_intervals: f64,
    count: u64,
}

impl RowIntervalTracker {
    fn touch(&mut self, row: u64, now: f64) {
        if let Some(prev) = self.last.insert(row, now) {
            let dt = now - prev;
            if dt > 0.0 {
                self.max_interval = self.max_interval.max(dt);
                self.sum_intervals += dt;
                self.count += 1;
            }
        }
    }

    fn intervals(&self) -> (f64, f64) {
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum_intervals / self.count as f64
        };
        (self.max_interval, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
    use power_model::units::{Celsius, Milliseconds};

    fn relaxed_dram(seed: u64) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            seed,
        );
        DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0))
    }

    #[test]
    fn paced_schedule_bounds_row_intervals() {
        let stencil = JacobiStencil::new(256, 6, 9000.0);
        let mut d1 = relaxed_dram(61);
        let bursty = stencil.run(&mut d1, SweepSchedule::Bursty { duty: 0.2 });
        let mut d2 = relaxed_dram(61);
        let paced = stencil.run(&mut d2, SweepSchedule::Paced);
        assert!(
            paced.max_row_interval_ms < bursty.max_row_interval_ms,
            "paced {} vs bursty {}",
            paced.max_row_interval_ms,
            bursty.max_row_interval_ms
        );
    }

    #[test]
    fn paced_intervals_fit_within_refresh_period() {
        // The §IV.C observation: with scheduling, access intervals are
        // shorter than the refresh period.
        let mut d = relaxed_dram(62);
        let stencil = JacobiStencil::new(256, 6, 9000.0);
        let report = stencil.run(&mut d, SweepSchedule::Paced);
        assert!(
            report.max_row_interval_ms < Milliseconds::DSN18_RELAXED_TREFP.as_f64(),
            "max interval {} ms exceeds TREFP",
            report.max_row_interval_ms
        );
    }

    #[test]
    fn bursty_idle_accumulates_more_decay() {
        let stencil = JacobiStencil::new(384, 6, 9000.0);
        let mut d1 = relaxed_dram(63);
        let bursty = stencil.run(&mut d1, SweepSchedule::Bursty { duty: 0.2 });
        let mut d2 = relaxed_dram(63);
        let paced = stencil.run(&mut d2, SweepSchedule::Paced);
        assert!(
            bursty.unique_error_locations >= paced.unique_error_locations,
            "bursty {} vs paced {} unique failing cells",
            bursty.unique_error_locations,
            paced.unique_error_locations
        );
    }

    #[test]
    fn schedules_compute_identical_results() {
        let stencil = JacobiStencil::new(64, 4, 100.0);
        let mut d1 = relaxed_dram(64);
        let a = stencil.run(&mut d1, SweepSchedule::Bursty { duty: 0.5 });
        let mut d2 = relaxed_dram(64);
        let b = stencil.run(&mut d2, SweepSchedule::Paced);
        assert_eq!(a.checksum, b.checksum, "schedule changed the numerics");
    }

    #[test]
    #[should_panic(expected = "grid side")]
    fn rejects_tiny_grid() {
        let _ = JacobiStencil::new(2, 1, 1.0);
    }
}
