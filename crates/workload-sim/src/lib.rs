//! Workload models for the DSN'18 guardband study.
//!
//! Three kinds of workloads drive the characterization:
//!
//! * **Descriptors** for suites we cannot redistribute — [`spec`] (SPEC
//!   CPU2006) and [`nas`] (NAS Parallel Benchmarks) — calibrated activity
//!   profiles that the chip model turns into the published Vmin behaviour;
//! * **Real executable kernels** whose interaction with DRAM matters —
//!   [`rodinia`] (backprop, kmeans, nw, srad), [`stencil`] (the §IV.C
//!   access-pattern-scheduling study) and [`dpbench`] (data-pattern
//!   benchmarks), all running against the simulated array through
//!   [`arena`];
//! * The end-to-end [`jammer`] detector of §IV.D — a real multi-threaded
//!   FFT-based spectrum monitor with a QoS bound, supported by [`dsp`].
//!
//! # Examples
//!
//! Run the paper's four Rodinia applications and check none silently
//! corrupts under the 35× relaxed refresh:
//!
//! ```no_run
//! use workload_sim::rodinia::{suite, KernelConfig};
//! use dram_sim::array::DramArray;
//! use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
//! use power_model::units::{Celsius, Milliseconds};
//!
//! let pop = WeakCellPopulation::generate(
//!     &RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 1);
//! let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
//! for kernel in suite() {
//!     let report = kernel.characterize_dyn(&mut dram, &KernelConfig::characterization());
//!     assert!(report.is_correct());
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod canary;
pub mod dpbench;
pub mod dsp;
pub mod jammer;
pub mod nas;
pub mod rodinia;
pub mod spec;
pub mod stencil;
pub mod tenant;

pub use arena::{ArenaStats, DramArena};
pub use canary::CanaryKernel;
pub use dpbench::{DpBenchCampaign, DpBenchRound};
pub use jammer::{JammerConfig, JammerReport};
pub use rodinia::{KernelConfig, KernelReport, RodiniaKernel};
pub use spec::{SpecBenchmark, SPEC_SUITE};
pub use stencil::{JacobiStencil, StencilReport, SweepSchedule};
pub use tenant::{ColocationSchedule, PmdColocation, Tenant, TenantKind};
