//! backprop — neural-network training (forward + weight update).
//!
//! A two-layer perceptron trained by gradient descent over a DRAM-resident
//! training set. Each epoch streams every sample (inputs + target) and
//! updates the weight matrices in place: the training data is re-read every
//! epoch but weights are rewritten constantly, giving backprop a mid-range
//! bandwidth utilization and BER.

use super::{fold, DataRng, KernelConfig, RodiniaKernel, WordMemory};
use crate::spec::profile_for_score;
use xgene_sim::workload::WorkloadProfile;

/// Input layer width.
const IN: usize = 16;
/// Hidden layer width.
const HIDDEN: usize = 8;

/// The backprop kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Backprop;

impl Backprop {
    /// Training samples at a given scale.
    fn samples(cfg: &KernelConfig) -> usize {
        cfg.scale * 512
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl RodiniaKernel for Backprop {
    fn name(&self) -> &'static str {
        "backprop"
    }

    fn footprint_words(&self, cfg: &KernelConfig) -> usize {
        // Layout: [samples: n*(IN+1)][w1: IN*HIDDEN][w2: HIDDEN]
        Self::samples(cfg) * (IN + 1) + IN * HIDDEN + HIDDEN
    }

    fn bandwidth_utilization(&self) -> f64 {
        0.535
    }

    fn profile(&self) -> WorkloadProfile {
        profile_for_score("backprop", 0.47, self.bandwidth_utilization(), 1.10)
    }

    fn run<M: WordMemory>(&self, mem: &mut M, cfg: &KernelConfig) -> u64 {
        let n = Self::samples(cfg);
        let w1_base = n * (IN + 1);
        let w2_base = w1_base + IN * HIDDEN;
        let mut rng = DataRng::new(cfg.seed);

        // Synthetic training set: target = parity-ish function of inputs.
        for s in 0..n {
            let mut sum = 0.0;
            for d in 0..IN {
                let v = rng.next_f64() * 2.0 - 1.0;
                mem.write_f64(s * (IN + 1) + d, v);
                sum += v;
            }
            let target = if sum > 0.0 { 1.0 } else { 0.0 };
            mem.write_f64(s * (IN + 1) + IN, target);
        }
        // Small deterministic initial weights.
        for i in 0..IN * HIDDEN {
            mem.write_f64(w1_base + i, (rng.next_f64() - 0.5) * 0.2);
        }
        for i in 0..HIDDEN {
            mem.write_f64(w2_base + i, (rng.next_f64() - 0.5) * 0.2);
        }

        let lr = 0.05;
        let epoch_ms = cfg.runtime_ms / cfg.iterations as f64;
        for _epoch in 0..cfg.iterations {
            for s in 0..n {
                // Load sample.
                let mut x = [0.0f64; IN];
                for (d, v) in x.iter_mut().enumerate() {
                    *v = mem.read_f64(s * (IN + 1) + d);
                }
                let target = mem.read_f64(s * (IN + 1) + IN);
                // Forward.
                let mut hidden = [0.0f64; HIDDEN];
                for (h, hv) in hidden.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (d, xv) in x.iter().enumerate() {
                        acc += xv * mem.read_f64(w1_base + d * HIDDEN + h);
                    }
                    *hv = sigmoid(acc);
                }
                let mut out_acc = 0.0;
                for (h, hv) in hidden.iter().enumerate() {
                    out_acc += hv * mem.read_f64(w2_base + h);
                }
                let out = sigmoid(out_acc);
                // Backward.
                let delta_out = (target - out) * out * (1.0 - out);
                for (h, hv) in hidden.iter().enumerate() {
                    let w2 = mem.read_f64(w2_base + h);
                    let delta_h = delta_out * w2 * hv * (1.0 - hv);
                    mem.write_f64(w2_base + h, w2 + lr * delta_out * hv);
                    for (d, xv) in x.iter().enumerate() {
                        let w1 = mem.read_f64(w1_base + d * HIDDEN + h);
                        mem.write_f64(w1_base + d * HIDDEN + h, w1 + lr * delta_h * xv);
                    }
                }
            }
            mem.advance(epoch_ms);
        }

        // Checksum the trained weights (quantized for stability).
        let mut acc = 0u64;
        for i in 0..IN * HIDDEN {
            acc = fold(acc, (mem.read_f64(w1_base + i) * 1e9).round() as i64 as u64);
        }
        for i in 0..HIDDEN {
            acc = fold(acc, (mem.read_f64(w2_base + i) * 1e9).round() as i64 as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::relaxed_dram;
    use super::super::{HostMemory, KernelConfig, RodiniaKernel};
    use super::*;

    #[test]
    fn training_reduces_error() {
        // Train, then check the network classifies better than chance on
        // its own training set (re-running forward passes on host memory).
        let cfg = KernelConfig {
            scale: 4,
            iterations: 20,
            seed: 5,
            runtime_ms: 10.0,
        };
        let k = Backprop;
        let mut m = HostMemory::new(k.footprint_words(&cfg));
        let _ = k.run(&mut m, &cfg);
        use super::super::WordMemory;
        let n = Backprop::samples(&cfg);
        let w1_base = n * (IN + 1);
        let w2_base = w1_base + IN * HIDDEN;
        let mut correct = 0usize;
        for s in 0..n {
            let mut x = [0.0f64; IN];
            for (d, v) in x.iter_mut().enumerate() {
                *v = m.read_f64(s * (IN + 1) + d);
            }
            let target = m.read_f64(s * (IN + 1) + IN);
            let mut hidden = [0.0f64; HIDDEN];
            for (h, hv) in hidden.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (d, xv) in x.iter().enumerate() {
                    acc += xv * m.read_f64(w1_base + d * HIDDEN + h);
                }
                *hv = sigmoid(acc);
            }
            let mut out = 0.0;
            for (h, hv) in hidden.iter().enumerate() {
                out += hv * m.read_f64(w2_base + h);
            }
            if (sigmoid(out) > 0.5) == (target > 0.5) {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / n as f64;
        assert!(accuracy > 0.7, "training accuracy {accuracy}");
    }

    #[test]
    fn dram_backed_training_matches_golden() {
        let cfg = KernelConfig {
            scale: 64,
            iterations: 4,
            seed: 6,
            runtime_ms: 4500.0,
        };
        let mut dram = relaxed_dram(41);
        let report = Backprop.characterize(&mut dram, &cfg);
        assert!(report.is_correct(), "backprop diverged from golden");
        assert!(report.stats.reads > 100_000);
    }
}
