//! Rodinia HPC mini-kernels (backprop, kmeans, nw, srad).
//!
//! The paper runs four memory-intensive Rodinia applications under the
//! relaxed refresh period and measures per-benchmark BER (Fig. 8a) and
//! refresh-relaxation power savings (Fig. 8b). We implement each kernel
//! for real: the algorithm is generic over a [`WordMemory`] so the same
//! code runs once against plain host memory (the golden reference) and
//! once against the simulated DRAM (the measured run). Divergence between
//! the two outputs is exactly the silent-data-corruption signal the
//! characterization framework checks for.

pub mod backprop;
pub mod kmeans;
pub mod nw;
pub mod srad;

use crate::arena::{ArenaStats, DramArena};
use dram_sim::array::DramArray;
use serde::{Deserialize, Serialize};
use xgene_sim::workload::WorkloadProfile;

/// Word-granular memory a kernel computes against.
pub trait WordMemory {
    /// Reads word `i`.
    fn read(&mut self, i: usize) -> u64;
    /// Writes word `i`.
    fn write(&mut self, i: usize, v: u64);
    /// Advances wall-clock time by `ms` (no-op for host memory).
    fn advance(&mut self, ms: f64);

    /// Reads an `f64`.
    fn read_f64(&mut self, i: usize) -> f64 {
        f64::from_bits(self.read(i))
    }
    /// Writes an `f64`.
    fn write_f64(&mut self, i: usize, v: f64) {
        self.write(i, v.to_bits());
    }
    /// Reads an `i64`.
    fn read_i64(&mut self, i: usize) -> i64 {
        self.read(i) as i64
    }
    /// Writes an `i64`.
    fn write_i64(&mut self, i: usize, v: i64) {
        self.write(i, v as u64);
    }
}

/// Plain host memory — the golden-reference backing store.
#[derive(Debug, Clone)]
pub struct HostMemory {
    words: Vec<u64>,
}

impl HostMemory {
    /// Allocates `len` zeroed words.
    pub fn new(len: usize) -> Self {
        HostMemory {
            words: vec![0; len],
        }
    }
}

impl WordMemory for HostMemory {
    fn read(&mut self, i: usize) -> u64 {
        self.words[i]
    }
    fn write(&mut self, i: usize, v: u64) {
        self.words[i] = v;
    }
    fn advance(&mut self, _ms: f64) {}
}

impl WordMemory for DramArena<'_> {
    fn read(&mut self, i: usize) -> u64 {
        DramArena::read(self, i)
    }
    fn write(&mut self, i: usize, v: u64) {
        DramArena::write(self, i, v);
    }
    fn advance(&mut self, ms: f64) {
        self.advance_time(ms);
    }
}

/// Sizing and pacing of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Problem scale (kernel-specific meaning; larger = bigger footprint).
    pub scale: usize,
    /// Outer iterations (epochs / diffusion steps / Lloyd rounds).
    pub iterations: usize,
    /// RNG seed for input data.
    pub seed: u64,
    /// Total simulated runtime in ms, spread across iterations.
    pub runtime_ms: f64,
}

impl KernelConfig {
    /// The default characterization-scale configuration: a multi-second
    /// run so rows experience gaps comparable to the relaxed TREFP.
    pub fn characterization() -> Self {
        KernelConfig {
            scale: 256,
            iterations: 8,
            seed: 42,
            runtime_ms: 6000.0,
        }
    }

    /// A small smoke-test configuration.
    pub fn smoke() -> Self {
        KernelConfig {
            scale: 32,
            iterations: 2,
            seed: 42,
            runtime_ms: 200.0,
        }
    }
}

/// Outcome of one kernel run against the simulated DRAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Checksum of the DRAM-backed run's output.
    pub output_checksum: u64,
    /// Checksum of the host-memory golden run.
    pub golden_checksum: u64,
    /// Arena access statistics (errors, BER).
    pub stats: ArenaStats,
    /// Simulated runtime in ms.
    pub runtime_ms: f64,
    /// Words of DRAM footprint.
    pub footprint_words: usize,
}

impl KernelReport {
    /// Whether the output matches the golden reference (no SDC).
    pub fn is_correct(&self) -> bool {
        self.output_checksum == self.golden_checksum
    }

    /// Bit-error rate observed by this kernel's reads.
    pub fn ber(&self) -> f64 {
        self.stats.ber()
    }
}

/// A Rodinia kernel: algorithm + calibrated platform descriptor.
pub trait RodiniaKernel {
    /// Kernel name (Rodinia naming).
    fn name(&self) -> &'static str;

    /// Runs the kernel against an arbitrary memory, returning an output
    /// checksum. `mem` must have at least [`Self::footprint_words`] words.
    fn run<M: WordMemory>(&self, mem: &mut M, cfg: &KernelConfig) -> u64;

    /// Words of memory the kernel needs at `cfg.scale`.
    fn footprint_words(&self, cfg: &KernelConfig) -> usize;

    /// DRAM bandwidth utilization measured for this application on the
    /// real platform (drives the Fig. 8b power model).
    fn bandwidth_utilization(&self) -> f64;

    /// CPU-side activity profile.
    fn profile(&self) -> WorkloadProfile;

    /// Runs golden (host) + measured (DRAM) and reports.
    fn characterize(&self, dram: &mut DramArray, cfg: &KernelConfig) -> KernelReport {
        let words = self.footprint_words(cfg);
        let mut host = HostMemory::new(words);
        let golden_checksum = self.run(&mut host, cfg);
        let mut arena = DramArena::new(dram, 0, words);
        let start = arena.dram_mut().now();
        let output_checksum = self.run(&mut arena, cfg);
        // Golden-reference comparison pass: the characterization framework
        // reads the whole footprint back to diff the output against the
        // golden run, which is also where resident-but-cold data reveals
        // its decayed cells through ECC reports.
        for i in 0..words {
            let _ = DramArena::read(&mut arena, i);
        }
        let stats = arena.stats();
        let runtime_ms = arena.dram_mut().now() - start;
        KernelReport {
            name: self.name().to_owned(),
            output_checksum,
            golden_checksum,
            stats,
            runtime_ms,
            footprint_words: words,
        }
    }
}

/// Simple deterministic pseudo-random stream for input data.
#[derive(Debug, Clone)]
pub(crate) struct DataRng(u64);

impl DataRng {
    pub(crate) fn new(seed: u64) -> Self {
        DataRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Checksum folding helper (order-sensitive FNV-style).
pub(crate) fn fold(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x100_0000_01B3)
}

/// The four characterized applications, boxed for uniform iteration.
pub fn suite() -> Vec<Box<dyn DynKernel>> {
    vec![
        Box::new(backprop::Backprop),
        Box::new(kmeans::Kmeans),
        Box::new(nw::NeedlemanWunsch),
        Box::new(srad::Srad),
    ]
}

/// Object-safe surface of [`RodiniaKernel`] for heterogeneous suites.
pub trait DynKernel {
    /// Kernel name.
    fn name(&self) -> &'static str;
    /// Runs golden + measured against the DRAM and reports.
    fn characterize_dyn(&self, dram: &mut DramArray, cfg: &KernelConfig) -> KernelReport;
    /// Calibrated DRAM bandwidth utilization.
    fn bandwidth_utilization(&self) -> f64;
    /// CPU-side activity profile.
    fn profile(&self) -> WorkloadProfile;
}

impl<K: RodiniaKernel> DynKernel for K {
    fn name(&self) -> &'static str {
        RodiniaKernel::name(self)
    }
    fn characterize_dyn(&self, dram: &mut DramArray, cfg: &KernelConfig) -> KernelReport {
        self.characterize(dram, cfg)
    }
    fn bandwidth_utilization(&self) -> f64 {
        RodiniaKernel::bandwidth_utilization(self)
    }
    fn profile(&self) -> WorkloadProfile {
        RodiniaKernel::profile(self)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use dram_sim::array::DramArray;
    use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
    use power_model::units::{Celsius, Milliseconds};

    pub(crate) fn relaxed_dram(seed: u64) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            seed,
        );
        let mut d = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
        d.set_temperature(Celsius::new(60.0));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::relaxed_dram;
    use super::*;

    #[test]
    fn all_kernels_run_correctly_on_smoke_config() {
        let cfg = KernelConfig::smoke();
        for kernel in suite() {
            let mut dram = relaxed_dram(5);
            let report = kernel.characterize_dyn(&mut dram, &cfg);
            assert!(
                report.is_correct(),
                "{}: output {:#x} vs golden {:#x}",
                report.name,
                report.output_checksum,
                report.golden_checksum
            );
            assert!(report.stats.reads > 0);
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let cfg = KernelConfig::smoke();
        for kernel in suite() {
            let mut a = relaxed_dram(6);
            let mut b = relaxed_dram(6);
            let ra = kernel.characterize_dyn(&mut a, &cfg);
            let rb = kernel.characterize_dyn(&mut b, &cfg);
            assert_eq!(ra.output_checksum, rb.output_checksum, "{}", ra.name);
        }
    }

    #[test]
    fn fig8b_utilization_ordering() {
        // kmeans is the most bandwidth-hungry, nw the least — which is what
        // makes nw save the most refresh power relative to its rail draw.
        let by_name = |n: &str| {
            suite()
                .into_iter()
                .find(|k| k.name() == n)
                .unwrap()
                .bandwidth_utilization()
        };
        assert!(by_name("kmeans") > by_name("backprop"));
        assert!(by_name("backprop") > by_name("srad"));
        assert!(by_name("srad") > by_name("nw"));
    }

    #[test]
    fn host_memory_roundtrip() {
        let mut m = HostMemory::new(4);
        m.write_f64(0, 2.5);
        m.write_i64(1, -3);
        assert_eq!(m.read_f64(0), 2.5);
        assert_eq!(m.read_i64(1), -3);
    }

    #[test]
    fn data_rng_is_deterministic_and_uniform() {
        let mut a = DataRng::new(9);
        let mut b = DataRng::new(9);
        let mean: f64 = (0..10_000).map(|_| a.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let _ = (0..10_000).map(|_| b.next_f64()).count();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
