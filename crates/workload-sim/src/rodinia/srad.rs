//! srad — Speckle Reducing Anisotropic Diffusion.
//!
//! The Rodinia SRAD kernel denoises an ultrasound image by iterative
//! anisotropic diffusion: each step computes a diffusion coefficient from
//! local gradients and updates every pixel from its 4-neighborhood. Rows
//! are revisited once per diffusion step, so its inherent-refresh interval
//! equals the step period.

use super::{fold, DataRng, KernelConfig, RodiniaKernel, WordMemory};
use crate::spec::profile_for_score;
use xgene_sim::workload::WorkloadProfile;

/// Diffusion rate (Rodinia default λ = 0.5 is aggressive; 0.25 is stable).
const LAMBDA: f64 = 0.25;

/// The SRAD kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srad;

impl Srad {
    /// Grid side length at a given scale.
    fn side(cfg: &KernelConfig) -> usize {
        cfg.scale * 4
    }
}

impl RodiniaKernel for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn footprint_words(&self, cfg: &KernelConfig) -> usize {
        // Layout: [image: side²][coeff: side²]
        2 * Self::side(cfg) * Self::side(cfg)
    }

    fn bandwidth_utilization(&self) -> f64 {
        0.371
    }

    fn profile(&self) -> WorkloadProfile {
        profile_for_score("srad", 0.50, self.bandwidth_utilization(), 1.20)
    }

    fn run<M: WordMemory>(&self, mem: &mut M, cfg: &KernelConfig) -> u64 {
        let s = Self::side(cfg);
        let img = 0usize;
        let coeff = s * s;
        let mut rng = DataRng::new(cfg.seed);
        // Speckled image: smooth ramp + multiplicative noise.
        for y in 0..s {
            for x in 0..s {
                let base = 50.0 + 30.0 * ((x + y) as f64 / (2 * s) as f64);
                let noise = 0.8 + 0.4 * rng.next_f64();
                mem.write_f64(img + y * s + x, base * noise);
            }
        }

        let step_ms = cfg.runtime_ms / cfg.iterations as f64;
        let q0 = 1.0;
        for step in 0..cfg.iterations {
            let q0sq = q0 * (-(step as f64) * 0.3).exp();
            // Pass 1: diffusion coefficient from local statistics.
            for y in 0..s {
                for x in 0..s {
                    let c = mem.read_f64(img + y * s + x);
                    let n = mem.read_f64(img + y.saturating_sub(1) * s + x);
                    let sdown = mem.read_f64(img + (y + 1).min(s - 1) * s + x);
                    let w = mem.read_f64(img + y * s + x.saturating_sub(1));
                    let e = mem.read_f64(img + y * s + (x + 1).min(s - 1));
                    let g2 =
                        ((n - c).powi(2) + (sdown - c).powi(2) + (w - c).powi(2) + (e - c).powi(2))
                            / (c * c).max(1e-12);
                    let l = (n + sdown + w + e - 4.0 * c) / c.max(1e-12);
                    let num = 0.5 * g2 - (l * l) / 16.0;
                    let den = (1.0 + l / 4.0).powi(2);
                    let q = (num / den.max(1e-12)).max(0.0);
                    let d = 1.0 / (1.0 + (q - q0sq) / (q0sq * (1.0 + q0sq)));
                    mem.write_f64(coeff + y * s + x, d.clamp(0.0, 1.0));
                }
            }
            // Pass 2: divergence update.
            for y in 0..s {
                for x in 0..s {
                    let c = mem.read_f64(img + y * s + x);
                    let d_c = mem.read_f64(coeff + y * s + x);
                    let d_s = mem.read_f64(coeff + (y + 1).min(s - 1) * s + x);
                    let d_e = mem.read_f64(coeff + y * s + (x + 1).min(s - 1));
                    let v_n = mem.read_f64(img + y.saturating_sub(1) * s + x);
                    let v_s = mem.read_f64(img + (y + 1).min(s - 1) * s + x);
                    let v_w = mem.read_f64(img + y * s + x.saturating_sub(1));
                    let v_e = mem.read_f64(img + y * s + (x + 1).min(s - 1));
                    let div = d_s * (v_s - c) + d_c * (v_n - c) + d_e * (v_e - c) + d_c * (v_w - c);
                    mem.write_f64(img + y * s + x, c + (LAMBDA / 4.0) * div);
                }
            }
            mem.advance(step_ms);
        }

        // Checksum the denoised image (quantized).
        let mut acc = 0u64;
        for i in 0..s * s {
            acc = fold(acc, (mem.read_f64(img + i) * 1e6).round() as i64 as u64);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::relaxed_dram;
    use super::super::{HostMemory, KernelConfig, RodiniaKernel, WordMemory};
    use super::*;

    fn variance(m: &mut HostMemory, n: usize) -> f64 {
        let vals: Vec<f64> = (0..n).map(|i| m.read_f64(i)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64
    }

    #[test]
    fn diffusion_reduces_speckle_variance() {
        let cfg = KernelConfig {
            scale: 16,
            iterations: 0,
            seed: 7,
            runtime_ms: 1.0,
        };
        let k = Srad;
        let mut before = HostMemory::new(k.footprint_words(&cfg));
        let _ = k.run(&mut before, &cfg); // zero iterations: raw image
        let n = Srad::side(&cfg).pow(2);
        let raw_var = variance(&mut before, n);

        let cfg_smooth = KernelConfig {
            iterations: 12,
            ..cfg
        };
        let mut after = HostMemory::new(k.footprint_words(&cfg_smooth));
        let _ = k.run(&mut after, &cfg_smooth);
        let smooth_var = variance(&mut after, n);
        assert!(
            smooth_var < raw_var * 0.8,
            "variance {raw_var} -> {smooth_var} did not drop"
        );
    }

    #[test]
    fn dram_backed_diffusion_matches_golden() {
        let cfg = KernelConfig {
            scale: 96,
            iterations: 5,
            seed: 8,
            runtime_ms: 5000.0,
        };
        let mut dram = relaxed_dram(51);
        let report = Srad.characterize(&mut dram, &cfg);
        assert!(report.is_correct(), "srad diverged from golden");
    }
}
