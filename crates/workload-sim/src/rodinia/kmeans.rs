//! kmeans — Lloyd's algorithm over a DRAM-resident point set.
//!
//! The Rodinia kmeans clusters N points of D features. Every Lloyd round
//! re-reads the whole point array (assignment step), which makes kmeans the
//! most bandwidth-hungry of the four applications and — crucially for
//! Fig. 8 — inherently refreshes its footprint faster than cells decay,
//! keeping its BER low and its relative refresh-power saving small (9.4 %).

use super::{fold, DataRng, KernelConfig, RodiniaKernel, WordMemory};
use crate::spec::profile_for_score;
use xgene_sim::workload::WorkloadProfile;

/// Feature dimensions per point.
const DIMS: usize = 4;
/// Number of clusters.
const K: usize = 8;

/// The kmeans kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kmeans;

impl Kmeans {
    /// Points at a given scale.
    fn points(cfg: &KernelConfig) -> usize {
        cfg.scale * 1024
    }
}

impl RodiniaKernel for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn footprint_words(&self, cfg: &KernelConfig) -> usize {
        // Layout: [points: N*DIMS][assignments: N]
        Self::points(cfg) * (DIMS + 1)
    }

    fn bandwidth_utilization(&self) -> f64 {
        0.896
    }

    fn profile(&self) -> WorkloadProfile {
        profile_for_score("kmeans", 0.52, self.bandwidth_utilization(), 1.05)
    }

    fn run<M: WordMemory>(&self, mem: &mut M, cfg: &KernelConfig) -> u64 {
        let n = Self::points(cfg);
        let assign_base = n * DIMS;
        let mut rng = DataRng::new(cfg.seed);

        // Initialize points; first K points seed the centroids.
        for i in 0..n {
            for d in 0..DIMS {
                mem.write_f64(i * DIMS + d, rng.next_f64() * 100.0);
            }
            mem.write_i64(assign_base + i, -1);
        }
        let mut centroids = [[0.0f64; DIMS]; K];
        for (k, centroid) in centroids.iter_mut().enumerate() {
            for (d, c) in centroid.iter_mut().enumerate() {
                *c = mem.read_f64(k * DIMS + d);
            }
        }

        let step_ms = cfg.runtime_ms / cfg.iterations as f64;
        for _round in 0..cfg.iterations {
            // Assignment: stream the whole point array.
            let mut sums = [[0.0f64; DIMS]; K];
            let mut counts = [0usize; K];
            for i in 0..n {
                let mut p = [0.0f64; DIMS];
                for (d, v) in p.iter_mut().enumerate() {
                    *v = mem.read_f64(i * DIMS + d);
                }
                let mut best = 0usize;
                let mut best_dist = f64::INFINITY;
                for (k, c) in centroids.iter().enumerate() {
                    let dist: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_dist {
                        best_dist = dist;
                        best = k;
                    }
                }
                mem.write_i64(assign_base + i, best as i64);
                for d in 0..DIMS {
                    sums[best][d] += p[d];
                }
                counts[best] += 1;
            }
            // Update step.
            for k in 0..K {
                if counts[k] > 0 {
                    for d in 0..DIMS {
                        centroids[k][d] = sums[k][d] / counts[k] as f64;
                    }
                }
            }
            mem.advance(step_ms);
        }

        // Checksum: final assignments + quantized centroids.
        let mut acc = 0u64;
        for i in 0..n {
            acc = fold(acc, mem.read_i64(assign_base + i) as u64);
        }
        for c in &centroids {
            for v in c {
                acc = fold(acc, (v * 1e6).round() as i64 as u64);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::relaxed_dram;
    use super::super::{HostMemory, KernelConfig, RodiniaKernel};
    use super::*;

    #[test]
    fn converges_to_stable_assignments() {
        let cfg = KernelConfig {
            scale: 2,
            iterations: 40,
            seed: 1,
            runtime_ms: 10.0,
        };
        let k = Kmeans;
        let mut a = HostMemory::new(k.footprint_words(&cfg));
        let long = k.run(&mut a, &cfg);
        let cfg2 = KernelConfig {
            iterations: 41,
            ..cfg
        };
        let mut b = HostMemory::new(k.footprint_words(&cfg2));
        let longer = k.run(&mut b, &cfg2);
        assert_eq!(long, longer, "assignments converged before iteration 12");
    }

    #[test]
    fn frequent_rescans_protect_against_decay() {
        // With a multi-second run but per-round rescans, kmeans reads its
        // rows far more often than the relaxed refresh period, so inherent
        // refresh keeps corruption minimal even at 60 °C.
        let cfg = KernelConfig {
            scale: 256,
            iterations: 10,
            seed: 2,
            runtime_ms: 4000.0,
        };
        let mut dram = relaxed_dram(21);
        let report = Kmeans.characterize(&mut dram, &cfg);
        assert!(report.is_correct(), "kmeans output diverged");
        let reads = report.stats.reads as f64;
        assert!(report.stats.flipped_bits as f64 / reads < 1e-5);
    }
}
