//! nw — Needleman-Wunsch global sequence alignment.
//!
//! Fills an (L+1)×(L+1) dynamic-programming score matrix once, then
//! traces the optimal alignment back from the corner. The matrix is
//! written early and only revisited at traceback, so rows sit idle for
//! most of the run — which is why nw shows the *largest* relative
//! refresh-power saving (27.3 %, Fig. 8b): its rail power is dominated by
//! background + refresh, not accesses.

use super::{fold, DataRng, KernelConfig, RodiniaKernel, WordMemory};
use crate::spec::profile_for_score;
use xgene_sim::workload::WorkloadProfile;

/// Affine gap penalty (Rodinia uses a linear penalty of 10).
const GAP_PENALTY: i64 = 10;

/// The Needleman-Wunsch kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeedlemanWunsch;

impl NeedlemanWunsch {
    /// Sequence length at a given scale.
    fn seq_len(cfg: &KernelConfig) -> usize {
        cfg.scale * 8
    }

    /// BLOSUM-like substitution score for two residues.
    fn score(a: u8, b: u8) -> i64 {
        if a == b {
            5
        } else if (a % 4) == (b % 4) {
            1
        } else {
            -3
        }
    }
}

impl RodiniaKernel for NeedlemanWunsch {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn footprint_words(&self, cfg: &KernelConfig) -> usize {
        let l = Self::seq_len(cfg) + 1;
        // Layout: [matrix: l*l][seq_a: l][seq_b: l]
        l * l + 2 * l
    }

    fn bandwidth_utilization(&self) -> f64 {
        0.175
    }

    fn profile(&self) -> WorkloadProfile {
        profile_for_score("nw", 0.35, self.bandwidth_utilization(), 0.80)
    }

    fn run<M: WordMemory>(&self, mem: &mut M, cfg: &KernelConfig) -> u64 {
        let l = Self::seq_len(cfg) + 1;
        let matrix = 0usize;
        let seq_a = l * l;
        let seq_b = l * l + l;
        let mut rng = DataRng::new(cfg.seed);

        // Random residues over a 20-letter alphabet.
        for i in 0..l {
            mem.write(seq_a + i, rng.next_u64() % 20);
            mem.write(seq_b + i, rng.next_u64() % 20);
        }

        // Fill phase: first row/column, then the wavefront.
        for j in 0..l {
            mem.write_i64(matrix + j, -(j as i64) * GAP_PENALTY);
        }
        for i in 1..l {
            mem.write_i64(matrix + i * l, -(i as i64) * GAP_PENALTY);
        }
        let fill_ms = cfg.runtime_ms * 0.35;
        let idle_ms = cfg.runtime_ms * 0.55;
        let trace_ms = cfg.runtime_ms * 0.10;
        let per_row = fill_ms / (l - 1) as f64;
        for i in 1..l {
            let a = mem.read(seq_a + i) as u8;
            let mut diag = mem.read_i64(matrix + (i - 1) * l);
            let mut left = mem.read_i64(matrix + i * l);
            for j in 1..l {
                let up = mem.read_i64(matrix + (i - 1) * l + j);
                let b = mem.read(seq_b + j) as u8;
                let best = (diag + Self::score(a, b))
                    .max(up - GAP_PENALTY)
                    .max(left - GAP_PENALTY);
                mem.write_i64(matrix + i * l + j, best);
                diag = up;
                left = best;
            }
            mem.advance(per_row);
        }

        // Post-fill phase: the application writes results out / analyses
        // alignments elsewhere; the matrix sits idle in DRAM.
        mem.advance(idle_ms);

        // Traceback from the corner.
        let mut acc = 0u64;
        let (mut i, mut j) = (l - 1, l - 1);
        let steps = 2 * (l - 1);
        let per_step = trace_ms / steps as f64;
        while i > 0 && j > 0 {
            let here = mem.read_i64(matrix + i * l + j);
            acc = fold(acc, here as u64);
            let diag = mem.read_i64(matrix + (i - 1) * l + (j - 1));
            let up = mem.read_i64(matrix + (i - 1) * l + j);
            let a = mem.read(seq_a + i) as u8;
            let b = mem.read(seq_b + j) as u8;
            if here == diag + Self::score(a, b) {
                i -= 1;
                j -= 1;
            } else if here == up - GAP_PENALTY {
                i -= 1;
            } else {
                j -= 1;
            }
            mem.advance(per_step);
        }
        // Final alignment score is part of the output.
        fold(acc, mem.read_i64(matrix + (l - 1) * l + (l - 1)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::relaxed_dram;
    use super::super::{HostMemory, KernelConfig, RodiniaKernel};
    use super::*;

    #[test]
    fn identical_sequences_align_perfectly() {
        // With seq_b == seq_a the best score is 5·L (all matches).
        // Check via the internal scorer on a tiny custom run.
        let cfg = KernelConfig {
            scale: 4,
            iterations: 1,
            seed: 3,
            runtime_ms: 1.0,
        };
        let k = NeedlemanWunsch;
        let mut m = HostMemory::new(k.footprint_words(&cfg));
        let _ = k.run(&mut m, &cfg);
        let l = NeedlemanWunsch::seq_len(&cfg) + 1;
        // The corner score can never exceed the perfect-match bound.
        let corner = {
            use super::super::WordMemory;
            m.read_i64((l - 1) * l + (l - 1))
        };
        assert!(corner <= 5 * (l as i64 - 1));
    }

    #[test]
    fn idle_matrix_accumulates_decay_but_ecc_holds() {
        let cfg = KernelConfig {
            scale: 128,
            iterations: 1,
            seed: 4,
            runtime_ms: 5500.0,
        };
        let mut dram = relaxed_dram(31);
        let report = NeedlemanWunsch.characterize(&mut dram, &cfg);
        // nw's long idle phase lets weak cells in its footprint decay; the
        // traceback + corner reads then observe CEs — but SECDED corrects
        // them, so the alignment still matches the golden run.
        assert!(report.is_correct(), "nw output diverged");
    }

    #[test]
    fn score_prefers_matches() {
        assert!(NeedlemanWunsch::score(3, 3) > NeedlemanWunsch::score(3, 7));
        assert!(NeedlemanWunsch::score(3, 7) > NeedlemanWunsch::score(3, 6));
    }
}
