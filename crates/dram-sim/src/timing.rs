//! DDR3 memory-control-unit timing: bank state machine and the
//! performance cost of refresh.
//!
//! SLIMpro "allows to configure the parameters of the MCUs, such as
//! timings and the refresh period". Besides the power saved, relaxing
//! TREFP also removes refresh stalls: every tREFI the MCU must close all
//! banks of a rank for tRFC. This module implements the DDR3-1600 bank
//! state machine (ACT/READ/WRITE/PRE + refresh) with the standard timing
//! parameters so that overhead — and row-buffer locality — can be
//! measured rather than assumed.

use crate::geometry::{BankId, RankId, WordAddr, BANKS_PER_CHIP, RANK_COUNT};
use power_model::units::Milliseconds;
use serde::{Deserialize, Serialize};

/// DDR3 timing parameters in memory-clock cycles (800 MHz for DDR3-1600).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrTimings {
    /// Clock period in hundredths of nanoseconds (125 = 1.25 ns).
    pub clock_ns_x100: u32,
    /// ACT → READ/WRITE delay (tRCD).
    pub t_rcd: u32,
    /// READ → data (CAS latency, tCL).
    pub t_cl: u32,
    /// PRE → ACT delay (tRP).
    pub t_rp: u32,
    /// Minimum ACT → PRE (tRAS).
    pub t_ras: u32,
    /// Refresh cycle time for a 4 Gb device (tRFC).
    pub t_rfc: u32,
    /// Burst length in beats (BL8 → 4 clocks of data).
    pub burst_clocks: u32,
}

impl DdrTimings {
    /// DDR3-1600 (11-11-11) with a 4 Gb tRFC of 260 ns.
    pub fn ddr3_1600() -> Self {
        DdrTimings {
            clock_ns_x100: 125, // 1.25 ns
            t_rcd: 11,
            t_cl: 11,
            t_rp: 11,
            t_ras: 28,
            t_rfc: 208, // 260 ns / 1.25 ns
            burst_clocks: 4,
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        f64::from(self.clock_ns_x100) / 100.0
    }

    /// Average refresh interval (tREFI) in clocks for a whole-array
    /// refresh period: DDR3 spreads 8192 refresh commands per rank over
    /// TREFP.
    pub fn t_refi_clocks(&self, trefp: Milliseconds) -> u64 {
        let refi_ns = trefp.as_f64() * 1e6 / 8192.0;
        (refi_ns / self.clock_ns()).max(1.0) as u64
    }
}

/// Per-bank open-row state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum BankState {
    Idle,
    /// Row open since `ready_at` (activation completed).
    Open {
        row: u32,
    },
}

/// Outcome category of one access, for locality statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Row already open — CAS only.
    RowHit,
    /// Bank idle — ACT + CAS.
    RowMiss,
    /// Different row open — PRE + ACT + CAS.
    RowConflict,
}

/// Aggregate MCU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct McuStats {
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (bank was idle).
    pub row_misses: u64,
    /// Row conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Total clocks spent stalled behind refresh.
    pub refresh_stall_clocks: u64,
    /// Total refresh commands issued.
    pub refreshes: u64,
    /// Total access service clocks (excluding refresh stalls).
    pub access_clocks: u64,
}

impl McuStats {
    /// Row-buffer hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean stall clocks added per access by refresh collisions.
    pub fn stall_per_access(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.refresh_stall_clocks as f64 / total as f64
        }
    }
}

/// The MCU timing model: one rank-level command queue per rank with
/// per-bank row state and periodic refresh.
///
/// # Examples
///
/// ```
/// use dram_sim::timing::{DdrTimings, McuTimingModel};
/// use dram_sim::geometry::WordAddr;
/// use power_model::units::Milliseconds;
///
/// let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(),
///                                   Milliseconds::DDR3_NOMINAL_TREFP);
/// let addr = WordAddr::unflatten(0);
/// let first = mcu.access(addr);
/// let second = mcu.access(addr); // same row: cheaper
/// assert!(second < first);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McuTimingModel {
    timings: DdrTimings,
    trefp: Milliseconds,
    /// Current time in memory clocks.
    now: u64,
    /// Next refresh due time per rank.
    next_refresh: [u64; RANK_COUNT],
    /// Rank unavailable (refreshing) until this clock.
    busy_until: [u64; RANK_COUNT],
    banks: Vec<BankState>,
    stats: McuStats,
}

impl McuTimingModel {
    /// Creates the model at time zero with all banks idle.
    pub fn new(timings: DdrTimings, trefp: Milliseconds) -> Self {
        let refi = timings.t_refi_clocks(trefp);
        McuTimingModel {
            timings,
            trefp,
            now: 0,
            next_refresh: [refi; RANK_COUNT],
            busy_until: [0; RANK_COUNT],
            banks: vec![BankState::Idle; RANK_COUNT * BANKS_PER_CHIP],
            stats: McuStats::default(),
        }
    }

    /// Reconfigures the refresh period (takes effect from the next
    /// refresh).
    pub fn set_trefp(&mut self, trefp: Milliseconds) {
        self.trefp = trefp;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> McuStats {
        self.stats
    }

    /// Current time in memory clocks.
    pub fn now_clocks(&self) -> u64 {
        self.now
    }

    /// Services one word access; returns its latency in memory clocks
    /// (including any refresh stall it had to wait behind).
    pub fn access(&mut self, addr: WordAddr) -> u64 {
        let start = self.now;
        self.drain_refresh(addr.rank);
        // An access colliding with an in-progress refresh waits it out.
        let busy = self.busy_until[addr.rank.index()];
        if self.now < busy {
            self.stats.refresh_stall_clocks += busy - self.now;
            self.now = busy;
        }
        let (kind, service) = self.service_clocks(addr);
        match kind {
            AccessKind::RowHit => self.stats.row_hits += 1,
            AccessKind::RowMiss => self.stats.row_misses += 1,
            AccessKind::RowConflict => self.stats.row_conflicts += 1,
        }
        self.stats.access_clocks += service;
        self.now += service;
        self.banks[bank_index(addr.rank, addr.bank)] = BankState::Open { row: addr.row };
        self.now - start
    }

    /// Advances idle time (no accesses); refreshes still occur at their
    /// scheduled instants.
    pub fn idle(&mut self, clocks: u64) {
        let target = self.now + clocks;
        self.now = target;
        for r in 0..RANK_COUNT {
            let rank = RankId::new(r as u8);
            while self.next_refresh[r] <= self.now {
                self.perform_refresh(rank);
            }
        }
    }

    /// Executes any refreshes that came due on `rank` before `now`.
    fn drain_refresh(&mut self, rank: RankId) {
        while self.next_refresh[rank.index()] <= self.now {
            self.perform_refresh(rank);
        }
    }

    /// Performs the refresh at its scheduled instant: closes the rank's
    /// banks and marks the rank busy for tRFC from the *due time*.
    fn perform_refresh(&mut self, rank: RankId) {
        for b in 0..BANKS_PER_CHIP {
            self.banks[bank_index(rank, BankId::new(b as u8))] = BankState::Idle;
        }
        let due = self.next_refresh[rank.index()];
        let t_rfc = u64::from(self.timings.t_rfc);
        self.busy_until[rank.index()] = due + t_rfc;
        self.stats.refreshes += 1;
        let refi = self.timings.t_refi_clocks(self.trefp);
        self.next_refresh[rank.index()] += refi;
    }

    fn service_clocks(&self, addr: WordAddr) -> (AccessKind, u64) {
        let t = &self.timings;
        let state = self.banks[bank_index(addr.rank, addr.bank)];
        match state {
            BankState::Open { row } if row == addr.row => {
                (AccessKind::RowHit, u64::from(t.t_cl + t.burst_clocks))
            }
            BankState::Idle => (
                AccessKind::RowMiss,
                u64::from(t.t_rcd + t.t_cl + t.burst_clocks),
            ),
            BankState::Open { .. } => (
                AccessKind::RowConflict,
                u64::from(t.t_rp + t.t_rcd + t.t_cl + t.burst_clocks),
            ),
        }
    }
}

fn bank_index(rank: RankId, bank: BankId) -> usize {
    rank.index() * BANKS_PER_CHIP + bank.index()
}

/// Measures the refresh *performance* overhead for a random access stream
/// at a given refresh period — the §IV ablation quantifying what TREFP
/// relaxation buys besides power.
pub fn refresh_overhead_for(
    trefp: Milliseconds,
    accesses: u64,
    gap_clocks: u64,
    seed: u64,
) -> McuStats {
    let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(), trefp);
    let mut x = seed | 1;
    for _ in 0..accesses {
        // xorshift for a deterministic scattered stream.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let addr = WordAddr::unflatten(x % crate::geometry::WORD_COUNT);
        mcu.access(addr);
        mcu.idle(gap_clocks);
    }
    mcu.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RankId;

    fn addr(rank: u8, bank: u8, row: u32, col: u16) -> WordAddr {
        WordAddr::new(RankId::new(rank), BankId::new(bank), row, col)
    }

    #[test]
    fn row_hit_is_cheaper_than_miss_and_conflict() {
        let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(), Milliseconds::new(64.0));
        let miss = mcu.access(addr(0, 0, 10, 0));
        let hit = mcu.access(addr(0, 0, 10, 1));
        let conflict = mcu.access(addr(0, 0, 11, 0));
        assert!(hit < miss, "hit {hit} vs miss {miss}");
        assert!(miss < conflict, "miss {miss} vs conflict {conflict}");
        assert_eq!(mcu.stats().row_hits, 1);
        assert_eq!(mcu.stats().row_misses, 1);
        assert_eq!(mcu.stats().row_conflicts, 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(), Milliseconds::new(64.0));
        mcu.access(addr(0, 0, 10, 0));
        mcu.access(addr(0, 1, 99, 0)); // other bank: does not close bank 0
        let hit = mcu.access(addr(0, 0, 10, 1));
        assert_eq!(mcu.stats().row_hits, 1);
        assert_eq!(hit, 11 + 4);
    }

    #[test]
    fn refresh_closes_rows_and_stalls() {
        let trefp = Milliseconds::new(64.0);
        let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(), trefp);
        mcu.access(addr(0, 0, 10, 0));
        // Jump past the first refresh due time.
        let refi = DdrTimings::ddr3_1600().t_refi_clocks(trefp);
        mcu.idle(refi + 1);
        let after = mcu.access(addr(0, 0, 10, 1));
        // The idle absorbed the refresh, but the row is closed again.
        assert!(after >= 11 + 11 + 4, "latency {after}");
        assert!(mcu.stats().refreshes >= 1);
    }

    #[test]
    fn relaxed_refresh_reduces_overhead_35x() {
        let nominal = refresh_overhead_for(Milliseconds::new(64.0), 20_000, 500, 9);
        let relaxed = refresh_overhead_for(Milliseconds::DSN18_RELAXED_TREFP, 20_000, 500, 9);
        // Expected collision stall ≈ tRFC²/(2·tREFI) ≈ 3.5 clocks/access.
        assert!(
            nominal.stall_per_access() > 1.0,
            "nominal stall/access {}",
            nominal.stall_per_access()
        );
        assert!(
            relaxed.stall_per_access() < nominal.stall_per_access() / 10.0,
            "nominal {} vs relaxed {}",
            nominal.stall_per_access(),
            relaxed.stall_per_access()
        );
    }

    #[test]
    fn trefi_matches_jedec_for_nominal() {
        // 64 ms / 8192 = 7.8 µs → 6250 clocks at 1.25 ns.
        let t = DdrTimings::ddr3_1600();
        assert_eq!(t.t_refi_clocks(Milliseconds::new(64.0)), 6250);
    }

    #[test]
    fn sequential_stream_has_high_hit_ratio() {
        let mut mcu = McuTimingModel::new(DdrTimings::ddr3_1600(), Milliseconds::new(64.0));
        for col in 0..1024u16 {
            mcu.access(addr(0, 0, 5, col));
        }
        assert!(mcu.stats().hit_ratio() > 0.99);
    }
}
