//! SECDED (72,64) error-correcting code.
//!
//! The X-Gene2 MCUs protect every 64-bit word with 8 check bits of a
//! single-error-correct / double-error-detect Hamming code. SLIMpro reports
//! corrected errors (CE) and detected-but-uncorrectable errors (UE) to the
//! kernel; the paper's DRAM result hinges on "all manifested errors are
//! corrected by ECC" at relaxed refresh up to 60 °C.
//!
//! This is an extended Hamming implementation: check bits at power-of-two
//! positions of a 1-based 71-bit layout plus one overall-parity bit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of data bits per code word.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Total code-word length in bits.
pub const CODE_BITS: u32 = DATA_BITS + CHECK_BITS;

/// A 72-bit code word (stored in the low 72 bits of a `u128`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeWord(u128);

impl CodeWord {
    /// Raw 72-bit value.
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Builds a code word from raw bits (e.g. after simulated cell decay).
    ///
    /// # Panics
    ///
    /// Panics if bits above position 71 are set.
    pub fn from_bits(bits: u128) -> Self {
        assert!(
            bits >> CODE_BITS == 0,
            "code word has only {CODE_BITS} bits"
        );
        CodeWord(bits)
    }

    /// Flips a single bit (simulating a retention failure).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    pub fn with_bit_flipped(self, bit: u32) -> CodeWord {
        assert!(bit < CODE_BITS, "bit must be < {CODE_BITS}");
        CodeWord(self.0 ^ (1u128 << bit))
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    pub fn bit(self, bit: u32) -> bool {
        assert!(bit < CODE_BITS, "bit must be < {CODE_BITS}");
        (self.0 >> bit) & 1 == 1
    }
}

/// Outcome of decoding a (possibly corrupted) code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No error detected.
    Clean {
        /// The decoded 64-bit payload.
        data: u64,
    },
    /// A single-bit error was detected and corrected.
    Corrected {
        /// The corrected 64-bit payload.
        data: u64,
        /// Position of the flipped bit in the 72-bit code word.
        code_bit: u32,
    },
    /// A double-bit error was detected; the data is unrecoverable.
    Uncorrectable,
}

impl DecodeOutcome {
    /// The payload, if the word was clean or corrected.
    pub fn data(self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data } | DecodeOutcome::Corrected { data, .. } => Some(data),
            DecodeOutcome::Uncorrectable => None,
        }
    }

    /// Whether a correctable error (CE) was reported.
    pub fn is_corrected(self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }

    /// Whether an uncorrectable error (UE) was reported.
    pub fn is_uncorrectable(self) -> bool {
        matches!(self, DecodeOutcome::Uncorrectable)
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Clean { .. } => f.write_str("clean"),
            DecodeOutcome::Corrected { code_bit, .. } => write!(f, "CE@bit{code_bit}"),
            DecodeOutcome::Uncorrectable => f.write_str("UE"),
        }
    }
}

/// The (72,64) SECDED codec.
///
/// # Examples
///
/// ```
/// use dram_sim::ecc::{DecodeOutcome, Secded72};
///
/// let codec = Secded72::new();
/// let word = codec.encode(0xDEAD_BEEF_CAFE_F00D);
/// // A single flipped cell is corrected:
/// let outcome = codec.decode(word.with_bit_flipped(17));
/// assert_eq!(outcome.data(), Some(0xDEAD_BEEF_CAFE_F00D));
/// assert!(outcome.is_corrected());
/// // Two flipped cells are detected but not corrected:
/// let outcome = codec.decode(word.with_bit_flipped(17).with_bit_flipped(41));
/// assert!(outcome.is_uncorrectable());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Secded72 {
    _private: (),
}

/// Layout: 1-based Hamming positions `1..=71`. Positions 1,2,4,8,16,32,64
/// hold the 7 Hamming check bits; the remaining 64 positions hold data bits
/// in ascending order. Code-word bit 71 (the 72nd bit) holds the overall
/// parity of positions `1..=71`.
fn is_check_position(pos: u32) -> bool {
    pos.is_power_of_two()
}

impl Secded72 {
    /// Creates the codec.
    pub fn new() -> Self {
        Secded72 { _private: () }
    }

    /// Encodes a 64-bit payload into a 72-bit code word.
    pub fn encode(&self, data: u64) -> CodeWord {
        let mut word: u128 = 0;
        // Scatter data bits into non-power-of-two positions 1..=71.
        let mut data_idx = 0;
        for pos in 1..=71u32 {
            if is_check_position(pos) {
                continue;
            }
            if (data >> data_idx) & 1 == 1 {
                word |= 1u128 << (pos - 1);
            }
            data_idx += 1;
        }
        debug_assert_eq!(data_idx, DATA_BITS);
        // Hamming check bits: parity over positions with that bit set.
        for check in 0..7u32 {
            let mask = 1u32 << check;
            let mut parity = false;
            for pos in 1..=71u32 {
                if pos & mask != 0 && !is_check_position(pos) && (word >> (pos - 1)) & 1 == 1 {
                    parity = !parity;
                }
            }
            if parity {
                word |= 1u128 << ((1u32 << check) - 1);
            }
        }
        // Overall parity over positions 1..=71 (code bits 0..=70).
        let ones = (word & ((1u128 << 71) - 1)).count_ones();
        if ones % 2 == 1 {
            word |= 1u128 << 71;
        }
        CodeWord(word)
    }

    /// Decodes a code word, correcting a single-bit error and detecting
    /// double-bit errors.
    pub fn decode(&self, word: CodeWord) -> DecodeOutcome {
        let bits = word.0;
        // Recompute the Hamming syndrome over positions 1..=71.
        let mut syndrome: u32 = 0;
        for pos in 1..=71u32 {
            if (bits >> (pos - 1)) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let overall = (bits & ((1u128 << 72) - 1)).count_ones() % 2 == 1;

        let (corrected_bits, corrected_bit) = if syndrome == 0 && !overall {
            (bits, None)
        } else if overall {
            // Odd overall parity ⇒ an odd number of flips; assume one and
            // correct it. Syndrome 0 with odd parity means the overall
            // parity bit itself flipped.
            let code_bit = if syndrome == 0 { 71 } else { syndrome - 1 };
            if syndrome > 71 {
                // Syndrome points outside the word: a multi-bit corruption.
                return DecodeOutcome::Uncorrectable;
            }
            (bits ^ (1u128 << code_bit), Some(code_bit))
        } else {
            // Even parity with non-zero syndrome ⇒ double-bit error.
            return DecodeOutcome::Uncorrectable;
        };

        // Gather data bits back out of positions 1..=71.
        let mut data: u64 = 0;
        let mut data_idx = 0;
        for pos in 1..=71u32 {
            if is_check_position(pos) {
                continue;
            }
            if (corrected_bits >> (pos - 1)) & 1 == 1 {
                data |= 1u64 << data_idx;
            }
            data_idx += 1;
        }
        match corrected_bit {
            None => DecodeOutcome::Clean { data },
            Some(code_bit) => DecodeOutcome::Corrected { data, code_bit },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple_values() {
        let codec = Secded72::new();
        for data in [
            0u64,
            u64::MAX,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
            1,
            1 << 63,
        ] {
            let word = codec.encode(data);
            assert_eq!(codec.decode(word), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn corrects_every_single_bit_flip_of_zero_word() {
        let codec = Secded72::new();
        let word = codec.encode(0);
        for bit in 0..CODE_BITS {
            let out = codec.decode(word.with_bit_flipped(bit));
            assert_eq!(out.data(), Some(0), "bit {bit}");
            assert!(out.is_corrected(), "bit {bit}");
        }
    }

    #[test]
    fn corrected_bit_position_is_reported() {
        let codec = Secded72::new();
        let word = codec.encode(0x0123_4567_89AB_CDEF);
        match codec.decode(word.with_bit_flipped(42)) {
            DecodeOutcome::Corrected { code_bit, .. } => assert_eq!(code_bit, 42),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn detects_all_double_flips_on_sample_word() {
        let codec = Secded72::new();
        let word = codec.encode(0xFEED_FACE_DEAD_BEEF);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let corrupted = word.with_bit_flipped(a).with_bit_flipped(b);
                assert!(
                    codec.decode(corrupted).is_uncorrectable(),
                    "double flip ({a},{b}) not detected"
                );
            }
        }
    }

    #[test]
    fn code_word_bit_access() {
        let codec = Secded72::new();
        let word = codec.encode(u64::MAX);
        let flipped = word.with_bit_flipped(0);
        assert_ne!(word.bit(0), flipped.bit(0));
    }

    #[test]
    #[should_panic(expected = "bit must be <")]
    fn flip_rejects_out_of_range() {
        let codec = Secded72::new();
        let _ = codec.encode(0).with_bit_flipped(72);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data: u64) {
            let codec = Secded72::new();
            prop_assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean { data });
        }

        #[test]
        fn prop_single_flip_corrected(data: u64, bit in 0u32..CODE_BITS) {
            let codec = Secded72::new();
            let out = codec.decode(codec.encode(data).with_bit_flipped(bit));
            prop_assert!(out.is_corrected());
            prop_assert_eq!(out.data(), Some(data));
        }

        #[test]
        fn prop_double_flip_detected(
            data: u64,
            a in 0u32..CODE_BITS,
            b in 0u32..CODE_BITS,
        ) {
            prop_assume!(a != b);
            let codec = Secded72::new();
            let out = codec.decode(codec.encode(data).with_bit_flipped(a).with_bit_flipped(b));
            prop_assert!(out.is_uncorrectable());
        }
    }
}
