//! DDR3 geometry of the X-Gene2's 32 GiB memory subsystem.
//!
//! The characterized configuration is 4 ECC DIMMs (one per MCU channel),
//! each with 2 ranks of 9 Micron MT41J512M8 chips (512 M × 8, 4 Gb):
//! 8 data chips + 1 ECC chip per rank, 72 chips total — exactly the
//! population the paper characterizes. Each chip has 8 banks, 65 536 rows
//! and 1 024 columns of 8 bits.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of DIMMs in the characterized configuration.
pub const DIMM_COUNT: usize = 4;
/// Ranks per DIMM.
pub const RANKS_PER_DIMM: usize = 2;
/// Total ranks.
pub const RANK_COUNT: usize = DIMM_COUNT * RANKS_PER_DIMM;
/// Chips per rank on an ECC DIMM (8 data + 1 ECC).
pub const CHIPS_PER_RANK: usize = 9;
/// Total DRAM chips — the 72 chips the paper characterizes.
pub const CHIP_COUNT: usize = RANK_COUNT * CHIPS_PER_RANK;
/// Banks per chip (DDR3).
pub const BANKS_PER_CHIP: usize = 8;
/// Rows per bank (MT41J512M8).
pub const ROWS_PER_BANK: usize = 65_536;
/// Columns (8-bit each) per row per chip.
pub const COLS_PER_ROW: usize = 1_024;
/// Payload bits per ECC word.
pub const DATA_BITS_PER_WORD: usize = 64;
/// Total bits per ECC word (64 data + 8 check).
pub const CODE_BITS_PER_WORD: usize = 72;

/// Total number of 72-bit words in the array.
pub const WORD_COUNT: u64 = (RANK_COUNT * BANKS_PER_CHIP * ROWS_PER_BANK * COLS_PER_ROW) as u64;

/// Total data capacity in bytes (32 GiB).
pub const DATA_BYTES: u64 = WORD_COUNT * (DATA_BITS_PER_WORD as u64 / 8);

/// A rank index `0..8`, ordered by (DIMM, rank-in-DIMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RankId(u8);

impl RankId {
    /// Creates a rank id.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= 8`.
    pub fn new(rank: u8) -> Self {
        assert!((rank as usize) < RANK_COUNT, "rank must be < {RANK_COUNT}");
        RankId(rank)
    }

    /// The flat index `0..8`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The DIMM this rank sits on.
    pub fn dimm(self) -> u8 {
        self.0 / RANKS_PER_DIMM as u8
    }

    /// Rank index within its DIMM.
    pub fn rank_in_dimm(self) -> u8 {
        self.0 % RANKS_PER_DIMM as u8
    }

    /// All ranks in index order.
    pub fn all() -> impl Iterator<Item = RankId> {
        (0..RANK_COUNT as u8).map(RankId)
    }
}

impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimm{}/rank{}", self.dimm(), self.rank_in_dimm())
    }
}

/// A bank index `0..8` (shared across the chips of a rank: DDR3 bank
/// addresses go to every chip in lock-step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankId(u8);

impl BankId {
    /// Creates a bank id.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= 8`.
    pub fn new(bank: u8) -> Self {
        assert!(
            (bank as usize) < BANKS_PER_CHIP,
            "bank must be < {BANKS_PER_CHIP}"
        );
        BankId(bank)
    }

    /// The flat index `0..8`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// All banks in index order.
    pub fn all() -> impl Iterator<Item = BankId> {
        (0..BANKS_PER_CHIP as u8).map(BankId)
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Address of one 72-bit ECC word: `(rank, bank, row, col)`.
///
/// # Examples
///
/// ```
/// use dram_sim::geometry::{BankId, RankId, WordAddr};
///
/// let addr = WordAddr::new(RankId::new(3), BankId::new(5), 1234, 56);
/// let flat = addr.flatten();
/// assert_eq!(WordAddr::unflatten(flat), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WordAddr {
    /// Rank.
    pub rank: RankId,
    /// Bank.
    pub bank: BankId,
    /// Row within the bank, `0..65536`.
    pub row: u32,
    /// Column (64-bit word) within the row, `0..1024`.
    pub col: u16,
}

impl WordAddr {
    /// Creates a word address.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn new(rank: RankId, bank: BankId, row: u32, col: u16) -> Self {
        assert!(
            (row as usize) < ROWS_PER_BANK,
            "row must be < {ROWS_PER_BANK}"
        );
        assert!(
            (col as usize) < COLS_PER_ROW,
            "col must be < {COLS_PER_ROW}"
        );
        WordAddr {
            rank,
            bank,
            row,
            col,
        }
    }

    /// Flattens to a linear word index `0..WORD_COUNT`
    /// (rank-major, then bank, row, col).
    pub fn flatten(self) -> u64 {
        let r = self.rank.index() as u64;
        let b = self.bank.index() as u64;
        let row = u64::from(self.row);
        let col = u64::from(self.col);
        ((r * BANKS_PER_CHIP as u64 + b) * ROWS_PER_BANK as u64 + row) * COLS_PER_ROW as u64 + col
    }

    /// Inverse of [`WordAddr::flatten`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= WORD_COUNT`.
    pub fn unflatten(flat: u64) -> Self {
        assert!(flat < WORD_COUNT, "word index out of range");
        let col = (flat % COLS_PER_ROW as u64) as u16;
        let rest = flat / COLS_PER_ROW as u64;
        let row = (rest % ROWS_PER_BANK as u64) as u32;
        let rest = rest / ROWS_PER_BANK as u64;
        let bank = BankId::new((rest % BANKS_PER_CHIP as u64) as u8);
        let rank = RankId::new((rest / BANKS_PER_CHIP as u64) as u8);
        WordAddr {
            rank,
            bank,
            row,
            col,
        }
    }

    /// The row this word belongs to.
    pub fn row_addr(self) -> RowAddr {
        RowAddr {
            rank: self.rank,
            bank: self.bank,
            row: self.row,
        }
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/row{}/col{}",
            self.rank, self.bank, self.row, self.col
        )
    }
}

/// Address of one DRAM row (the refresh granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowAddr {
    /// Rank.
    pub rank: RankId,
    /// Bank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: u32,
}

impl RowAddr {
    /// Creates a row address.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn new(rank: RankId, bank: BankId, row: u32) -> Self {
        assert!(
            (row as usize) < ROWS_PER_BANK,
            "row must be < {ROWS_PER_BANK}"
        );
        RowAddr { rank, bank, row }
    }

    /// Flat row index across the whole array.
    pub fn flatten(self) -> u64 {
        (self.rank.index() as u64 * BANKS_PER_CHIP as u64 + self.bank.index() as u64)
            * ROWS_PER_BANK as u64
            + u64::from(self.row)
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/row{}", self.rank, self.bank, self.row)
    }
}

/// Location of a single DRAM cell: a word plus a bit index `0..72`.
///
/// Bit `i` lives on chip `i / 8`, DQ line `i % 8`; chip 8 is the ECC chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellAddr {
    /// The ECC word holding the cell.
    pub word: WordAddr,
    /// Bit position within the 72-bit code word.
    pub bit: u8,
}

impl CellAddr {
    /// Creates a cell address.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 72`.
    pub fn new(word: WordAddr, bit: u8) -> Self {
        assert!(
            (bit as usize) < CODE_BITS_PER_WORD,
            "bit must be < {CODE_BITS_PER_WORD}"
        );
        CellAddr { word, bit }
    }

    /// The physical chip (0..9 within the rank) holding this cell.
    pub fn chip_in_rank(self) -> u8 {
        self.bit / 8
    }

    /// The global chip index `0..72`.
    pub fn chip(self) -> usize {
        self.word.rank.index() * CHIPS_PER_RANK + usize::from(self.chip_in_rank())
    }

    /// Whether the cell sits on the rank's ECC chip.
    pub fn is_ecc_chip(self) -> bool {
        usize::from(self.chip_in_rank()) == CHIPS_PER_RANK - 1
    }
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/bit{}", self.word, self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_32_gib_with_72_chips() {
        assert_eq!(CHIP_COUNT, 72);
        assert_eq!(DATA_BYTES, 32 * 1024 * 1024 * 1024);
    }

    #[test]
    fn flatten_roundtrip_corners() {
        for flat in [0, 1, WORD_COUNT / 2, WORD_COUNT - 1] {
            assert_eq!(WordAddr::unflatten(flat).flatten(), flat);
        }
    }

    #[test]
    fn flatten_is_dense_and_ordered() {
        let a = WordAddr::new(RankId::new(0), BankId::new(0), 0, 0);
        let b = WordAddr::new(RankId::new(0), BankId::new(0), 0, 1);
        let c = WordAddr::new(RankId::new(0), BankId::new(0), 1, 0);
        assert_eq!(a.flatten() + 1, b.flatten());
        assert_eq!(c.flatten(), COLS_PER_ROW as u64);
    }

    #[test]
    fn rank_dimm_mapping() {
        assert_eq!(RankId::new(0).dimm(), 0);
        assert_eq!(RankId::new(1).dimm(), 0);
        assert_eq!(RankId::new(7).dimm(), 3);
        assert_eq!(RankId::new(7).rank_in_dimm(), 1);
        assert_eq!(RankId::all().count(), RANK_COUNT);
    }

    #[test]
    fn cell_chip_mapping() {
        let word = WordAddr::new(RankId::new(2), BankId::new(1), 0, 0);
        let data_cell = CellAddr::new(word, 17);
        assert_eq!(data_cell.chip_in_rank(), 2);
        assert!(!data_cell.is_ecc_chip());
        let ecc_cell = CellAddr::new(word, 71);
        assert_eq!(ecc_cell.chip_in_rank(), 8);
        assert!(ecc_cell.is_ecc_chip());
        assert_eq!(ecc_cell.chip(), 2 * CHIPS_PER_RANK + 8);
    }

    #[test]
    #[should_panic(expected = "row must be <")]
    fn rejects_out_of_range_row() {
        let _ = WordAddr::new(RankId::new(0), BankId::new(0), ROWS_PER_BANK as u32, 0);
    }

    #[test]
    #[should_panic(expected = "word index out of range")]
    fn unflatten_rejects_out_of_range() {
        let _ = WordAddr::unflatten(WORD_COUNT);
    }

    #[test]
    fn display_formats() {
        let w = WordAddr::new(RankId::new(3), BankId::new(5), 7, 9);
        assert_eq!(w.to_string(), "dimm1/rank1/bank5/row7/col9");
    }
}
