//! Behavioral DDR3 DRAM subsystem for the DSN'18 guardband study.
//!
//! Models the X-Gene2's 32 GiB, 72-chip ECC memory at the fidelity the
//! paper's DRAM characterization requires:
//!
//! * [`geometry`] — ranks / banks / rows / columns of the 4 × dual-rank
//!   Micron MT41J512M8 ECC-DIMM configuration;
//! * [`ecc`] — a real (72,64) SECDED codec, the mechanism behind the
//!   paper's "all manifested errors are corrected" result;
//! * [`retention`] — the sparse two-population weak-cell retention model
//!   calibrated to Table I (bank-to-bank and temperature variation);
//! * [`patterns`] — the DPBench data patterns (all-0s/1s, checkerboard,
//!   random);
//! * [`mod@array`] — the array simulator with staggered auto-refresh,
//!   access-driven inherent refresh, lazy decay evaluation and SLIMpro-style
//!   CE/UE logging;
//! * [`timing`] — the DDR3 MCU bank state machine and the performance
//!   cost of refresh (tRFC stalls every tREFI);
//! * [`scrubber`] — a patrol-scrub engine bounding how long correctable
//!   flips linger;
//! * [`aging`] — weak-cell population growth, retention decay and VRT
//!   flicker over deployment months (the lifetime subsystem's DRAM leg);
//! * [`math`] — normal/Poisson/lognormal sampling built on `rand` alone.
//!
//! # Examples
//!
//! Measure unique error locations per bank at 60 °C with the paper's 35×
//! relaxed refresh (the Table I experiment for one round):
//!
//! ```
//! use dram_sim::array::DramArray;
//! use dram_sim::patterns::DataPattern;
//! use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
//! use power_model::units::{Celsius, Milliseconds};
//!
//! let pop = WeakCellPopulation::generate(
//!     &RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 7);
//! let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
//! dram.fill_pattern(DataPattern::Random { seed: 0 });
//! dram.advance(2.0 * Milliseconds::DSN18_RELAXED_TREFP.as_f64());
//! dram.scrub();
//! let per_bank = dram.error_log().unique_per_bank();
//! assert!(per_bank.iter().sum::<u64>() > 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aging;
pub mod array;
pub mod ecc;
pub mod geometry;
pub mod math;
pub mod patterns;
pub mod retention;
pub mod scrubber;
pub mod timing;

pub use aging::DramAging;
pub use array::{
    AccessCounters, DramArray, ErrorKind, ErrorLog, ErrorRecord, ReadOutcome, ScrubReport,
};
pub use ecc::{CodeWord, DecodeOutcome, Secded72};
pub use geometry::{BankId, CellAddr, RankId, RowAddr, WordAddr};
pub use patterns::DataPattern;
pub use retention::{
    CouplingContext, Polarity, PopulationSpec, RetentionModel, WeakCell, WeakCellPopulation,
};
pub use scrubber::{PatrolScrubber, ScrubberConfig, ScrubberStats};
pub use timing::{AccessKind, DdrTimings, McuStats, McuTimingModel};
