//! The simulated 32 GiB DRAM array with sparse weak-cell decay.
//!
//! Data is held implicitly (whole-array pattern fills) or sparsely
//! (explicitly written words). Decay is evaluated lazily at read time: for
//! each weak cell in the word being read, the maximum recharge gap the cell
//! experienced since its data was written — accounting for the staggered
//! auto-refresh schedule at the configured TREFP and for the inherent
//! refresh performed by row accesses — is compared against the cell's
//! effective retention at the current temperature and data pattern.

use crate::ecc::{DecodeOutcome, Secded72};
use crate::geometry::{CellAddr, RowAddr, WordAddr, BANKS_PER_CHIP};
use crate::patterns::DataPattern;
use crate::retention::{CouplingContext, WeakCellPopulation};
use power_model::units::{Celsius, Milliseconds};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Number of staggered auto-refresh phases across rows.
const REFRESH_PHASES: u64 = 8192;

/// Kind of memory error, matching SLIMpro's reporting categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Corrected by SECDED (CE).
    Correctable,
    /// Detected but uncorrectable (UE).
    Uncorrectable,
}

/// One logged memory-error event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRecord {
    /// The failing cell.
    pub cell: CellAddr,
    /// Simulation time of the detection, in ms.
    pub time_ms: f64,
    /// CE or UE.
    pub kind: ErrorKind,
}

/// Accumulated error log with unique-location tracking (the Table I
/// metric counts *unique* error locations).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorLog {
    records: Vec<ErrorRecord>,
    unique: HashSet<CellAddr>,
    ce_count: u64,
    ue_count: u64,
}

impl ErrorLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ErrorLog::default()
    }

    fn record(&mut self, cell: CellAddr, time_ms: f64, kind: ErrorKind) {
        match kind {
            ErrorKind::Correctable => self.ce_count += 1,
            ErrorKind::Uncorrectable => self.ue_count += 1,
        }
        self.unique.insert(cell);
        self.records.push(ErrorRecord {
            cell,
            time_ms,
            kind,
        });
    }

    /// All events in detection order.
    pub fn records(&self) -> &[ErrorRecord] {
        &self.records
    }

    /// Total corrected-error events.
    pub fn ce_count(&self) -> u64 {
        self.ce_count
    }

    /// Total uncorrectable-error events.
    pub fn ue_count(&self) -> u64 {
        self.ue_count
    }

    /// Number of distinct failing cell locations seen so far.
    pub fn unique_locations(&self) -> usize {
        self.unique.len()
    }

    /// Unique failing locations per bank — the Table I row.
    pub fn unique_per_bank(&self) -> [u64; BANKS_PER_CHIP] {
        let mut counts = [0u64; BANKS_PER_CHIP];
        for cell in &self.unique {
            counts[cell.word.bank.index()] += 1;
        }
        counts
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.records.clear();
        self.unique.clear();
        self.ce_count = 0;
        self.ue_count = 0;
    }
}

/// Outcome of reading one word.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// The data delivered to the requester (ECC-corrected when possible);
    /// `None` on an uncorrectable error.
    pub data: Option<u64>,
    /// The ECC decode result.
    pub decode: DecodeOutcome,
    /// Code-word bit positions that had decayed.
    pub flipped_bits: Vec<u8>,
}

/// Read/write traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounters {
    /// Word reads.
    pub reads: u64,
    /// Word writes.
    pub writes: u64,
}

impl AccessCounters {
    /// Total bytes moved (8 payload bytes per access).
    pub fn bytes(&self) -> u64 {
        (self.reads + self.writes) * 8
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct FillState {
    pattern: DataPattern,
    time_ms: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct WordState {
    data: u64,
    written_at: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct RowState {
    written_at: f64,
    last_event: f64,
    max_gap: f64,
}

/// The simulated DRAM array.
///
/// # Examples
///
/// Run a one-round random DPBench at 60 °C under the 35× relaxed refresh:
///
/// ```
/// use dram_sim::array::DramArray;
/// use dram_sim::patterns::DataPattern;
/// use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
/// use power_model::units::{Celsius, Milliseconds};
///
/// let pop = WeakCellPopulation::generate(
///     &RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 42);
/// let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
/// dram.fill_pattern(DataPattern::Random { seed: 1 });
/// dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
/// let report = dram.scrub();
/// assert!(report.ce_events > 1_000); // thousands of correctable errors
/// assert_eq!(report.ue_events, 0);   // all corrected by SECDED
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramArray {
    population: WeakCellPopulation,
    codec: Secded72,
    trefp: Milliseconds,
    temperature: Celsius,
    now_ms: f64,
    fill: Option<FillState>,
    words: HashMap<u64, WordState>,
    rows: HashMap<u64, RowState>,
    log: ErrorLog,
    counters: AccessCounters,
}

/// Summary of a whole-array scrub (the DPBench read phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Words visited (only words containing weak cells can fail).
    pub words_read: u64,
    /// Correctable-error events raised.
    pub ce_events: u64,
    /// Uncorrectable-error events raised.
    pub ue_events: u64,
    /// Total decayed bits observed.
    pub flipped_bits: u64,
}

impl ScrubReport {
    /// Bit-error rate relative to a full-array scan of `total_bits`.
    pub fn ber(&self, total_bits: u64) -> f64 {
        if total_bits == 0 {
            return 0.0;
        }
        self.flipped_bits as f64 / total_bits as f64
    }
}

impl DramArray {
    /// Creates an array over a weak-cell population at an initial refresh
    /// period and temperature. The array starts zero-filled.
    pub fn new(population: WeakCellPopulation, trefp: Milliseconds, temperature: Celsius) -> Self {
        DramArray {
            population,
            codec: Secded72::new(),
            trefp,
            temperature,
            now_ms: 0.0,
            fill: Some(FillState {
                pattern: DataPattern::AllZeros,
                time_ms: 0.0,
            }),
            words: HashMap::new(),
            rows: HashMap::new(),
            log: ErrorLog::new(),
            counters: AccessCounters::default(),
        }
    }

    /// Current simulation time in ms.
    pub fn now(&self) -> f64 {
        self.now_ms
    }

    /// The weak-cell population.
    pub fn population(&self) -> &WeakCellPopulation {
        &self.population
    }

    /// The configured refresh period.
    pub fn trefp(&self) -> Milliseconds {
        self.trefp
    }

    /// Reconfigures the refresh period (the SLIMpro MCU knob).
    pub fn set_trefp(&mut self, trefp: Milliseconds) {
        self.trefp = trefp;
    }

    /// Current DRAM temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Sets the DRAM temperature (driven by the thermal testbed).
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
    }

    /// The error log.
    pub fn error_log(&self) -> &ErrorLog {
        &self.log
    }

    /// Clears the error log (between campaign runs).
    pub fn clear_error_log(&mut self) {
        self.log.clear();
    }

    /// Traffic counters.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// Advances simulated time by `ms`.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn advance(&mut self, ms: f64) {
        assert!(ms.is_finite() && ms >= 0.0, "time must advance forward");
        self.now_ms += ms;
    }

    /// Fills the entire array with `pattern` (instantaneous, at the current
    /// simulation time). Discards all explicit word data.
    pub fn fill_pattern(&mut self, pattern: DataPattern) {
        self.words.clear();
        self.rows.clear();
        self.fill = Some(FillState {
            pattern,
            time_ms: self.now_ms,
        });
    }

    /// Writes a 64-bit payload to `addr` at the current time.
    pub fn write_word(&mut self, addr: WordAddr, data: u64) {
        self.counters.writes += 1;
        let t = self.now_ms;
        self.words.insert(
            addr.flatten(),
            WordState {
                data,
                written_at: t,
            },
        );
        // A write activates the row: recharge everything in it and restart
        // the decay clock (row-granular approximation; our workloads write
        // rows densely).
        self.rows.insert(
            addr.row_addr().flatten(),
            RowState {
                written_at: t,
                last_event: t,
                max_gap: 0.0,
            },
        );
    }

    /// Reads the word at `addr`, evaluating weak-cell decay and ECC.
    pub fn read_word(&mut self, addr: WordAddr) -> ReadOutcome {
        self.counters.reads += 1;
        let outcome = self.read_word_internal(addr, true);
        self.touch_row(addr.row_addr());
        outcome
    }

    /// Registers a write whose payload the *caller* stores (externally
    /// backed data, used by workload kernels whose footprints are too large
    /// for the sparse map). Updates refresh bookkeeping only; rows without
    /// weak cells are skipped entirely, so this is cheap on the hot path.
    pub fn write_external(&mut self, addr: WordAddr) {
        self.counters.writes += 1;
        let flat_row = addr.row_addr().flatten();
        if !self.population.row_has_cells(flat_row) {
            return;
        }
        let t = self.now_ms;
        self.rows.insert(
            flat_row,
            RowState {
                written_at: t,
                last_event: t,
                max_gap: 0.0,
            },
        );
    }

    /// Reads a word whose payload the caller stores: evaluates weak-cell
    /// decay against `stored`, runs ECC, logs errors, and returns the
    /// (possibly corrected) data. Rows without weak cells short-circuit.
    pub fn read_external(&mut self, addr: WordAddr, stored: u64) -> ReadOutcome {
        self.counters.reads += 1;
        let flat_row = addr.row_addr().flatten();
        if !self.population.row_has_cells(flat_row) {
            return ReadOutcome {
                data: Some(stored),
                decode: DecodeOutcome::Clean { data: stored },
                flipped_bits: Vec::new(),
            };
        }
        let row_state = self.rows.get(&flat_row).copied().unwrap_or(RowState {
            written_at: self.fill.map(|f| f.time_ms).unwrap_or(0.0),
            last_event: self.fill.map(|f| f.time_ms).unwrap_or(0.0),
            max_gap: 0.0,
        });
        let outcome = self.evaluate_word(addr, stored, row_state, CouplingContext::WorstCase, true);
        self.touch_row(addr.row_addr());
        outcome
    }

    /// Scrubs every word that contains weak cells — the efficient
    /// equivalent of the DPBench full-array read (words without weak cells
    /// cannot produce errors).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport {
            words_read: 0,
            ce_events: 0,
            ue_events: 0,
            flipped_bits: 0,
        };
        let rows: Vec<u64> = self.population.rows_with_cells().collect();
        for flat_row in rows {
            // Distinct words within the row that hold weak cells.
            let mut cols: Vec<u16> = self
                .population
                .cells_in_row(flat_row)
                .iter()
                .map(|&i| self.population.cells()[i as usize].addr.word.col)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            let row = row_from_flat(flat_row);
            for col in cols {
                let addr = WordAddr::new(row.rank, row.bank, row.row, col);
                let out = self.read_word_internal(addr, true);
                report.words_read += 1;
                report.flipped_bits += out.flipped_bits.len() as u64;
                match out.decode {
                    DecodeOutcome::Corrected { .. } => report.ce_events += 1,
                    DecodeOutcome::Uncorrectable => report.ue_events += 1,
                    DecodeOutcome::Clean { .. } => {}
                }
            }
            self.touch_row(row);
        }
        report
    }

    /// The data stored at `addr` as originally written (golden value).
    pub fn golden_word(&self, addr: WordAddr) -> u64 {
        match self.words.get(&addr.flatten()) {
            Some(w) => w.data,
            None => self.fill.map(|f| f.pattern.word(addr)).unwrap_or(0),
        }
    }

    fn read_word_internal(&mut self, addr: WordAddr, log_errors: bool) -> ReadOutcome {
        let flat_row = addr.row_addr().flatten();
        let (data, written_at, context) = match self.words.get(&addr.flatten()) {
            Some(w) => (w.data, w.written_at, CouplingContext::WorstCase),
            None => match self.fill {
                Some(f) => (
                    f.pattern.word(addr),
                    f.time_ms,
                    f.pattern.coupling_context(),
                ),
                None => (0, 0.0, CouplingContext::Uniform),
            },
        };
        let row_state = self.rows.get(&flat_row).copied().unwrap_or(RowState {
            written_at,
            last_event: written_at,
            max_gap: 0.0,
        });
        self.evaluate_word(addr, data, row_state, context, log_errors)
    }

    /// Core decay + ECC evaluation for one word with explicit data and row
    /// state.
    fn evaluate_word(
        &mut self,
        addr: WordAddr,
        data: u64,
        row_state: RowState,
        context: CouplingContext,
        log_errors: bool,
    ) -> ReadOutcome {
        let flat_row = addr.row_addr().flatten();
        // Effective maximum recharge gap experienced since the data was
        // written: the accumulated per-row maximum plus the segment between
        // the last row event and now, cut by auto-refresh boundaries.
        let segment = self.max_segment_gap(flat_row, row_state.last_event, self.now_ms);
        let effective_gap = row_state.max_gap.max(segment);

        let code = self.codec.encode(data);
        let mut corrupted = code;
        let mut flipped_bits = Vec::new();
        {
            let model = self.population.model();
            for &idx in self.population.cells_in_row(flat_row) {
                let cell = &self.population.cells()[idx as usize];
                if cell.addr.word != addr {
                    continue;
                }
                let stored = code.bit(u32::from(cell.addr.bit));
                if stored != cell.polarity.charged_value() {
                    continue; // discharged state cannot decay
                }
                let retention = cell.retention_ms(self.temperature, context, model);
                if effective_gap > retention {
                    corrupted = corrupted.with_bit_flipped(u32::from(cell.addr.bit));
                    flipped_bits.push(cell.addr.bit);
                }
            }
        }

        let decode = self.codec.decode(corrupted);
        if log_errors {
            match decode {
                DecodeOutcome::Corrected { .. } => {
                    for &bit in &flipped_bits {
                        self.log.record(
                            CellAddr::new(addr, bit),
                            self.now_ms,
                            ErrorKind::Correctable,
                        );
                    }
                }
                DecodeOutcome::Uncorrectable => {
                    for &bit in &flipped_bits {
                        self.log.record(
                            CellAddr::new(addr, bit),
                            self.now_ms,
                            ErrorKind::Uncorrectable,
                        );
                    }
                }
                DecodeOutcome::Clean { .. } => {}
            }
        }
        ReadOutcome {
            data: decode.data(),
            decode,
            flipped_bits,
        }
    }

    /// Registers a row activation at the current time, folding the elapsed
    /// interval into the row's maximum-gap accumulator.
    fn touch_row(&mut self, row: RowAddr) {
        let flat = row.flatten();
        let (written_at, last_event, max_gap) = match self.rows.get(&flat) {
            Some(s) => (s.written_at, s.last_event, s.max_gap),
            None => match self.fill {
                Some(f) => (f.time_ms, f.time_ms, 0.0),
                None => (0.0, 0.0, 0.0),
            },
        };
        let segment = self.max_segment_gap(flat, last_event, self.now_ms);
        self.rows.insert(
            flat,
            RowState {
                written_at,
                last_event: self.now_ms,
                max_gap: max_gap.max(segment),
            },
        );
    }

    /// Longest charge-holding stretch within `[a, b]` for a row, given the
    /// staggered auto-refresh schedule: recharges happen at `a`, at every
    /// auto-refresh boundary inside `(a, b)`, and the stretch ends at `b`.
    fn max_segment_gap(&self, flat_row: u64, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let p = self.trefp.as_f64();
        if p <= 0.0 {
            return b - a;
        }
        let stagger = (flat_row % REFRESH_PHASES) as f64 / REFRESH_PHASES as f64 * p;
        // First auto-refresh strictly after `a`.
        let k0 = ((a - stagger) / p).floor() + 1.0;
        let ar0 = stagger + k0 * p;
        if ar0 >= b {
            return b - a;
        }
        // Last auto-refresh at or before `b`.
        let k1 = ((b - stagger) / p).floor();
        let ar1 = stagger + k1 * p;
        let first = ar0 - a;
        let middle = if ar1 > ar0 + 1e-9 { p } else { 0.0 };
        let last = b - ar1;
        first.max(middle).max(last)
    }
}

fn row_from_flat(flat: u64) -> RowAddr {
    use crate::geometry::{BankId, RankId, ROWS_PER_BANK};
    let row = (flat % ROWS_PER_BANK as u64) as u32;
    let rest = flat / ROWS_PER_BANK as u64;
    let bank = BankId::new((rest % BANKS_PER_CHIP as u64) as u8);
    let rank = RankId::new((rest / BANKS_PER_CHIP as u64) as u8);
    RowAddr::new(rank, bank, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::{PopulationSpec, RetentionModel};

    fn test_array(temp_c: f64, trefp: Milliseconds) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            42,
        );
        DramArray::new(pop, trefp, Celsius::new(temp_c))
    }

    #[test]
    fn nominal_refresh_shows_no_errors() {
        let mut dram = test_array(60.0, Milliseconds::DDR3_NOMINAL_TREFP);
        dram.fill_pattern(DataPattern::Random { seed: 3 });
        dram.advance(10_000.0);
        let report = dram.scrub();
        assert_eq!(report.ce_events, 0);
        assert_eq!(report.ue_events, 0);
    }

    #[test]
    fn relaxed_refresh_produces_correctable_errors_only() {
        let mut dram = test_array(60.0, Milliseconds::DSN18_RELAXED_TREFP);
        dram.fill_pattern(DataPattern::Random { seed: 3 });
        dram.advance(2.0 * Milliseconds::DSN18_RELAXED_TREFP.as_f64());
        let report = dram.scrub();
        assert!(report.ce_events > 1_000, "CEs {}", report.ce_events);
        // SECDED handles everything at ≤ 60 °C (sparse cells rarely pair up
        // in one word; with this seed none do).
        assert_eq!(report.ue_events, 0, "UEs {}", report.ue_events);
    }

    #[test]
    fn random_pattern_beats_solids_and_checkerboard() {
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut flips = Vec::new();
        for pattern in [
            DataPattern::AllZeros,
            DataPattern::AllOnes,
            DataPattern::Checkerboard { inverted: false },
            DataPattern::Random { seed: 9 },
        ] {
            let mut dram = test_array(60.0, relaxed);
            dram.fill_pattern(pattern);
            dram.advance(relaxed.as_f64() * 2.0);
            flips.push((pattern, dram.scrub().flipped_bits));
        }
        let random = flips[3].1;
        for (pattern, f) in &flips[..3] {
            assert!(random > *f, "random {random} vs {pattern} {f}");
        }
        // Checkerboard stresses coupling more than solids.
        assert!(flips[2].1 > flips[0].1.min(flips[1].1));
    }

    #[test]
    fn frequent_access_inherently_refreshes() {
        // A row read more often than its cells' retention never fails,
        // even at relaxed TREFP — the mechanism behind low HPC-workload BER.
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut dram = test_array(60.0, relaxed);
        // Find a word with a weak cell that fails under the fill pattern.
        dram.fill_pattern(DataPattern::AllOnes);
        let cell = dram
            .population()
            .cells()
            .iter()
            .find(|c| {
                c.polarity.charged_value()
                    && c.retention_ms(
                        Celsius::new(60.0),
                        CouplingContext::Uniform,
                        dram.population().model(),
                    ) < 600.0
            })
            .expect("population has a fast-decaying true cell")
            .clone();
        let addr = cell.addr.word;
        // Access the row every 100 ms for three refresh periods.
        let steps = (relaxed.as_f64() * 3.0 / 100.0) as usize;
        let mut any_error = false;
        for _ in 0..steps {
            dram.advance(100.0);
            let out = dram.read_word(addr);
            any_error |= !out.flipped_bits.is_empty();
        }
        assert!(!any_error, "inherent refresh failed to protect the cell");
    }

    #[test]
    fn infrequent_access_lets_cells_decay() {
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut dram = test_array(60.0, relaxed);
        dram.fill_pattern(DataPattern::AllOnes);
        let cell = dram
            .population()
            .cells()
            .iter()
            .find(|c| {
                c.polarity.charged_value()
                    && c.retention_ms(
                        Celsius::new(60.0),
                        CouplingContext::Uniform,
                        dram.population().model(),
                    ) < 600.0
            })
            .expect("population has a fast-decaying true cell")
            .clone();
        // Wait a full relaxed refresh period without touching the row.
        dram.advance(relaxed.as_f64() * 1.5);
        let out = dram.read_word(cell.addr.word);
        assert!(out.flipped_bits.contains(&cell.addr.bit));
        assert!(out.decode.is_corrected());
        assert_eq!(out.data, Some(u64::MAX));
    }

    #[test]
    fn explicit_write_resets_decay() {
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut dram = test_array(60.0, relaxed);
        dram.fill_pattern(DataPattern::AllOnes);
        let cell = dram
            .population()
            .cells()
            .iter()
            .find(|c| c.polarity.charged_value() && c.retention_at_60c_ms < 600.0)
            .unwrap()
            .clone();
        dram.advance(relaxed.as_f64());
        // Rewrite just before reading: no time to decay.
        dram.write_word(cell.addr.word, u64::MAX);
        dram.advance(1.0);
        let out = dram.read_word(cell.addr.word);
        assert!(out.flipped_bits.is_empty());
        assert_eq!(out.data, Some(u64::MAX));
    }

    #[test]
    fn golden_word_reflects_fill_and_writes() {
        let mut dram = test_array(50.0, Milliseconds::DDR3_NOMINAL_TREFP);
        dram.fill_pattern(DataPattern::Checkerboard { inverted: false });
        let addr = WordAddr::unflatten(12345);
        let pattern_value = DataPattern::Checkerboard { inverted: false }.word(addr);
        assert_eq!(dram.golden_word(addr), pattern_value);
        dram.write_word(addr, 77);
        assert_eq!(dram.golden_word(addr), 77);
    }

    #[test]
    fn unique_error_locations_accumulate_across_rounds() {
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut dram = test_array(60.0, relaxed);
        let mut last_unique = 0;
        for round in 0..4 {
            dram.fill_pattern(DataPattern::Random { seed: round });
            dram.advance(relaxed.as_f64() * 2.0);
            dram.scrub();
            let unique = dram.error_log().unique_locations();
            assert!(unique >= last_unique);
            last_unique = unique;
        }
        // Multiple random rounds cover both polarities: the unique count
        // approaches the failing-cell population.
        let failing = dram
            .population()
            .failing_cells(Celsius::new(60.0), relaxed, CouplingContext::WorstCase)
            .count();
        assert!(
            last_unique as f64 > 0.85 * failing as f64,
            "unique {last_unique} vs failing population {failing}"
        );
    }

    #[test]
    fn counters_track_traffic() {
        let mut dram = test_array(50.0, Milliseconds::DDR3_NOMINAL_TREFP);
        let addr = WordAddr::unflatten(1);
        dram.write_word(addr, 1);
        dram.read_word(addr);
        dram.read_word(addr);
        assert_eq!(dram.counters().writes, 1);
        assert_eq!(dram.counters().reads, 2);
        assert_eq!(dram.counters().bytes(), 24);
    }

    #[test]
    fn max_segment_gap_respects_autorefresh() {
        let dram = test_array(50.0, Milliseconds::new(1000.0));
        // A row whose stagger is 0: gaps are cut at multiples of 1000 ms.
        let gap = dram.max_segment_gap(0, 0.0, 5_500.0);
        assert!((gap - 1000.0).abs() < 1e-6, "gap {gap}");
        let short = dram.max_segment_gap(0, 100.0, 600.0);
        assert!((short - 500.0).abs() < 1e-6, "gap {short}");
    }

    #[test]
    fn external_access_detects_decay_without_storing_data() {
        let relaxed = Milliseconds::DSN18_RELAXED_TREFP;
        let mut dram = test_array(60.0, relaxed);
        let cell = dram
            .population()
            .cells()
            .iter()
            .find(|c| c.retention_at_60c_ms < 600.0)
            .unwrap()
            .clone();
        let stored = if cell.polarity.charged_value() {
            u64::MAX
        } else {
            0
        };
        dram.write_external(cell.addr.word);
        dram.advance(relaxed.as_f64() * 1.5);
        let out = dram.read_external(cell.addr.word, stored);
        assert!(out.flipped_bits.contains(&cell.addr.bit));
        assert_eq!(out.data, Some(stored), "ECC corrects the flip");
        assert!(dram.error_log().ce_count() > 0);
    }

    #[test]
    fn external_access_fast_path_for_clean_rows() {
        let mut dram = test_array(50.0, Milliseconds::DDR3_NOMINAL_TREFP);
        // Find a row with no weak cells (flat row 0 may host one; search).
        let occupied: std::collections::HashSet<u64> =
            dram.population().rows_with_cells().collect();
        let flat = (0..).find(|r| !occupied.contains(r)).unwrap();
        let addr = WordAddr::new(
            crate::geometry::RankId::new(0),
            crate::geometry::BankId::new(0),
            flat as u32,
            0,
        );
        dram.write_external(addr);
        dram.advance(100_000.0);
        let out = dram.read_external(addr, 0xABCD);
        assert_eq!(out.data, Some(0xABCD));
        assert!(out.flipped_bits.is_empty());
        assert_eq!(dram.counters().reads, 1);
        assert_eq!(dram.counters().writes, 1);
    }

    #[test]
    fn scrub_report_ber() {
        let r = ScrubReport {
            words_read: 10,
            ce_events: 5,
            ue_events: 0,
            flipped_bits: 5,
        };
        assert!((r.ber(1000) - 0.005).abs() < 1e-12);
        assert_eq!(r.ber(0), 0.0);
    }
}
