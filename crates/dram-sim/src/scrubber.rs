//! Patrol scrubbing: the background engine that walks memory, reads every
//! word through ECC and writes corrected data back.
//!
//! Under a relaxed refresh period, decayed bits latch until the word is
//! rewritten; a patrol scrubber bounds how long a correctable flip can
//! linger (and therefore how likely a second, alignment-defeating flip
//! becomes on systems without word repair). The paper's platform relies on
//! SECDED alone; the scrubber is the natural hardening a deployment would
//! add, so we build it and quantify what it buys.

use crate::array::DramArray;
use crate::geometry::{WordAddr, BANKS_PER_CHIP};
use serde::{Deserialize, Serialize};
use telemetry::Level;

/// Patrol scrubber configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubberConfig {
    /// Full-array patrol period in ms (how fast the pointer wraps).
    pub patrol_period_ms: f64,
    /// Words visited per burst (the engine runs in small bursts to bound
    /// bandwidth interference).
    pub burst_words: usize,
}

impl ScrubberConfig {
    /// A deployment-typical patrol: one pass per 4 refresh periods in
    /// 4096-word bursts.
    pub fn dsn18() -> Self {
        ScrubberConfig {
            patrol_period_ms: 4.0 * power_model::units::Milliseconds::DSN18_RELAXED_TREFP.as_f64(),
            burst_words: 4096,
        }
    }
}

/// Scrubber telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubberStats {
    /// Words patrolled.
    pub words_scrubbed: u64,
    /// Corrected flips written back clean.
    pub corrections: u64,
    /// Uncorrectable words encountered (left in place, reported).
    pub uncorrectable: u64,
}

/// The patrol engine. It walks only rows that can fail (rows hosting weak
/// cells), which is what a real scrubber effectively does too — clean rows
/// cost it nothing observable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatrolScrubber {
    config: ScrubberConfig,
    /// Scrub targets: every word that hosts a weak cell, in address order.
    targets: Vec<WordAddr>,
    /// Next target index.
    cursor: usize,
    stats: ScrubberStats,
    /// Per-bank breakdown of the same counters — the drift signal the
    /// lifetime subsystem's maintenance scheduler consumes (a bank whose
    /// CE rate climbs is a bank whose retention margin is eroding).
    #[serde(default = "default_bank_stats")]
    bank_stats: Vec<ScrubberStats>,
}

/// One zeroed stat block per bank (serde default for old snapshots).
fn default_bank_stats() -> Vec<ScrubberStats> {
    vec![ScrubberStats::default(); BANKS_PER_CHIP]
}

impl PatrolScrubber {
    /// Builds a scrubber over the array's weak-cell word list.
    pub fn new(dram: &DramArray, config: ScrubberConfig) -> Self {
        let mut targets: Vec<WordAddr> = dram
            .population()
            .cells()
            .iter()
            .map(|c| c.addr.word)
            .collect();
        targets.sort_by_key(|w| w.flatten());
        targets.dedup();
        PatrolScrubber {
            config,
            targets,
            cursor: 0,
            stats: ScrubberStats::default(),
            bank_stats: default_bank_stats(),
        }
    }

    /// Telemetry so far.
    pub fn stats(&self) -> ScrubberStats {
        self.stats
    }

    /// Per-bank telemetry so far, indexed by bank.
    pub fn bank_stats(&self) -> &[ScrubberStats] {
        &self.bank_stats
    }

    /// Corrections per scrubbed word, per bank — `None` for banks the
    /// patrol has not visited yet. This is the normalized CE-rate the
    /// maintenance scheduler compares against its drift threshold: raw
    /// correction counts scale with patrol speed, the rate does not.
    pub fn ce_rate_per_bank(&self) -> [Option<f64>; BANKS_PER_CHIP] {
        let mut rates = [None; BANKS_PER_CHIP];
        for (rate, stats) in rates.iter_mut().zip(&self.bank_stats) {
            if stats.words_scrubbed > 0 {
                *rate = Some(stats.corrections as f64 / stats.words_scrubbed as f64);
            }
        }
        rates
    }

    /// Number of distinct scrub targets.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Runs the patrol for `elapsed_ms`, interleaving bursts with the time
    /// advance on `dram`. Reads go through the normal ECC path; corrected
    /// words are written back clean (restarting their decay clock).
    pub fn run_for(&mut self, dram: &mut DramArray, elapsed_ms: f64) {
        if self.targets.is_empty() || elapsed_ms <= 0.0 {
            dram.advance(elapsed_ms.max(0.0));
            return;
        }
        // Words the patrol must visit in this window to hold its period.
        let share = elapsed_ms / self.config.patrol_period_ms;
        let to_visit = ((self.targets.len() as f64 * share).ceil() as usize).max(1);
        let bursts = to_visit.div_ceil(self.config.burst_words);
        let ms_per_burst = elapsed_ms / bursts as f64;
        let before = self.stats;
        let mut remaining = to_visit;
        for _ in 0..bursts {
            let n = remaining.min(self.config.burst_words);
            for _ in 0..n {
                let addr = self.targets[self.cursor];
                self.cursor = (self.cursor + 1) % self.targets.len();
                let bank = addr.bank.index();
                let out = dram.read_word(addr);
                self.stats.words_scrubbed += 1;
                self.bank_stats[bank].words_scrubbed += 1;
                match out.decode {
                    crate::ecc::DecodeOutcome::Corrected { data, .. } => {
                        dram.write_word(addr, data);
                        self.stats.corrections += 1;
                        self.bank_stats[bank].corrections += 1;
                        telemetry::counter!("scrub_corrections_total");
                    }
                    crate::ecc::DecodeOutcome::Uncorrectable => {
                        self.stats.uncorrectable += 1;
                        self.bank_stats[bank].uncorrectable += 1;
                        telemetry::event!(
                            Level::Warn,
                            "scrub_ue",
                            word = addr.flatten(),
                            sim_ms = dram.now(),
                        );
                        telemetry::counter!("scrub_ue_total");
                    }
                    crate::ecc::DecodeOutcome::Clean { .. } => {}
                }
            }
            remaining -= n;
            dram.advance(ms_per_burst);
        }
        telemetry::event!(
            Level::Debug,
            "scrub_pass",
            elapsed_ms = elapsed_ms,
            words = self.stats.words_scrubbed - before.words_scrubbed,
            corrections = self.stats.corrections - before.corrections,
            uncorrectable = self.stats.uncorrectable - before.uncorrectable,
            sim_ms = dram.now(),
        );
        telemetry::counter!(
            "scrub_words_total",
            self.stats.words_scrubbed - before.words_scrubbed
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::DataPattern;
    use crate::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
    use power_model::units::{Celsius, Milliseconds};

    fn relaxed_dram(seed: u64) -> DramArray {
        let pop = WeakCellPopulation::generate(
            &RetentionModel::xgene2_micron(),
            PopulationSpec::dsn18(),
            seed,
        );
        DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0))
    }

    #[test]
    fn scrubber_corrects_latched_flips() {
        let mut dram = relaxed_dram(71);
        dram.fill_pattern(DataPattern::Random { seed: 1 });
        // Let flips latch.
        dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
        let mut scrubber = PatrolScrubber::new(
            &dram,
            ScrubberConfig {
                patrol_period_ms: 1000.0,
                burst_words: 4096,
            },
        );
        // One full patrol pass worth of time.
        scrubber.run_for(&mut dram, 1000.0);
        assert!(
            scrubber.stats().corrections > 1_000,
            "{:?}",
            scrubber.stats()
        );
        assert_eq!(scrubber.stats().uncorrectable, 0);
    }

    #[test]
    fn scrubbed_array_reports_fewer_errors_on_the_next_read() {
        // After a scrub pass, words were rewritten clean; an immediate
        // re-read observes (almost) nothing, while an unscrubbed twin
        // still reports every latched flip.
        let mut scrubbed = relaxed_dram(72);
        let mut bare = relaxed_dram(72);
        for d in [&mut scrubbed, &mut bare] {
            d.fill_pattern(DataPattern::Random { seed: 2 });
            d.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
        }
        let mut scrubber = PatrolScrubber::new(
            &scrubbed,
            ScrubberConfig {
                patrol_period_ms: 500.0,
                burst_words: 8192,
            },
        );
        scrubber.run_for(&mut scrubbed, 500.0);
        bare.advance(500.0);

        let scrubbed_report = scrubbed.scrub();
        let bare_report = bare.scrub();
        assert!(
            scrubbed_report.flipped_bits * 5 < bare_report.flipped_bits,
            "scrubbed {} vs bare {}",
            scrubbed_report.flipped_bits,
            bare_report.flipped_bits
        );
    }

    #[test]
    fn patrol_paces_itself() {
        let dram = relaxed_dram(73);
        let mut scrubber = PatrolScrubber::new(
            &dram,
            ScrubberConfig {
                patrol_period_ms: 10_000.0,
                burst_words: 512,
            },
        );
        let mut d = relaxed_dram(73);
        // A tenth of the period should visit about a tenth of the targets.
        scrubber.run_for(&mut d, 1_000.0);
        let expected = scrubber.target_count() as f64 / 10.0;
        let visited = scrubber.stats().words_scrubbed as f64;
        assert!(
            (visited - expected).abs() / expected < 0.1,
            "visited {visited}, expected ≈{expected}"
        );
    }

    #[test]
    fn bank_stats_partition_the_totals() {
        let mut dram = relaxed_dram(75);
        dram.fill_pattern(DataPattern::Random { seed: 3 });
        dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
        let mut scrubber = PatrolScrubber::new(
            &dram,
            ScrubberConfig {
                patrol_period_ms: 1000.0,
                burst_words: 4096,
            },
        );
        scrubber.run_for(&mut dram, 1000.0);
        let totals = scrubber.stats();
        let banks = scrubber.bank_stats();
        assert_eq!(banks.len(), BANKS_PER_CHIP);
        assert_eq!(
            banks.iter().map(|b| b.words_scrubbed).sum::<u64>(),
            totals.words_scrubbed
        );
        assert_eq!(
            banks.iter().map(|b| b.corrections).sum::<u64>(),
            totals.corrections
        );
        assert_eq!(
            banks.iter().map(|b| b.uncorrectable).sum::<u64>(),
            totals.uncorrectable
        );
        // A full patrol pass at 60 °C touches every bank's weak words.
        assert!(banks.iter().all(|b| b.words_scrubbed > 0));
    }

    #[test]
    fn ce_rate_is_normalized_per_scrubbed_word() {
        let mut dram = relaxed_dram(76);
        dram.fill_pattern(DataPattern::Random { seed: 4 });
        dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 2.0);
        let mut scrubber = PatrolScrubber::new(
            &dram,
            ScrubberConfig {
                patrol_period_ms: 1000.0,
                burst_words: 4096,
            },
        );
        assert!(
            scrubber.ce_rate_per_bank().iter().all(Option::is_none),
            "no rate before the patrol has scrubbed anything"
        );
        scrubber.run_for(&mut dram, 1000.0);
        for (b, rate) in scrubber.ce_rate_per_bank().iter().enumerate() {
            let rate = rate.expect("full pass visits every bank");
            assert!((0.0..=1.0).contains(&rate), "bank {b}: rate {rate}");
            let stats = scrubber.bank_stats()[b];
            let expected = stats.corrections as f64 / stats.words_scrubbed as f64;
            assert!((rate - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_population_is_a_noop() {
        let mut dram = relaxed_dram(74);
        let mut scrubber = PatrolScrubber::new(&dram, ScrubberConfig::dsn18());
        // Force the degenerate path by draining targets.
        scrubber.targets.clear();
        scrubber.run_for(&mut dram, 100.0);
        assert_eq!(scrubber.stats().words_scrubbed, 0);
        assert!((dram.now() - 100.0).abs() < 1e-9);
    }
}
