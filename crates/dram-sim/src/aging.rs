//! DRAM wear-out: weak-cell population growth, retention drift and
//! variable-retention-time (VRT) flicker over deployment months.
//!
//! The safe refresh periods the characterization campaign derives are a
//! snapshot: the retention literature (Liu ISCA'13, Qureshi DSN'15)
//! shows the weak-cell tail is not static. Three mechanisms move it:
//!
//! * **population growth** — cells degrade into the weak tail over
//!   time (latent defects, charge-trap drift), so a bank slowly gains
//!   marginal cells the original DPBench campaign never saw;
//! * **retention decay** — cells already in the tail leak slightly
//!   faster as the array ages, eroding the per-bank retention floor;
//! * **VRT flicker** — a fraction of the grown cells toggle between a
//!   good and a leaky state on week-to-month timescales, so they are
//!   only intermittently visible to scrub and re-characterization.
//!
//! Everything here is a pure function of `(model, base population,
//! months, seed)`: the grown-cell sequence per bank is *prefix-stable*
//! (the first `k` grown cells at month `m₂ ≥ m₁` are exactly the grown
//! cells of month `m₁`), so a fleet-lifetime simulation can evaluate
//! any month in any order — or on any worker — and get byte-identical
//! results.
//!
//! Grown cells respect the one-weak-cell-per-code-word invariant of
//! [`WeakCellPopulation::generate`]: a word that already hosts a weak
//! cell (original or grown, dormant VRT included) is never chosen
//! again, so SECDED keeps correcting every manifested flip and DRAM
//! aging produces a rising *correctable*-error rate — a drift signal,
//! never silent corruption.

use crate::geometry::{BankId, BANKS_PER_CHIP};
use crate::math;
use crate::retention::{random_cell, CouplingContext, WeakCell, WeakCellPopulation};
use power_model::units::{Celsius, Milliseconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// splitmix64 finalizer — the stateless hash behind per-cell attribute
/// streams and VRT flicker decisions.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Location parameter of the grown-cell retention lognormal: median
/// 0.35 s at 60 °C, well inside the weak tail.
const GROWTH_MU_LN_S: f64 = -1.0498221244986778; // ln(0.35)
/// Shape of the grown-cell retention lognormal — wide enough that a
/// meaningful fraction lands below a deployed (margined) refresh
/// period and becomes scrub-visible.
const GROWTH_SIGMA: f64 = 1.0;

/// The DRAM aging law: deterministic knobs, no state.
///
/// # Examples
///
/// ```
/// use dram_sim::aging::DramAging;
/// use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
///
/// let base = WeakCellPopulation::generate(
///     &RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 7);
/// let aging = DramAging::dsn18();
/// let aged = aging.aged(&base, 24, 7);
/// assert!(aged.len() > base.len()); // the weak tail only ever grows
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramAging {
    /// New weak cells entering each bank's tail per deployment month.
    pub growth_cells_per_bank_month: f64,
    /// Fraction of grown cells that are VRT (intermittently leaky).
    pub vrt_fraction: f64,
    /// Probability a VRT cell is in its leaky state in a given month.
    pub vrt_duty: f64,
    /// Multiplicative retention loss of existing cells per month.
    pub retention_decay_per_month: f64,
}

impl DramAging {
    /// Rates sized for the lifetime study: fast enough that a deployed
    /// board accumulates a scrub-visible correctable-error signature
    /// within the simulated multi-year horizon, slow enough that the
    /// 25 % retention guardband of the deployed refresh period is not
    /// erased in the first months.
    pub fn dsn18() -> Self {
        DramAging {
            growth_cells_per_bank_month: 0.6,
            vrt_fraction: 0.3,
            vrt_duty: 0.5,
            retention_decay_per_month: 0.0015,
        }
    }

    /// Retention multiplier of the original cells after `months`.
    pub fn decay_factor(&self, months: u32) -> f64 {
        (1.0 - self.retention_decay_per_month).powi(months as i32)
    }

    /// Number of grown cells per bank after `months` (monotone in
    /// `months`, independent of everything else).
    pub fn grown_per_bank(&self, months: u32) -> u64 {
        (self.growth_cells_per_bank_month * f64::from(months)).floor() as u64
    }

    /// Whether grown cell `k` of `bank` flickers (is VRT) at all.
    fn is_vrt(&self, seed: u64, bank: BankId, k: u64) -> bool {
        let h = mix(seed ^ 0x56D7_F11C ^ (bank.index() as u64) << 32 ^ k.wrapping_mul(0x9E3B));
        (h % 1_000_000) as f64 / 1e6 < self.vrt_fraction
    }

    /// Whether a VRT cell is in its leaky state in month `month`.
    fn vrt_leaky(&self, seed: u64, bank: BankId, k: u64, month: u32) -> bool {
        let h = mix(seed
            ^ 0xF11C_C3B5
            ^ ((bank.index() as u64) << 40)
            ^ k.wrapping_mul(0x9E37_79B9)
            ^ (u64::from(month) << 20));
        (h % 1_000_000) as f64 / 1e6 < self.vrt_duty
    }

    /// Retention (ms at 60 °C) and relief factors of grown cell `k` of
    /// `bank` — drawn from a dedicated per-cell stream so they can be
    /// evaluated without placing the cell (the cheap monitoring path).
    fn grown_retention(&self, seed: u64, bank: BankId, k: u64) -> (f64, f64, f64) {
        let mut rng =
            StdRng::seed_from_u64(mix(seed ^ 0xA6ED_0C11 ^ ((bank.index() as u64) << 48) ^ k));
        let cap_s = Milliseconds::DSN18_RELAXED_TREFP.as_secs();
        let r_s = math::sample_lognormal_below(&mut rng, GROWTH_MU_LN_S, GROWTH_SIGMA, cap_s);
        use rand::Rng;
        let relief_alt = rng.gen_range(1.05..1.30);
        let relief_uni = rng.gen_range(1.20..1.70);
        (r_s * 1000.0, relief_alt, relief_uni)
    }

    /// Effective retention in ms of grown cell `(bank, k)` at `temp`
    /// under `context`.
    fn grown_retention_ms(
        &self,
        base: &WeakCellPopulation,
        seed: u64,
        bank: BankId,
        k: u64,
        temp: Celsius,
        context: CouplingContext,
    ) -> f64 {
        let (r60_ms, relief_alt, relief_uni) = self.grown_retention(seed, bank, k);
        let relief = match context {
            CouplingContext::WorstCase => 1.0,
            CouplingContext::Alternating => relief_alt,
            CouplingContext::Uniform => relief_uni,
        };
        r60_ms * base.model().temperature_factor(temp) * relief
    }

    /// The population as it exists after `months` of deployment: the
    /// original cells with decayed retention, plus every grown cell
    /// that is currently leaky (non-VRT, or VRT in its leaky phase).
    ///
    /// Deterministic in `(base, months, seed)` and prefix-stable:
    /// increasing `months` never relocates or re-rolls an existing
    /// grown cell. Dormant VRT cells are omitted from the returned
    /// population but their words stay reserved, so a VRT cell
    /// re-entering its leaky phase later never shares a code word with
    /// another weak cell.
    pub fn aged(&self, base: &WeakCellPopulation, months: u32, seed: u64) -> WeakCellPopulation {
        let decay = self.decay_factor(months);
        let mut cells: Vec<WeakCell> = base
            .cells()
            .iter()
            .map(|c| {
                let mut aged = c.clone();
                aged.retention_at_60c_ms *= decay;
                aged
            })
            .collect();
        let mut occupied: HashSet<u64> =
            base.cells().iter().map(|c| c.addr.word.flatten()).collect();
        for bank in BankId::all() {
            // One address stream per bank: draws for bank b never move
            // when another bank's cell count changes.
            let mut addr_rng =
                StdRng::seed_from_u64(mix(seed ^ 0xD8A7_11FE ^ ((bank.index() as u64) << 56)));
            for k in 0..self.grown_per_bank(months) {
                let (r60_ms, _, _) = self.grown_retention(seed, bank, k);
                let cell = random_cell(&mut addr_rng, bank, r60_ms, &mut occupied);
                let dormant = self.is_vrt(seed, bank, k) && !self.vrt_leaky(seed, bank, k, months);
                if !dormant {
                    cells.push(cell);
                }
            }
        }
        WeakCellPopulation::from_cells(base.model().clone(), cells)
    }

    /// Count of cells per bank failing at `trefp`/`temp`/`context`
    /// after `months` — the monthly drift-monitoring query. Agrees
    /// with [`Self::aged`]`.failing_per_bank(..)` but never touches
    /// cell placement or the row index, so a fleet simulation can
    /// evaluate it every simulated month for every board cheaply.
    pub fn failing_per_bank_at(
        &self,
        base: &WeakCellPopulation,
        months: u32,
        seed: u64,
        temp: Celsius,
        trefp: Milliseconds,
        context: CouplingContext,
    ) -> [u64; BANKS_PER_CHIP] {
        let decay = self.decay_factor(months);
        let mut counts = [0u64; BANKS_PER_CHIP];
        for cell in base.cells() {
            if cell.retention_ms(temp, context, base.model()) * decay < trefp.as_f64() {
                counts[cell.addr.word.bank.index()] += 1;
            }
        }
        for bank in BankId::all() {
            for k in 0..self.grown_per_bank(months) {
                let dormant = self.is_vrt(seed, bank, k) && !self.vrt_leaky(seed, bank, k, months);
                if dormant {
                    continue;
                }
                if self.grown_retention_ms(base, seed, bank, k, temp, context) < trefp.as_f64() {
                    counts[bank.index()] += 1;
                }
            }
        }
        counts
    }

    /// Total failing cells across banks — see
    /// [`Self::failing_per_bank_at`].
    pub fn failing_at(
        &self,
        base: &WeakCellPopulation,
        months: u32,
        seed: u64,
        temp: Celsius,
        trefp: Milliseconds,
        context: CouplingContext,
    ) -> u64 {
        self.failing_per_bank_at(base, months, seed, temp, trefp, context)
            .iter()
            .sum()
    }
}

impl Default for DramAging {
    fn default() -> Self {
        DramAging::dsn18()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::{PopulationSpec, RetentionModel};
    use std::collections::HashMap;

    fn base() -> WeakCellPopulation {
        WeakCellPopulation::generate(&RetentionModel::xgene2_micron(), PopulationSpec::dsn18(), 3)
    }

    #[test]
    fn aging_is_deterministic_and_seed_sensitive() {
        let base = base();
        let aging = DramAging::dsn18();
        assert_eq!(
            aging.aged(&base, 18, 11).cells(),
            aging.aged(&base, 18, 11).cells()
        );
        assert_ne!(
            aging.aged(&base, 18, 11).cells(),
            aging.aged(&base, 18, 12).cells()
        );
    }

    #[test]
    fn grown_cells_are_prefix_stable() {
        // A grown cell, once placed, never moves or re-rolls when the
        // horizon extends — the property that makes any-month,
        // any-worker evaluation byte-stable.
        let base = base();
        let aging = DramAging {
            vrt_fraction: 0.0, // isolate growth from flicker
            ..DramAging::dsn18()
        };
        let early = aging.aged(&base, 6, 5);
        let late = aging.aged(&base, 30, 5);
        let late_by_word: HashMap<u64, &WeakCell> = late
            .cells()
            .iter()
            .map(|c| (c.addr.word.flatten(), c))
            .collect();
        let decay_ratio = aging.decay_factor(30) / aging.decay_factor(6);
        for cell in early.cells() {
            let found = late_by_word
                .get(&cell.addr.word.flatten())
                .expect("every early cell persists");
            assert_eq!(found.addr, cell.addr);
            // Retention may have decayed further, never recovered.
            let ratio = found.retention_at_60c_ms / cell.retention_at_60c_ms;
            assert!((ratio - decay_ratio).abs() < 1e-9 || (ratio - 1.0).abs() < 1e-9);
        }
        assert!(late.len() > early.len());
    }

    #[test]
    fn no_code_word_ever_hosts_two_weak_cells() {
        // The invariant behind "aging produces CEs, never UEs": grown
        // cells respect the sparing map of the original population.
        let base = base();
        let aged = DramAging::dsn18().aged(&base, 48, 9);
        let mut words = HashSet::new();
        for cell in aged.cells() {
            assert!(
                words.insert(cell.addr.word.flatten()),
                "word {:?} hosts two weak cells",
                cell.addr.word
            );
        }
    }

    #[test]
    fn retention_decays_and_population_grows_monotonically() {
        let base = base();
        let aging = DramAging {
            vrt_fraction: 0.0,
            ..DramAging::dsn18()
        };
        let mut prev_len = base.len();
        for months in [6, 12, 24, 48] {
            let aged = aging.aged(&base, months, 1);
            assert!(aged.len() >= prev_len, "month {months}");
            prev_len = aged.len();
        }
        let decayed = aging.aged(&base, 36, 1);
        // Same first cell, lower retention.
        assert!(decayed.cells()[0].retention_at_60c_ms < base.cells()[0].retention_at_60c_ms);
    }

    #[test]
    fn vrt_cells_flicker_in_and_out() {
        let base = base();
        let aging = DramAging {
            growth_cells_per_bank_month: 4.0,
            vrt_fraction: 1.0, // every grown cell flickers
            vrt_duty: 0.5,
            ..DramAging::dsn18()
        };
        let lens: Vec<usize> = (1..=12).map(|m| aging.aged(&base, m, 2).len()).collect();
        // With 100% VRT at 50% duty the visible count must go *down*
        // at least once across months — a monotone count would mean
        // flicker is not being applied.
        assert!(
            lens.windows(2).any(|w| w[1] < w[0]),
            "visible population never shrank: {lens:?}"
        );
    }

    #[test]
    fn monitoring_query_matches_full_population_build() {
        let base = base();
        let aging = DramAging::dsn18();
        let temp = Celsius::new(60.0);
        let trefp = Milliseconds::new(400.0);
        for months in [0, 7, 25] {
            let cheap = aging.failing_per_bank_at(
                &base,
                months,
                6,
                temp,
                trefp,
                CouplingContext::WorstCase,
            );
            let full = aging.aged(&base, months, 6).failing_per_bank(
                temp,
                trefp,
                CouplingContext::WorstCase,
            );
            assert_eq!(cheap, full, "month {months}");
        }
    }

    #[test]
    fn failing_count_at_deployed_trefp_rises_with_age() {
        // The drift signal the maintenance scheduler watches: at a
        // margined deployed refresh period, the failing count starts
        // at zero (that is what the margin buys) and grows as cells
        // enter the tail.
        let base = base();
        let aging = DramAging {
            vrt_fraction: 0.0,
            ..DramAging::dsn18()
        };
        let temp = Celsius::new(60.0);
        let floors = base.min_retention_per_bank(temp, CouplingContext::WorstCase);
        let floor = floors
            .iter()
            .map(|f| f.expect("every bank populated"))
            .fold(f64::INFINITY, f64::min);
        let deployed = Milliseconds::new(floor / 1.25);
        assert_eq!(
            aging.failing_at(&base, 0, 4, temp, deployed, CouplingContext::WorstCase),
            0
        );
        let counts: Vec<u64> = (0..=60)
            .step_by(12)
            .map(|m| aging.failing_at(&base, m, 4, temp, deployed, CouplingContext::WorstCase))
            .collect();
        assert!(
            counts.windows(2).all(|w| w[1] >= w[0]),
            "failing count must be monotone: {counts:?}"
        );
        assert!(
            *counts.last().unwrap() > 0,
            "five deployed years must surface at least one grown failing cell: {counts:?}"
        );
    }
}
