//! Weak-cell retention model.
//!
//! Simulating 2.75 × 10¹¹ individual cells is intractable and unnecessary:
//! at the refresh periods and temperatures the paper explores, only a sparse
//! tail of "weak" cells can ever fail. Following the retention literature
//! (Liu et al., ISCA'13) we model that tail as two populations:
//!
//! * a **defect tail** — cells with manufacturing defects whose retention is
//!   low at any temperature; these dominate the 50 °C counts and carry a
//!   strong bank-to-bank layout signature (the 41 % spread of Table I);
//! * a **main tail** — the extreme lower tail of the bulk lognormal
//!   retention distribution; these dominate at 60 °C, where Table I's
//!   bank-to-bank spread compresses to 16 %.
//!
//! Retention halves every [`RetentionModel::halving_celsius`] kelvin
//! (cell-leakage Arrhenius behaviour linearized over the 45–75 °C window).
//! Data-pattern dependence enters as *stress relief*: the random data
//! pattern is the worst case (it defines the base retention), solid and
//! checkerboard patterns under-stress bitline coupling and therefore see a
//! longer effective retention.

use crate::geometry::{
    BankId, CellAddr, RankId, WordAddr, BANKS_PER_CHIP, CODE_BITS_PER_WORD, COLS_PER_ROW,
    ROWS_PER_BANK,
};
use crate::math;
use power_model::units::{Celsius, Milliseconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which stored value leaks: a *true cell* loses a stored `1`, an
/// *anti cell* loses a stored `0` (charge encodes the opposite level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Charged state encodes logical 1.
    True,
    /// Charged state encodes logical 0.
    Anti,
}

impl Polarity {
    /// The stored bit value that is vulnerable to leakage.
    pub fn charged_value(self) -> bool {
        matches!(self, Polarity::True)
    }
}

/// Data-pattern context seen by a cell, ordered from most to least
/// stressful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CouplingContext {
    /// Random or high-entropy data — the worst case (base retention).
    WorstCase,
    /// Regular alternating data (checkerboard).
    Alternating,
    /// Solid data (all-0s / all-1s) — minimal bitline stress.
    Uniform,
}

/// One weak cell and its retention characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakCell {
    /// Physical location.
    pub addr: CellAddr,
    /// Leakage polarity.
    pub polarity: Polarity,
    /// Retention of the charged state at 60 °C under worst-case data, ms.
    pub retention_at_60c_ms: f64,
    /// Effective-retention multiplier (> 1) under checkerboard data.
    pub relief_alternating: f64,
    /// Effective-retention multiplier (> 1) under solid data.
    pub relief_uniform: f64,
}

impl WeakCell {
    /// Effective retention at `temp` under a data context, in ms.
    pub fn retention_ms(
        &self,
        temp: Celsius,
        context: CouplingContext,
        model: &RetentionModel,
    ) -> f64 {
        let temp_factor = model.temperature_factor(temp);
        let relief = match context {
            CouplingContext::WorstCase => 1.0,
            CouplingContext::Alternating => self.relief_alternating,
            CouplingContext::Uniform => self.relief_uniform,
        };
        self.retention_at_60c_ms * temp_factor * relief
    }

    /// Whether the cell's charge decays within `interval` at `temp` under
    /// `context` (ignores what is stored — see [`Polarity`]).
    pub fn decays_within(
        &self,
        interval: Milliseconds,
        temp: Celsius,
        context: CouplingContext,
        model: &RetentionModel,
    ) -> bool {
        self.retention_ms(temp, context, model) < interval.as_f64()
    }
}

/// Expected Table I counts used to calibrate the per-bank rates: unique
/// error locations per bank under the random data-pattern benchmark at
/// TREFP = 2.283 s.
pub const TABLE1_50C: [f64; 8] = [180.0, 213.0, 228.0, 230.0, 163.0, 198.0, 204.0, 208.0];
/// Expected per-bank counts at 60 °C (see [`TABLE1_50C`]).
pub const TABLE1_60C: [f64; 8] = [
    3358.0, 3610.0, 3641.0, 3842.0, 3293.0, 3448.0, 3601.0, 3540.0,
];

/// The calibrated two-population retention model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Reference temperature of the base retention values.
    ref_temp: Celsius,
    /// Kelvin per halving of retention.
    halving_celsius: f64,
    /// ln(seconds) location of the main-tail lognormal at 60 °C.
    main_mu_ln_s: f64,
    /// Shape of the main-tail lognormal.
    main_sigma: f64,
    /// Expected main-tail cells per bank with retention below the
    /// calibration threshold (2.283 s at 60 °C), across the whole array.
    main_rate_per_bank: [f64; 8],
    /// ln(seconds) location of the defect-tail lognormal at 60 °C.
    defect_mu_ln_s: f64,
    /// Shape of the defect-tail lognormal.
    defect_sigma: f64,
    /// Hard cap on defect retention at 60 °C (they fail even at 50 °C).
    defect_cap_s: f64,
    /// Expected defect cells per bank across the whole array.
    defect_rate_per_bank: [f64; 8],
    /// Calibration refresh period.
    calibration_trefp: Milliseconds,
}

impl RetentionModel {
    /// The model calibrated to the paper's 72 Micron MT41J512M8 chips, so
    /// that the expected per-bank unique-error counts at 2.283 s reproduce
    /// Table I at 50 °C and 60 °C.
    pub fn xgene2_micron() -> Self {
        let halving_celsius = 10.0;
        // Main-tail shape: σ = 0.85 spreads the weak cells' retention over
        // roughly a decade below the 2.283 s calibration threshold (cells
        // between ~0.3 s and 2.283 s), matching the broad retention tails
        // of Liu ISCA'13 — workloads whose access gaps only reach part of
        // a refresh period then catch part of the tail (Fig. 8a). The
        // location anchors the threshold 3.32σ into the tail.
        let main_sigma = 0.85;
        let calibration_s = Milliseconds::DSN18_RELAXED_TREFP.as_secs();
        let main_mu_ln_s = calibration_s.ln() + 3.32 * main_sigma;
        // Fraction of main-tail cells (below the 60 °C calibration
        // threshold) that already fail at 50 °C, where retention doubles.
        let z60 = (calibration_s.ln() - main_mu_ln_s) / main_sigma;
        let z50 = ((calibration_s / 2.0).ln() - main_mu_ln_s) / main_sigma;
        let q = math::normal_cdf(z50) / math::normal_cdf(z60);
        let mut main_rate = [0.0; 8];
        let mut defect_rate = [0.0; 8];
        for b in 0..8 {
            // Solve d + q·m = c50 and d + m = c60.
            let m = (TABLE1_60C[b] - TABLE1_50C[b]) / (1.0 - q);
            let d = (TABLE1_50C[b] - q * m).max(0.0);
            main_rate[b] = m;
            defect_rate[b] = d;
        }
        RetentionModel {
            ref_temp: Celsius::new(60.0),
            halving_celsius,
            main_mu_ln_s,
            main_sigma,
            main_rate_per_bank: main_rate,
            defect_mu_ln_s: 0.5_f64.ln(),
            defect_sigma: 0.4,
            // Defects must fail at 50 °C (retention ×2): cap below
            // calibration/2 = 1.14 s.
            defect_cap_s: calibration_s / 2.0,
            defect_rate_per_bank: defect_rate,
            calibration_trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }

    /// Ablation variant: the same calibration but with the defect tail
    /// removed and the main-tail rates refit to the 60 °C counts alone.
    /// Used to demonstrate that a single lognormal population cannot
    /// reproduce Table I's bank-to-bank spread at 50 °C.
    pub fn xgene2_micron_no_defect_tail() -> Self {
        let mut model = RetentionModel::xgene2_micron();
        for (b, &rate) in TABLE1_60C.iter().enumerate() {
            model.main_rate_per_bank[b] = rate;
            model.defect_rate_per_bank[b] = 0.0;
        }
        model
    }

    /// Retention multiplier at `temp` relative to the 60 °C reference
    /// (`2^((60 − T)/halving)`).
    pub fn temperature_factor(&self, temp: Celsius) -> f64 {
        let dt = self.ref_temp.delta(temp);
        (dt / self.halving_celsius).exp2()
    }

    /// Kelvin per retention halving.
    pub fn halving_celsius(&self) -> f64 {
        self.halving_celsius
    }

    /// Expected number of weak cells in bank `bank` (across the whole
    /// array) whose worst-case retention at `temp` is below `trefp`.
    pub fn expected_failing(&self, bank: BankId, temp: Celsius, trefp: Milliseconds) -> f64 {
        // A cell with base retention r (at 60 °C) fails at temperature T
        // iff r · 2^((60−T)/h) < trefp.
        let threshold_s = trefp.as_secs() / self.temperature_factor(temp);
        let b = bank.index();
        // Main tail: rate is calibrated at the 2.283 s threshold.
        let z = (threshold_s.ln() - self.main_mu_ln_s) / self.main_sigma;
        let z_cal = (self.calibration_trefp.as_secs().ln() - self.main_mu_ln_s) / self.main_sigma;
        let main = self.main_rate_per_bank[b] * math::normal_cdf(z) / math::normal_cdf(z_cal);
        // Defect tail: truncated lognormal below the cap.
        let zc = (self.defect_cap_s.ln() - self.defect_mu_ln_s) / self.defect_sigma;
        let zd =
            (threshold_s.min(self.defect_cap_s).ln() - self.defect_mu_ln_s) / self.defect_sigma;
        let defect = self.defect_rate_per_bank[b] * math::normal_cdf(zd) / math::normal_cdf(zc);
        main + defect
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel::xgene2_micron()
    }
}

/// Bounds on the conditions a generated population must cover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Hottest temperature that will be simulated.
    pub max_temperature: Celsius,
    /// Longest refresh period that will be simulated.
    pub max_trefp: Milliseconds,
}

impl PopulationSpec {
    /// The paper's characterization envelope: 60 °C at 2.283 s.
    pub fn dsn18() -> Self {
        PopulationSpec {
            max_temperature: Celsius::new(60.0),
            max_trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }
}

/// The generated sparse weak-cell population.
///
/// # Examples
///
/// ```
/// use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
///
/// let model = RetentionModel::xgene2_micron();
/// let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 42);
/// assert!(pop.len() > 10_000); // tens of thousands of weak cells
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeakCellPopulation {
    model: RetentionModel,
    cells: Vec<WeakCell>,
    /// Flat row address → indices into `cells`.
    row_index: HashMap<u64, Vec<u32>>,
    /// Dense bitmap over all flat rows: bit set ⇔ the row hosts a weak
    /// cell. One lookup on the access hot path instead of a hash probe.
    row_bitmap: Vec<u64>,
}

impl WeakCellPopulation {
    /// Generates a population covering `spec`, deterministically from
    /// `seed`.
    pub fn generate(model: &RetentionModel, spec: PopulationSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cells = Vec::new();
        // Manufacturers map out words with multiple marginal cells through
        // row/column sparing at production test, so no code word hosts two
        // weak cells — consistent with the paper observing zero
        // uncorrectable errors. Generation resamples colliding locations.
        let mut occupied_words: std::collections::HashSet<u64> = std::collections::HashSet::new();
        // Worst-case base-retention threshold a cell needs to possibly fail
        // within the spec envelope (plus slack for stress-relief factors —
        // relief multipliers only *raise* effective retention, so the
        // envelope threshold itself is sufficient).
        let threshold_s = spec.max_trefp.as_secs() / model.temperature_factor(spec.max_temperature);

        let z_cal =
            (model.calibration_trefp.as_secs().ln() - model.main_mu_ln_s) / model.main_sigma;
        let p_cal = math::normal_cdf(z_cal);

        for bank in BankId::all() {
            let b = bank.index();
            // Main tail.
            let z_thr = (threshold_s.ln() - model.main_mu_ln_s) / model.main_sigma;
            let lambda_main = model.main_rate_per_bank[b] * math::normal_cdf(z_thr) / p_cal;
            let n_main = math::sample_poisson(&mut rng, lambda_main);
            for _ in 0..n_main {
                let r = math::sample_lognormal_below(
                    &mut rng,
                    model.main_mu_ln_s,
                    model.main_sigma,
                    threshold_s,
                );
                cells.push(random_cell(&mut rng, bank, r * 1000.0, &mut occupied_words));
            }
            // Defect tail (cap may exceed the envelope threshold at mild
            // conditions; generate up to the smaller of the two).
            let cap = model.defect_cap_s.min(threshold_s.max(f64::MIN_POSITIVE));
            let zc = (model.defect_cap_s.ln() - model.defect_mu_ln_s) / model.defect_sigma;
            let zd = (cap.ln() - model.defect_mu_ln_s) / model.defect_sigma;
            let lambda_defect =
                model.defect_rate_per_bank[b] * math::normal_cdf(zd) / math::normal_cdf(zc);
            let n_defect = math::sample_poisson(&mut rng, lambda_defect);
            for _ in 0..n_defect {
                let r = math::sample_lognormal_below(
                    &mut rng,
                    model.defect_mu_ln_s,
                    model.defect_sigma,
                    cap,
                );
                cells.push(random_cell(&mut rng, bank, r * 1000.0, &mut occupied_words));
            }
        }

        WeakCellPopulation::from_cells(model.clone(), cells)
    }

    /// Builds a population (row index and bitmap included) around an
    /// explicit cell list — the constructor the aging model uses to
    /// assemble a board's population as it exists after years of
    /// deployment.
    pub fn from_cells(model: RetentionModel, cells: Vec<WeakCell>) -> Self {
        let mut row_index: HashMap<u64, Vec<u32>> = HashMap::new();
        let total_rows = crate::geometry::RANK_COUNT
            * crate::geometry::BANKS_PER_CHIP
            * crate::geometry::ROWS_PER_BANK;
        let mut row_bitmap = vec![0u64; total_rows.div_ceil(64)];
        for (i, cell) in cells.iter().enumerate() {
            let flat = cell.addr.word.row_addr().flatten();
            row_index.entry(flat).or_default().push(i as u32);
            row_bitmap[(flat / 64) as usize] |= 1u64 << (flat % 64);
        }
        WeakCellPopulation {
            model,
            cells,
            row_index,
            row_bitmap,
        }
    }

    /// The model this population was generated from.
    pub fn model(&self) -> &RetentionModel {
        &self.model
    }

    /// Number of weak cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All weak cells.
    pub fn cells(&self) -> &[WeakCell] {
        &self.cells
    }

    /// Weak cells located in the given row, as indices into [`Self::cells`].
    pub fn cells_in_row(&self, flat_row: u64) -> &[u32] {
        if !self.row_has_cells(flat_row) {
            return &[];
        }
        self.row_index
            .get(&flat_row)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the row hosts any weak cell — a single bitmap probe, the
    /// fast path for externally backed kernel accesses.
    #[inline]
    pub fn row_has_cells(&self, flat_row: u64) -> bool {
        self.row_bitmap
            .get((flat_row / 64) as usize)
            .map(|w| (w >> (flat_row % 64)) & 1 == 1)
            .unwrap_or(false)
    }

    /// Iterator over the flat row addresses that contain weak cells.
    pub fn rows_with_cells(&self) -> impl Iterator<Item = u64> + '_ {
        self.row_index.keys().copied()
    }

    /// Cells that would decay within `trefp` at `temp` under `context` —
    /// the set a multi-round DPBench campaign discovers.
    pub fn failing_cells(
        &self,
        temp: Celsius,
        trefp: Milliseconds,
        context: CouplingContext,
    ) -> impl Iterator<Item = &WeakCell> {
        let model = &self.model;
        self.cells
            .iter()
            .filter(move |c| c.decays_within(trefp, temp, context, model))
    }

    /// The most leaky cell's effective retention per bank at `temp` under
    /// `context`, in ms — `None` for banks whose population holds no weak
    /// cell. A bank is error-free at refresh period `trefp` iff its floor
    /// is ≥ `trefp`, so a fleet shard can derive each bank's safe refresh
    /// period from this floor without replaying the multi-round campaign.
    pub fn min_retention_per_bank(
        &self,
        temp: Celsius,
        context: CouplingContext,
    ) -> [Option<f64>; BANKS_PER_CHIP] {
        let mut floors = [None; BANKS_PER_CHIP];
        for cell in &self.cells {
            let retention = cell.retention_ms(temp, context, &self.model);
            let slot = &mut floors[cell.addr.word.bank.index()];
            *slot = Some(slot.map_or(retention, |floor: f64| floor.min(retention)));
        }
        floors
    }

    /// Count of failing cells per bank (the Table I measurement).
    pub fn failing_per_bank(
        &self,
        temp: Celsius,
        trefp: Milliseconds,
        context: CouplingContext,
    ) -> [u64; BANKS_PER_CHIP] {
        let mut counts = [0u64; BANKS_PER_CHIP];
        for cell in self.failing_cells(temp, trefp, context) {
            counts[cell.addr.word.bank.index()] += 1;
        }
        counts
    }
}

/// Places a weak cell at a uniformly random location within `bank`,
/// resampling any word that already hosts a weak cell (redundancy repair).
pub(crate) fn random_cell(
    rng: &mut StdRng,
    bank: BankId,
    retention_ms: f64,
    occupied_words: &mut std::collections::HashSet<u64>,
) -> WeakCell {
    let (rank, row, col) = loop {
        let rank = RankId::new(rng.gen_range(0..8));
        let row = rng.gen_range(0..ROWS_PER_BANK as u32);
        let col = rng.gen_range(0..COLS_PER_ROW as u16);
        let flat = WordAddr::new(rank, bank, row, col).flatten();
        if occupied_words.insert(flat) {
            break (rank, row, col);
        }
    };
    let bit = rng.gen_range(0..CODE_BITS_PER_WORD as u8);
    let polarity = if rng.gen::<bool>() {
        Polarity::True
    } else {
        Polarity::Anti
    };
    WeakCell {
        addr: CellAddr::new(WordAddr::new(rank, bank, row, col), bit),
        polarity,
        retention_at_60c_ms: retention_ms,
        relief_alternating: rng.gen_range(1.05..1.30),
        relief_uniform: rng.gen_range(1.20..1.70),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(counts: &[u64; 8]) -> f64 {
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        (max - min) / min
    }

    #[test]
    fn expected_counts_match_table1() {
        let model = RetentionModel::xgene2_micron();
        for b in 0..8 {
            let e50 = model.expected_failing(
                BankId::new(b),
                Celsius::new(50.0),
                Milliseconds::DSN18_RELAXED_TREFP,
            );
            let e60 = model.expected_failing(
                BankId::new(b),
                Celsius::new(60.0),
                Milliseconds::DSN18_RELAXED_TREFP,
            );
            assert!(
                (e50 - TABLE1_50C[b as usize]).abs() / TABLE1_50C[b as usize] < 0.02,
                "bank {b} @50°C: {e50} vs {}",
                TABLE1_50C[b as usize]
            );
            assert!(
                (e60 - TABLE1_60C[b as usize]).abs() / TABLE1_60C[b as usize] < 0.02,
                "bank {b} @60°C: {e60} vs {}",
                TABLE1_60C[b as usize]
            );
        }
    }

    #[test]
    fn generated_counts_track_table1() {
        let model = RetentionModel::xgene2_micron();
        let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 7);
        let c50 = pop.failing_per_bank(
            Celsius::new(50.0),
            Milliseconds::DSN18_RELAXED_TREFP,
            CouplingContext::WorstCase,
        );
        let c60 = pop.failing_per_bank(
            Celsius::new(60.0),
            Milliseconds::DSN18_RELAXED_TREFP,
            CouplingContext::WorstCase,
        );
        for b in 0..8 {
            let rel50 = (c50[b] as f64 - TABLE1_50C[b]).abs() / TABLE1_50C[b];
            let rel60 = (c60[b] as f64 - TABLE1_60C[b]).abs() / TABLE1_60C[b];
            assert!(
                rel50 < 0.30,
                "bank {b} @50: {} vs {}",
                c50[b],
                TABLE1_50C[b]
            );
            assert!(
                rel60 < 0.10,
                "bank {b} @60: {} vs {}",
                c60[b],
                TABLE1_60C[b]
            );
        }
        // Bank-to-bank spread compresses from ~41% to ~16% as temperature
        // rises — the paper's headline Table I observation. The sampled
        // spread varies with the generator stream; the floor only has to
        // separate it from the compressed 60 °C spread below.
        assert!(spread(&c50) > 0.15, "50°C spread {}", spread(&c50));
        assert!(spread(&c60) < 0.25, "60°C spread {}", spread(&c60));
        assert!(spread(&c60) < spread(&c50));
    }

    #[test]
    fn counts_increase_with_temperature_and_trefp() {
        let model = RetentionModel::xgene2_micron();
        let b = BankId::new(0);
        let t = Milliseconds::DSN18_RELAXED_TREFP;
        assert!(
            model.expected_failing(b, Celsius::new(60.0), t)
                > model.expected_failing(b, Celsius::new(50.0), t)
        );
        assert!(
            model.expected_failing(b, Celsius::new(50.0), Milliseconds::new(4000.0))
                > model.expected_failing(b, Celsius::new(50.0), t)
        );
    }

    #[test]
    fn nominal_refresh_is_error_free() {
        // At the nominal 64 ms refresh the guardband holds: essentially no
        // weak cell fails even at 60 °C.
        let model = RetentionModel::xgene2_micron();
        let total: f64 = (0..8)
            .map(|b| {
                model.expected_failing(
                    BankId::new(b),
                    Celsius::new(60.0),
                    Milliseconds::DDR3_NOMINAL_TREFP,
                )
            })
            .sum();
        assert!(total < 0.5, "expected failures at nominal refresh: {total}");
    }

    #[test]
    fn stress_relief_reduces_failures() {
        let model = RetentionModel::xgene2_micron();
        let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 9);
        let t = Milliseconds::DSN18_RELAXED_TREFP;
        let worst = pop
            .failing_cells(Celsius::new(60.0), t, CouplingContext::WorstCase)
            .count();
        let alt = pop
            .failing_cells(Celsius::new(60.0), t, CouplingContext::Alternating)
            .count();
        let uni = pop
            .failing_cells(Celsius::new(60.0), t, CouplingContext::Uniform)
            .count();
        assert!(worst > alt, "worst {worst} vs alternating {alt}");
        assert!(alt > uni, "alternating {alt} vs uniform {uni}");
    }

    #[test]
    fn bank_retention_floor_separates_failing_from_safe_periods() {
        let model = RetentionModel::xgene2_micron();
        let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 21);
        let temp = Celsius::new(60.0);
        let floors = pop.min_retention_per_bank(temp, CouplingContext::WorstCase);
        let counts = pop.failing_per_bank(
            temp,
            Milliseconds::DSN18_RELAXED_TREFP,
            CouplingContext::WorstCase,
        );
        for (b, floor) in floors.iter().enumerate() {
            let floor = floor.expect("every bank has weak cells at the envelope");
            // The floor really is a lower bound on every cell's retention…
            for cell in pop.cells().iter().filter(|c| c.addr.word.bank.index() == b) {
                assert!(cell.retention_ms(temp, CouplingContext::WorstCase, &model) >= floor);
            }
            // …and is consistent with the failing-count view: errors at
            // the paper's relaxed period, none just below the floor.
            assert!(floor < Milliseconds::DSN18_RELAXED_TREFP.as_f64());
            assert!(counts[b] > 0);
            let safe = Milliseconds::new(floor * 0.999);
            assert_eq!(
                pop.failing_per_bank(temp, safe, CouplingContext::WorstCase)[b],
                0,
                "bank {b} must be clean below its retention floor"
            );
        }
    }

    #[test]
    fn row_index_is_consistent() {
        let model = RetentionModel::xgene2_micron();
        let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 11);
        let indexed: usize = pop
            .rows_with_cells()
            .map(|r| pop.cells_in_row(r).len())
            .sum();
        assert_eq!(indexed, pop.len());
        for row in pop.rows_with_cells().take(50) {
            for &i in pop.cells_in_row(row) {
                assert_eq!(pop.cells()[i as usize].addr.word.row_addr().flatten(), row);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let model = RetentionModel::xgene2_micron();
        let a = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 5);
        let b = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 5);
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn polarity_split_is_balanced() {
        let model = RetentionModel::xgene2_micron();
        let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 13);
        let true_cells = pop
            .cells()
            .iter()
            .filter(|c| c.polarity == Polarity::True)
            .count() as f64;
        let frac = true_cells / pop.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "true-cell fraction {frac}");
    }
}
