//! Data-pattern benchmarks (DPBenches).
//!
//! The paper stresses DRAM with all-0s, all-1s, checkerboard and random
//! patterns "which stress the whole DRAM memory by writing the specific
//! patterns and accessing them" — the methodology of Liu et al. (ISCA'13).
//! A pattern defines the payload of every word as a pure function of its
//! address, so whole-array fills need no storage.

use crate::geometry::WordAddr;
use crate::retention::CouplingContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A whole-array data pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// Every bit zero.
    AllZeros,
    /// Every bit one.
    AllOnes,
    /// Alternating bits, with word-level phase alternating by row+column
    /// parity. `inverted` selects the complementary phase.
    Checkerboard {
        /// Complemented phase.
        inverted: bool,
    },
    /// Pseudo-random data, deterministic in the seed and the address.
    Random {
        /// Seed for the per-round pseudo-random data.
        seed: u64,
    },
}

impl DataPattern {
    /// The four patterns of a standard DPBench campaign (one random round).
    pub fn dpbench_suite(seed: u64) -> [DataPattern; 4] {
        [
            DataPattern::AllZeros,
            DataPattern::AllOnes,
            DataPattern::Checkerboard { inverted: false },
            DataPattern::Random { seed },
        ]
    }

    /// The 64-bit payload this pattern stores at `addr`.
    pub fn word(&self, addr: WordAddr) -> u64 {
        match self {
            DataPattern::AllZeros => 0,
            DataPattern::AllOnes => u64::MAX,
            DataPattern::Checkerboard { inverted } => {
                let base = if (addr.row as u64 + u64::from(addr.col)).is_multiple_of(2) {
                    0xAAAA_AAAA_AAAA_AAAA
                } else {
                    0x5555_5555_5555_5555
                };
                if *inverted {
                    !base
                } else {
                    base
                }
            }
            DataPattern::Random { seed } => splitmix64(addr.flatten() ^ seed.rotate_left(17)),
        }
    }

    /// The coupling stress context this pattern creates.
    pub fn coupling_context(&self) -> CouplingContext {
        match self {
            DataPattern::AllZeros | DataPattern::AllOnes => CouplingContext::Uniform,
            DataPattern::Checkerboard { .. } => CouplingContext::Alternating,
            DataPattern::Random { .. } => CouplingContext::WorstCase,
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPattern::AllZeros => f.write_str("all-0s"),
            DataPattern::AllOnes => f.write_str("all-1s"),
            DataPattern::Checkerboard { inverted: false } => f.write_str("checkerboard"),
            DataPattern::Checkerboard { inverted: true } => f.write_str("checkerboard-inv"),
            DataPattern::Random { seed } => write!(f, "random(seed={seed})"),
        }
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer for address-keyed data.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, RankId};

    fn addr(row: u32, col: u16) -> WordAddr {
        WordAddr::new(RankId::new(0), BankId::new(0), row, col)
    }

    #[test]
    fn solids_are_solid() {
        assert_eq!(DataPattern::AllZeros.word(addr(5, 5)), 0);
        assert_eq!(DataPattern::AllOnes.word(addr(5, 5)), u64::MAX);
    }

    #[test]
    fn checkerboard_alternates_by_parity() {
        let p = DataPattern::Checkerboard { inverted: false };
        assert_ne!(p.word(addr(0, 0)), p.word(addr(0, 1)));
        assert_eq!(p.word(addr(0, 0)), p.word(addr(1, 1)));
        let inv = DataPattern::Checkerboard { inverted: true };
        assert_eq!(inv.word(addr(0, 0)), !p.word(addr(0, 0)));
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let a = DataPattern::Random { seed: 1 };
        let b = DataPattern::Random { seed: 2 };
        assert_eq!(a.word(addr(3, 3)), a.word(addr(3, 3)));
        assert_ne!(a.word(addr(3, 3)), b.word(addr(3, 3)));
        assert_ne!(a.word(addr(3, 3)), a.word(addr(3, 4)));
    }

    #[test]
    fn random_bits_are_balanced() {
        let p = DataPattern::Random { seed: 99 };
        let ones: u32 = (0..1000).map(|i| p.word(addr(i, 0)).count_ones()).sum();
        let frac = f64::from(ones) / 64_000.0;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    #[test]
    fn contexts_match_patterns() {
        assert_eq!(
            DataPattern::AllZeros.coupling_context(),
            CouplingContext::Uniform
        );
        assert_eq!(
            DataPattern::Checkerboard { inverted: false }.coupling_context(),
            CouplingContext::Alternating
        );
        assert_eq!(
            DataPattern::Random { seed: 0 }.coupling_context(),
            CouplingContext::WorstCase
        );
    }

    #[test]
    fn suite_has_four_distinct_patterns() {
        let suite = DataPattern::dpbench_suite(1);
        assert_eq!(suite.len(), 4);
        assert_eq!(
            suite.iter().collect::<std::collections::HashSet<_>>().len(),
            4
        );
    }
}
