//! Statistical primitives implemented from `rand` alone.
//!
//! The retention model needs the standard normal CDF and quantile plus
//! Poisson sampling. Implementing them here keeps the workspace within the
//! allowed dependency set (no `rand_distr` / `statrs`).

use rand::Rng;

/// Standard normal CDF Φ(z), via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|ε| < 1.5 × 10⁻⁷).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal quantile Φ⁻¹(p) via Acklam's rational approximation
/// (relative error < 1.15 × 10⁻⁹ over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile argument must be in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Samples `Poisson(lambda)` — Knuth's method for small λ, normal
/// approximation (rounded, clamped at 0) for large λ.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let g = sample_standard_normal(rng);
        let v = lambda + lambda.sqrt() * g;
        v.round().max(0.0) as u64
    }
}

/// Samples a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a truncated lognormal `exp(N(mu, sigma))` conditioned on the
/// value being below `cap`, by inverse-CDF sampling.
///
/// # Panics
///
/// Panics if `cap` is not positive or `sigma` is not positive.
pub fn sample_lognormal_below<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, cap: f64) -> f64 {
    assert!(cap > 0.0, "cap must be positive");
    assert!(sigma > 0.0, "sigma must be positive");
    let z_cap = (cap.ln() - mu) / sigma;
    let p_cap = normal_cdf(z_cap).max(f64::MIN_POSITIVE);
    let u = rng.gen_range(f64::MIN_POSITIVE..1.0) * p_cap;
    let z = normal_quantile(u.min(1.0 - 1e-16));
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-3.0) - 0.00135).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile argument")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 30.0, 200.0] {
            let n = 20_000;
            let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, lambda)).collect();
            let mean = samples.iter().sum::<u64>() as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 4.0 * (lambda / n as f64).sqrt() + 0.5,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn truncated_lognormal_respects_cap() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let v = sample_lognormal_below(&mut rng, 2.5, 0.5, 3.0);
            assert!(v > 0.0 && v < 3.0, "sample {v}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
