//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.8 API it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], uniform
//! `gen_range` over integer and float ranges, and `gen::<T>()` for the
//! primitive types. The generator behind [`rngs::StdRng`] is
//! xoshiro256++, seeded through SplitMix64 — deterministic, fast and
//! statistically sound for the simulations in this repository (it is not
//! cryptographically secure, and its streams differ from upstream
//! `StdRng`).
//!
//! Unlike upstream, [`rngs::StdRng`] implements `serde::Serialize` and
//! `serde::Deserialize`: the characterization framework snapshots whole
//! servers (RNG state included) for checkpoint/resume.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the full-range/unit distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is below 2⁻⁶⁴·span, irrelevant
/// for simulation workloads).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl serde::Serialize for StdRng {
        fn to_value(&self) -> serde::Value {
            serde::Value::Seq(self.s.iter().map(|w| serde::Value::U64(*w)).collect())
        }
    }

    impl serde::Deserialize for StdRng {
        fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
            let seq = v.as_seq()?;
            if seq.len() != 4 {
                return Err(serde::Error::custom("StdRng state must have 4 words"));
            }
            let mut s = [0u64; 4];
            for (slot, w) in s.iter_mut().zip(seq) {
                *slot = <u64 as serde::Deserialize>::from_value(w)?;
            }
            Ok(StdRng { s })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_honors_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn serde_roundtrip_preserves_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = serde::json::to_string(&rng);
        let mut restored: StdRng = serde::json::from_str(&snapshot).unwrap();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
