//! Workload activity profiles — the interface between workload models and
//! the electrical fault/PDN models.
//!
//! A profile captures the properties of a running program that matter for
//! voltage noise and Vmin: mean switching activity, the *swing* between its
//! high- and low-power phases, how well that swing aligns with the PDN's
//! resonant frequency, and which microarchitectural components it stresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which chip component a (targeted) workload primarily stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StressTarget {
    /// Whole-core mixed execution (ordinary programs).
    Mixed,
    /// The integer ALUs.
    IntAlu,
    /// The floating-point/SIMD units.
    FpAlu,
    /// A specific cache level's SRAM arrays.
    Cache(crate::topology::CacheLevel),
}

impl fmt::Display for StressTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StressTarget::Mixed => f.write_str("mixed"),
            StressTarget::IntAlu => f.write_str("int-alu"),
            StressTarget::FpAlu => f.write_str("fp-alu"),
            StressTarget::Cache(level) => write!(f, "{level}-sram"),
        }
    }
}

/// Electrical activity profile of a workload on one core.
///
/// # Examples
///
/// ```
/// use xgene_sim::workload::WorkloadProfile;
///
/// let virus = WorkloadProfile::builder("didt-virus")
///     .activity(0.9)
///     .swing(0.95)
///     .resonance_alignment(1.0)
///     .build();
/// assert!(virus.droop_score() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    /// Mean switching activity in `[0, 1]` (relative to the worst case).
    activity: f64,
    /// Peak-to-trough current swing in `[0, 1]`.
    swing: f64,
    /// How much of the swing's spectral energy lands on the PDN resonance,
    /// in `[0, 1]`. Ordinary programs are near 0; dI/dt viruses near 1.
    resonance_alignment: f64,
    /// DRAM bandwidth utilization in `[0, 1]`.
    memory_intensity: f64,
    /// Instructions per cycle at nominal conditions.
    ipc: f64,
    /// Primary stress target.
    target: StressTarget,
}

impl WorkloadProfile {
    /// Starts building a profile with neutral defaults.
    pub fn builder(name: impl Into<String>) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                activity: 0.5,
                swing: 0.3,
                resonance_alignment: 0.1,
                memory_intensity: 0.1,
                ipc: 1.0,
                target: StressTarget::Mixed,
            },
        }
    }

    /// An idle core (the paper's "idle Vmin test" baseline).
    pub fn idle() -> Self {
        WorkloadProfile::builder("idle")
            .activity(0.02)
            .swing(0.01)
            .ipc(0.0)
            .build()
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean switching activity.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Peak-to-trough current swing.
    pub fn swing(&self) -> f64 {
        self.swing
    }

    /// Spectral alignment with the PDN resonance.
    pub fn resonance_alignment(&self) -> f64 {
        self.resonance_alignment
    }

    /// DRAM bandwidth utilization.
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.ipc
    }

    /// Primary stress target.
    pub fn target(&self) -> StressTarget {
        self.target
    }

    /// Workload-dependent droop severity in `[0, 1]`: the activity level a
    /// steady load imposes, in `[0, 1]` of the worst case the platform can
    /// exhibit. This is the score the Vmin fault model consumes.
    pub fn droop_score(&self) -> f64 {
        // A large swing only produces a large droop when it recurs near the
        // resonant frequency; off-resonance swings are damped.
        (self.activity * 0.75 + self.swing * (0.08 + 0.17 * self.resonance_alignment))
            .clamp(0.0, 1.0)
    }

    /// Resonant component of the droop (what the EM probe senses).
    pub fn resonant_energy(&self) -> f64 {
        self.swing * self.resonance_alignment
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (act {:.2}, swing {:.2})",
            self.name, self.activity, self.swing
        )
    }
}

/// Builder for [`WorkloadProfile`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Sets mean switching activity.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn activity(mut self, activity: f64) -> Self {
        assert!((0.0..=1.0).contains(&activity), "activity in [0,1]");
        self.profile.activity = activity;
        self
    }

    /// Sets the current swing.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn swing(mut self, swing: f64) -> Self {
        assert!((0.0..=1.0).contains(&swing), "swing in [0,1]");
        self.profile.swing = swing;
        self
    }

    /// Sets resonance alignment.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn resonance_alignment(mut self, alignment: f64) -> Self {
        assert!((0.0..=1.0).contains(&alignment), "alignment in [0,1]");
        self.profile.resonance_alignment = alignment;
        self
    }

    /// Sets DRAM bandwidth utilization.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn memory_intensity(mut self, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "memory intensity in [0,1]"
        );
        self.profile.memory_intensity = intensity;
        self
    }

    /// Sets the IPC.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn ipc(mut self, ipc: f64) -> Self {
        assert!(ipc >= 0.0, "ipc must be non-negative");
        self.profile.ipc = ipc;
        self
    }

    /// Sets the stress target.
    pub fn target(mut self, target: StressTarget) -> Self {
        self.profile.target = target;
        self
    }

    /// Finalizes the profile.
    pub fn build(self) -> WorkloadProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn droop_score_orders_virus_above_ordinary_code() {
        let virus = WorkloadProfile::builder("virus")
            .activity(0.9)
            .swing(0.95)
            .resonance_alignment(1.0)
            .build();
        let spec = WorkloadProfile::builder("spec")
            .activity(0.7)
            .swing(0.4)
            .resonance_alignment(0.1)
            .build();
        let idle = WorkloadProfile::idle();
        assert!(virus.droop_score() > spec.droop_score());
        assert!(spec.droop_score() > idle.droop_score());
    }

    #[test]
    fn droop_score_is_bounded() {
        let max = WorkloadProfile::builder("max")
            .activity(1.0)
            .swing(1.0)
            .resonance_alignment(1.0)
            .build();
        assert!(max.droop_score() <= 1.0);
        assert!(WorkloadProfile::idle().droop_score() >= 0.0);
    }

    #[test]
    fn resonant_energy_requires_alignment() {
        let off = WorkloadProfile::builder("off")
            .swing(1.0)
            .resonance_alignment(0.0)
            .build();
        assert_eq!(off.resonant_energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "activity in [0,1]")]
    fn builder_validates_activity() {
        let _ = WorkloadProfile::builder("bad").activity(1.5);
    }

    #[test]
    fn display_contains_name() {
        let p = WorkloadProfile::builder("mcf").build();
        assert!(p.to_string().contains("mcf"));
    }
}
