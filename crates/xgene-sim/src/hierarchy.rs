//! The X-Gene2 cache hierarchy assembled from [`crate::cache::Cache`]:
//! per-core L1I/L1D, a per-PMD shared L2, and the chip-wide L3 behind the
//! cache-coherent Central Switch (CSW).
//!
//! The hierarchy serves two purposes in the study: cache-targeted viruses
//! need real containment behaviour (their working sets must hit in exactly
//! one level), and the Vmin predictor consumes the miss-rate performance
//! counters the hierarchy produces.

use crate::cache::{Cache, CacheStats};
use crate::topology::{CacheLevel, CoreId, CORE_COUNT, PMD_COUNT};
use serde::{Deserialize, Serialize};

/// DRAM access latency seen by the cores, in core cycles at nominal clock.
pub const DRAM_LATENCY_CYCLES: u32 = 220;

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedBy {
    /// Hit in a cache level.
    Cache(CacheLevel),
    /// Missed everywhere — served by DRAM.
    Dram,
}

/// Per-core performance counters, as the PMU exposes them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Demand accesses issued by the core.
    pub accesses: u64,
    /// L1 misses (instruction + data).
    pub l1_misses: u64,
    /// L2 misses attributed to this core.
    pub l2_misses: u64,
    /// L3 misses attributed to this core (DRAM accesses).
    pub l3_misses: u64,
    /// Total memory-access latency in cycles.
    pub latency_cycles: u64,
}

impl CoreCounters {
    /// DRAM accesses per memory access — the memory-intensity counter the
    /// Vmin predictor uses.
    pub fn dram_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l3_misses as f64 / self.accesses as f64
        }
    }

    /// Average memory-access latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.latency_cycles as f64 / self.accesses as f64
        }
    }
}

/// The assembled hierarchy.
///
/// # Examples
///
/// ```
/// use xgene_sim::hierarchy::{CacheHierarchy, ServedBy};
/// use xgene_sim::topology::{CacheLevel, CoreId};
///
/// let mut h = CacheHierarchy::xgene2();
/// let core = CoreId::new(0);
/// assert_eq!(h.access_data(core, 0x4000).0, ServedBy::Dram); // cold
/// assert_eq!(h.access_data(core, 0x4000).0, ServedBy::Cache(CacheLevel::L1D));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    counters: Vec<CoreCounters>,
}

impl CacheHierarchy {
    /// Builds the X-Gene2 hierarchy (8× L1I + 8× L1D, 4× L2, 1× L3).
    pub fn xgene2() -> Self {
        CacheHierarchy {
            l1i: (0..CORE_COUNT)
                .map(|_| Cache::for_level(CacheLevel::L1I))
                .collect(),
            l1d: (0..CORE_COUNT)
                .map(|_| Cache::for_level(CacheLevel::L1D))
                .collect(),
            l2: (0..PMD_COUNT)
                .map(|_| Cache::for_level(CacheLevel::L2))
                .collect(),
            l3: Cache::for_level(CacheLevel::L3),
            counters: vec![CoreCounters::default(); CORE_COUNT],
        }
    }

    /// A data access from `core`; returns where it was served and the
    /// latency in core cycles.
    pub fn access_data(&mut self, core: CoreId, addr: u64) -> (ServedBy, u32) {
        self.access(core, addr, false)
    }

    /// An instruction fetch from `core`.
    pub fn access_instr(&mut self, core: CoreId, addr: u64) -> (ServedBy, u32) {
        self.access(core, addr, true)
    }

    fn access(&mut self, core: CoreId, addr: u64, is_instr: bool) -> (ServedBy, u32) {
        let idx = core.index();
        let pmd = core.pmd().index();
        let c = &mut self.counters[idx];
        c.accesses += 1;

        let l1 = if is_instr {
            &mut self.l1i[idx]
        } else {
            &mut self.l1d[idx]
        };
        let l1_level = if is_instr {
            CacheLevel::L1I
        } else {
            CacheLevel::L1D
        };
        if l1.access(addr) {
            let lat = l1_level.latency_cycles();
            c.latency_cycles += u64::from(lat);
            return (ServedBy::Cache(l1_level), lat);
        }
        c.l1_misses += 1;
        if self.l2[pmd].access(addr) {
            let lat = CacheLevel::L2.latency_cycles();
            c.latency_cycles += u64::from(lat);
            return (ServedBy::Cache(CacheLevel::L2), lat);
        }
        c.l2_misses += 1;
        if self.l3.access(addr) {
            let lat = CacheLevel::L3.latency_cycles();
            c.latency_cycles += u64::from(lat);
            return (ServedBy::Cache(CacheLevel::L3), lat);
        }
        c.l3_misses += 1;
        c.latency_cycles += u64::from(DRAM_LATENCY_CYCLES);
        (ServedBy::Dram, DRAM_LATENCY_CYCLES)
    }

    /// Per-core counters.
    pub fn counters(&self, core: CoreId) -> CoreCounters {
        self.counters[core.index()]
    }

    /// Statistics of one physical cache (`l2`/`l3` indexed per PMD/chip).
    pub fn level_stats(&self, level: CacheLevel, core: CoreId) -> CacheStats {
        match level {
            CacheLevel::L1I => self.l1i[core.index()].stats(),
            CacheLevel::L1D => self.l1d[core.index()].stats(),
            CacheLevel::L2 => self.l2[core.pmd().index()].stats(),
            CacheLevel::L3 => self.l3.stats(),
        }
    }

    /// Flushes every cache and clears counters.
    pub fn reset(&mut self) {
        for c in self.l1i.iter_mut().chain(&mut self.l1d).chain(&mut self.l2) {
            c.flush();
            c.reset_stats();
        }
        self.l3.flush();
        self.l3.reset_stats();
        self.counters = vec![CoreCounters::default(); CORE_COUNT];
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_path_fills_all_levels() {
        let mut h = CacheHierarchy::xgene2();
        let core = CoreId::new(2);
        let (served, lat) = h.access_data(core, 0x1_0000);
        assert_eq!(served, ServedBy::Dram);
        assert_eq!(lat, DRAM_LATENCY_CYCLES);
        // Now resident everywhere down the path.
        assert_eq!(
            h.access_data(core, 0x1_0000).0,
            ServedBy::Cache(CacheLevel::L1D)
        );
    }

    #[test]
    fn l2_is_shared_within_a_pmd_only() {
        let mut h = CacheHierarchy::xgene2();
        let (a, b) = (CoreId::new(0), CoreId::new(1)); // same PMD0
        let other = CoreId::new(2); // PMD1
        h.access_data(a, 0x8000);
        // Sibling core misses L1 but hits the shared L2.
        assert_eq!(h.access_data(b, 0x8000).0, ServedBy::Cache(CacheLevel::L2));
        // A core in another PMD misses L2 but hits the chip-wide L3.
        assert_eq!(
            h.access_data(other, 0x8000).0,
            ServedBy::Cache(CacheLevel::L3)
        );
    }

    #[test]
    fn instruction_and_data_l1_are_split() {
        let mut h = CacheHierarchy::xgene2();
        let core = CoreId::new(0);
        h.access_instr(core, 0x2000);
        // Same address as data: misses L1D (split caches) but hits L2.
        assert_eq!(
            h.access_data(core, 0x2000).0,
            ServedBy::Cache(CacheLevel::L2)
        );
    }

    #[test]
    fn counters_track_miss_chain() {
        let mut h = CacheHierarchy::xgene2();
        let core = CoreId::new(5);
        h.access_data(core, 0xAA000);
        h.access_data(core, 0xAA000);
        let c = h.counters(core);
        assert_eq!(c.accesses, 2);
        assert_eq!(c.l1_misses, 1);
        assert_eq!(c.l3_misses, 1);
        assert!((c.dram_ratio() - 0.5).abs() < 1e-12);
        assert!(c.avg_latency() > 1.0);
    }

    #[test]
    fn streaming_beyond_l3_goes_to_dram() {
        let mut h = CacheHierarchy::xgene2();
        let core = CoreId::new(0);
        // Stream 16 MiB twice: exceeds the 8 MiB L3, so the second pass
        // still misses (LRU thrash on a streaming pattern).
        let lines = 16 * 1024 * 1024 / 64;
        for _ in 0..2 {
            for i in 0..lines {
                h.access_data(core, i as u64 * 64);
            }
        }
        let c = h.counters(core);
        assert!(
            c.l3_misses as f64 > 0.9 * c.accesses as f64,
            "l3 misses {} of {}",
            c.l3_misses,
            c.accesses
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut h = CacheHierarchy::xgene2();
        let core = CoreId::new(0);
        h.access_data(core, 0x40);
        h.reset();
        assert_eq!(h.counters(core).accesses, 0);
        assert_eq!(h.access_data(core, 0x40).0, ServedBy::Dram);
    }
}
