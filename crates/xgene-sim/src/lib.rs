//! Behavioral model of the AppliedMicro X-Gene2 Server-on-Chip.
//!
//! The DSN'18 guardband study runs on a real X-Gene2 micro-server; since
//! the study is hardware-gated, this crate rebuilds the parts of the
//! platform its methodology touches:
//!
//! * [`topology`] — 4 PMDs × 2 ARMv8 cores, the L1/L2/L3 hierarchy sizes;
//! * [`cache`] — a set-associative LRU cache simulator;
//! * [`hierarchy`] — the assembled L1I/L1D/L2/L3 hierarchy with per-core
//!   performance counters;
//! * [`pipeline`] — a single-issue in-order core executing micro-op
//!   streams against the hierarchy (measured IPC / current waveforms);
//! * [`pdn`] — the second-order power-delivery network with its ~50 MHz
//!   first-order resonance;
//! * [`em`] — the electromagnetic-emanation probe used as the dI/dt-virus
//!   fitness signal;
//! * [`sigma`] — the TTT/TFF/TSS chip corners with their calibrated Vmin
//!   decompositions;
//! * [`workload`] — activity profiles linking workloads to the electrical
//!   models;
//! * [`fault`] — run-outcome classification around Vmin (CE/UE/SDC/crash);
//! * [`server`] — the assembled server behind the SLIMpro management
//!   interface.
//!
//! # Examples
//!
//! ```
//! use xgene_sim::server::XGene2Server;
//! use xgene_sim::sigma::SigmaBin;
//! use xgene_sim::workload::WorkloadProfile;
//! use power_model::units::Millivolts;
//!
//! let mut server = XGene2Server::new(SigmaBin::Ttt, 7);
//! server.set_pmd_voltage(Millivolts::new(930))?;
//! let bench = WorkloadProfile::builder("quick").activity(0.4).build();
//! let run = server.run_on_core(server.chip().most_robust_core(), &bench);
//! assert!(run.outcome.is_usable());
//! # Ok::<(), xgene_sim::server::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aging;
pub mod cache;
pub mod em;
pub mod fault;
pub mod hierarchy;
pub mod pdn;
pub mod pipeline;
pub mod server;
pub mod sigma;
pub mod topology;
pub mod watchdog;
pub mod workload;

pub use cache::{Cache, CacheStats};
pub use em::EmProbe;
pub use fault::{FaultModel, RunOutcome};
pub use hierarchy::{CacheHierarchy, CoreCounters, ServedBy};
pub use pdn::PdnModel;
pub use pipeline::{ExecUnit, ExecutionReport, InOrderCore, MicroOp};
pub use server::{ConfigError, CoreRunResult, XGene2Server};
pub use sigma::{ChipProfile, SigmaBin};
pub use topology::{CacheLevel, CoreId, PmdId, CORE_COUNT, PMD_COUNT};
pub use watchdog::{DeadlineWatchdog, WatchdogConfig, WatchdogStats, WatchdogVerdict};
pub use workload::{StressTarget, WorkloadProfile, WorkloadProfileBuilder};
