//! Run-outcome fault model: what happens when a program executes below,
//! at, or above its Vmin.
//!
//! The characterization framework classifies every run as one of: correct
//! completion, correctable/uncorrectable error reports (from cache ECC and
//! parity), silent data corruption (caught only by comparing against a
//! golden output), or a crash/hang needing the watchdog. The margin between
//! the operating voltage and the workload's Vmin determines the outcome
//! distribution: a few millivolts above Vmin runs are clean; inside a
//! narrow band the first symptoms are CEs and SDCs; below it the machine
//! locks up.

use crate::sigma::ChipProfile;
use crate::topology::CoreId;
use crate::workload::WorkloadProfile;
use power_model::units::{Megahertz, Millivolts};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of one characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Completed with output matching the golden reference.
    Correct,
    /// Completed; hardware reported corrected errors (CE).
    CorrectableError,
    /// Completed; hardware reported uncorrectable errors (UE).
    UncorrectableError,
    /// Completed with wrong output and no hardware error report.
    SilentDataCorruption,
    /// Kernel panic, lockup or reset — watchdog intervention required.
    Crash,
}

impl RunOutcome {
    /// Whether the run finished with usable output.
    pub fn is_usable(self) -> bool {
        matches!(self, RunOutcome::Correct | RunOutcome::CorrectableError)
    }

    /// Whether the system needs a reset after this outcome.
    pub fn needs_reset(self) -> bool {
        matches!(self, RunOutcome::Crash)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::Correct => "correct",
            RunOutcome::CorrectableError => "CE",
            RunOutcome::UncorrectableError => "UE",
            RunOutcome::SilentDataCorruption => "SDC",
            RunOutcome::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// The outcome model: margin bands around Vmin.
///
/// * margin ≥ `safe_band_mv` — always correct;
/// * `0 ≤ margin < safe_band_mv` — mostly correct, occasional CEs (cache
///   ECC catching marginal bitcells);
/// * `-failure_band_mv < margin < 0` — mixed CEs, SDCs and UEs;
/// * margin ≤ `-failure_band_mv` — crash.
///
/// # Examples
///
/// ```
/// use xgene_sim::fault::{FaultModel, RunOutcome};
/// use xgene_sim::sigma::{ChipProfile, SigmaBin};
/// use xgene_sim::workload::WorkloadProfile;
/// use power_model::units::{Megahertz, Millivolts};
/// use rand::SeedableRng;
///
/// let model = FaultModel::default();
/// let chip = ChipProfile::corner(SigmaBin::Ttt);
/// let w = WorkloadProfile::builder("w").activity(0.5).build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = model.classify(
///     &chip, chip.most_robust_core(), &w, Megahertz::XGENE2_NOMINAL,
///     Millivolts::XGENE2_NOMINAL, &mut rng);
/// assert_eq!(outcome, RunOutcome::Correct);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Width of the marginal band above Vmin where sporadic CEs appear.
    safe_band_mv: f64,
    /// Width of the band below Vmin where errors appear before lockup.
    failure_band_mv: f64,
    /// CE probability at margin 0 (decays linearly through the safe band).
    ce_probability_at_vmin: f64,
}

impl FaultModel {
    /// Creates a fault model with explicit band widths.
    ///
    /// # Panics
    ///
    /// Panics if any band width is negative or the CE probability is
    /// outside `[0, 1]`.
    pub fn new(safe_band_mv: f64, failure_band_mv: f64, ce_probability_at_vmin: f64) -> Self {
        assert!(safe_band_mv >= 0.0, "safe band must be non-negative");
        assert!(failure_band_mv > 0.0, "failure band must be positive");
        assert!((0.0..=1.0).contains(&ce_probability_at_vmin), "probability in [0,1]");
        FaultModel { safe_band_mv, failure_band_mv, ce_probability_at_vmin }
    }

    /// Classifies one run at `voltage` for `(chip, core, workload,
    /// frequency)` with `active_cores` busy cores in total.
    pub fn classify_with_active_cores<R: Rng + ?Sized>(
        &self,
        chip: &ChipProfile,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        voltage: Millivolts,
        active_cores: usize,
        rng: &mut R,
    ) -> RunOutcome {
        let vmin = chip.vmin_with_active_cores(core, workload, frequency, active_cores);
        let margin = f64::from(voltage.as_u32()) - f64::from(vmin.as_u32());
        if margin >= self.safe_band_mv {
            return RunOutcome::Correct;
        }
        if margin >= 0.0 {
            // Marginal band: sporadic correctable errors, linearly more
            // likely as the margin shrinks.
            let p_ce = self.ce_probability_at_vmin * (1.0 - margin / self.safe_band_mv);
            return if rng.gen::<f64>() < p_ce {
                RunOutcome::CorrectableError
            } else {
                RunOutcome::Correct
            };
        }
        if margin <= -self.failure_band_mv {
            return RunOutcome::Crash;
        }
        // Inside the failure band: severity grows as voltage drops.
        let depth = -margin / self.failure_band_mv; // 0 at Vmin, 1 at crash
        let roll: f64 = rng.gen();
        // Observed mix near Vmin: CEs first, then SDC/UE, then crashes.
        let p_crash = depth * depth * 0.8;
        let p_ue = 0.15 + 0.2 * depth;
        let p_sdc = 0.25;
        if roll < p_crash {
            RunOutcome::Crash
        } else if roll < p_crash + p_ue {
            RunOutcome::UncorrectableError
        } else if roll < p_crash + p_ue + p_sdc {
            RunOutcome::SilentDataCorruption
        } else {
            RunOutcome::CorrectableError
        }
    }

    /// Classifies a single-program run (one active core).
    pub fn classify<R: Rng + ?Sized>(
        &self,
        chip: &ChipProfile,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        voltage: Millivolts,
        rng: &mut R,
    ) -> RunOutcome {
        self.classify_with_active_cores(chip, core, workload, frequency, voltage, 1, rng)
    }
}

impl Default for FaultModel {
    /// The calibrated bands: 5 mV marginal band with 30 % CE incidence at
    /// Vmin, 12 mV failure band before guaranteed lockup.
    fn default() -> Self {
        FaultModel::new(5.0, 12.0, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::SigmaBin;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FaultModel, ChipProfile, WorkloadProfile, StdRng) {
        (
            FaultModel::default(),
            ChipProfile::corner(SigmaBin::Ttt),
            WorkloadProfile::builder("w").activity(0.6).swing(0.4).build(),
            StdRng::seed_from_u64(99),
        )
    }

    #[test]
    fn far_above_vmin_is_always_correct() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        for _ in 0..200 {
            let o = model.classify(
                &chip, core, &w, Megahertz::XGENE2_NOMINAL,
                Millivolts::XGENE2_NOMINAL, &mut rng,
            );
            assert_eq!(o, RunOutcome::Correct);
        }
    }

    #[test]
    fn far_below_vmin_always_crashes() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let deep = Millivolts::new(vmin.as_u32() - 30);
        for _ in 0..200 {
            let o = model.classify(&chip, core, &w, Megahertz::XGENE2_NOMINAL, deep, &mut rng);
            assert_eq!(o, RunOutcome::Crash);
        }
    }

    #[test]
    fn failure_band_mixes_error_classes() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let just_below = Millivolts::new(vmin.as_u32() - 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(model.classify(
                &chip, core, &w, Megahertz::XGENE2_NOMINAL, just_below, &mut rng,
            ));
        }
        assert!(seen.contains(&RunOutcome::SilentDataCorruption), "{seen:?}");
        assert!(seen.contains(&RunOutcome::CorrectableError), "{seen:?}");
        assert!(!seen.contains(&RunOutcome::Correct), "below Vmin is never correct");
    }

    #[test]
    fn marginal_band_shows_sporadic_ce() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let at_vmin = vmin;
        let mut ces = 0;
        for _ in 0..1000 {
            match model.classify(&chip, core, &w, Megahertz::XGENE2_NOMINAL, at_vmin, &mut rng) {
                RunOutcome::CorrectableError => ces += 1,
                RunOutcome::Correct => {}
                other => panic!("unexpected {other} at Vmin"),
            }
        }
        assert!((200..400).contains(&ces), "CE count at Vmin: {ces}");
    }

    #[test]
    fn outcome_flags() {
        assert!(RunOutcome::Correct.is_usable());
        assert!(RunOutcome::CorrectableError.is_usable());
        assert!(!RunOutcome::SilentDataCorruption.is_usable());
        assert!(RunOutcome::Crash.needs_reset());
        assert!(!RunOutcome::UncorrectableError.needs_reset());
    }

    #[test]
    fn more_active_cores_fail_earlier() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.weakest_core();
        let vmin1 = chip.vmin_with_active_cores(core, &w, Megahertz::XGENE2_NOMINAL, 1);
        // At a voltage safe for 1 core but inside the 8-core failure zone:
        let v = Millivolts::new(vmin1.as_u32() + 8);
        let mut eight_core_failures = 0;
        for _ in 0..200 {
            let o = model.classify_with_active_cores(
                &chip, core, &w, Megahertz::XGENE2_NOMINAL, v, 8, &mut rng,
            );
            if !o.is_usable() {
                eight_core_failures += 1;
            }
            let solo = model.classify(&chip, core, &w, Megahertz::XGENE2_NOMINAL, v, &mut rng);
            assert!(solo.is_usable() || solo == RunOutcome::CorrectableError);
        }
        assert!(eight_core_failures > 0, "8-core runs should fail at {v}");
    }
}
