//! Run-outcome fault model: what happens when a program executes below,
//! at, or above its Vmin.
//!
//! The characterization framework classifies every run as one of: correct
//! completion, correctable/uncorrectable error reports (from cache ECC and
//! parity), silent data corruption (caught only by comparing against a
//! golden output), or a crash/hang needing the watchdog. The margin between
//! the operating voltage and the workload's Vmin determines the outcome
//! distribution: a few millivolts above Vmin runs are clean; inside a
//! narrow band the first symptoms are CEs and SDCs; below it the machine
//! locks up.

use crate::sigma::ChipProfile;
use crate::topology::CoreId;
use crate::workload::WorkloadProfile;
use power_model::units::{Megahertz, Millivolts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of one characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Completed with output matching the golden reference.
    Correct,
    /// Completed; hardware reported corrected errors (CE).
    CorrectableError,
    /// Completed; hardware reported uncorrectable errors (UE).
    UncorrectableError,
    /// Completed with wrong output and no hardware error report.
    SilentDataCorruption,
    /// Kernel panic, lockup or reset — watchdog intervention required.
    Crash,
}

impl RunOutcome {
    /// Whether the run finished with usable output.
    pub fn is_usable(self) -> bool {
        matches!(self, RunOutcome::Correct | RunOutcome::CorrectableError)
    }

    /// Whether the system needs a reset after this outcome.
    pub fn needs_reset(self) -> bool {
        matches!(self, RunOutcome::Crash)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::Correct => "correct",
            RunOutcome::CorrectableError => "CE",
            RunOutcome::UncorrectableError => "UE",
            RunOutcome::SilentDataCorruption => "SDC",
            RunOutcome::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// The outcome model: margin bands around Vmin.
///
/// * margin ≥ `safe_band_mv` — always correct;
/// * `0 ≤ margin < safe_band_mv` — mostly correct, occasional CEs (cache
///   ECC catching marginal bitcells);
/// * `-failure_band_mv < margin < 0` — mixed CEs, SDCs and UEs;
/// * margin ≤ `-failure_band_mv` — crash.
///
/// # Examples
///
/// ```
/// use xgene_sim::fault::{FaultModel, RunOutcome};
/// use xgene_sim::sigma::{ChipProfile, SigmaBin};
/// use xgene_sim::workload::WorkloadProfile;
/// use power_model::units::{Megahertz, Millivolts};
/// use rand::SeedableRng;
///
/// let model = FaultModel::default();
/// let chip = ChipProfile::corner(SigmaBin::Ttt);
/// let w = WorkloadProfile::builder("w").activity(0.5).build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = model.classify(
///     &chip, chip.most_robust_core(), &w, Megahertz::XGENE2_NOMINAL,
///     Millivolts::XGENE2_NOMINAL, &mut rng);
/// assert_eq!(outcome, RunOutcome::Correct);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Width of the marginal band above Vmin where sporadic CEs appear.
    safe_band_mv: f64,
    /// Width of the band below Vmin where errors appear before lockup.
    failure_band_mv: f64,
    /// CE probability at margin 0 (decays linearly through the safe band).
    ce_probability_at_vmin: f64,
}

impl FaultModel {
    /// Creates a fault model with explicit band widths.
    ///
    /// # Panics
    ///
    /// Panics if any band width is negative or the CE probability is
    /// outside `[0, 1]`.
    pub fn new(safe_band_mv: f64, failure_band_mv: f64, ce_probability_at_vmin: f64) -> Self {
        assert!(safe_band_mv >= 0.0, "safe band must be non-negative");
        assert!(failure_band_mv > 0.0, "failure band must be positive");
        assert!(
            (0.0..=1.0).contains(&ce_probability_at_vmin),
            "probability in [0,1]"
        );
        FaultModel {
            safe_band_mv,
            failure_band_mv,
            ce_probability_at_vmin,
        }
    }

    /// Classifies one run at `voltage` for `(chip, core, workload,
    /// frequency)` with `active_cores` busy cores in total.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_with_active_cores<R: Rng + ?Sized>(
        &self,
        chip: &ChipProfile,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        voltage: Millivolts,
        active_cores: usize,
        rng: &mut R,
    ) -> RunOutcome {
        let vmin = chip.vmin_with_active_cores(core, workload, frequency, active_cores);
        let margin = f64::from(voltage.as_u32()) - f64::from(vmin.as_u32());
        if margin >= self.safe_band_mv {
            return RunOutcome::Correct;
        }
        if margin >= 0.0 {
            // Marginal band: sporadic correctable errors, linearly more
            // likely as the margin shrinks.
            let p_ce = self.ce_probability_at_vmin * (1.0 - margin / self.safe_band_mv);
            return if rng.gen::<f64>() < p_ce {
                RunOutcome::CorrectableError
            } else {
                RunOutcome::Correct
            };
        }
        if margin <= -self.failure_band_mv {
            return RunOutcome::Crash;
        }
        // Inside the failure band: severity grows as voltage drops.
        let depth = -margin / self.failure_band_mv; // 0 at Vmin, 1 at crash
        let roll: f64 = rng.gen();
        // Observed mix near Vmin: CEs first, then SDC/UE, then crashes.
        let p_crash = depth * depth * 0.8;
        let p_ue = 0.15 + 0.2 * depth;
        let p_sdc = 0.25;
        if roll < p_crash {
            RunOutcome::Crash
        } else if roll < p_crash + p_ue {
            RunOutcome::UncorrectableError
        } else if roll < p_crash + p_ue + p_sdc {
            RunOutcome::SilentDataCorruption
        } else {
            RunOutcome::CorrectableError
        }
    }

    /// Classifies a single-program run (one active core).
    pub fn classify<R: Rng + ?Sized>(
        &self,
        chip: &ChipProfile,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        voltage: Millivolts,
        rng: &mut R,
    ) -> RunOutcome {
        self.classify_with_active_cores(chip, core, workload, frequency, voltage, 1, rng)
    }
}

impl Default for FaultModel {
    /// The calibrated bands: 5 mV marginal band with 30 % CE incidence at
    /// Vmin, 12 mV failure band before guaranteed lockup.
    fn default() -> Self {
        FaultModel::new(5.0, 12.0, 0.3)
    }
}

/// What one reset request actually did to the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResetBehavior {
    /// The power cycle completed and the firmware booted at nominal.
    Booted,
    /// The board entered a boot-loop and needed this many extra power
    /// cycles before coming up.
    BootLoop {
        /// Extra power cycles consumed by the loop.
        extra_cycles: u32,
    },
    /// The IPMI power cycle was acknowledged but the board stayed hung;
    /// the requester must retry.
    StayedHung,
}

/// Board- and framework-level fault injection: the failure modes of the
/// *harness* rather than the silicon.
///
/// The DSN'18 framework babysits real boards for weeks, and the things
/// that actually go wrong are mundane: an IPMI power cycle that does not
/// bring the board back, a reboot that loops in firmware, a V/F restore
/// that the freshly booted firmware silently drops, and thermal sensors
/// that stick or drop out. A `FaultPlan` injects those events into the
/// simulated server deterministically: all draws come from an embedded
/// seeded generator, and individual events can additionally be *forced*
/// at specific draw indices so a test can guarantee "at least one of
/// each" without cranking the rates.
///
/// The plan serializes with the server (generator state included), so a
/// checkpointed campaign resumes into the identical fault sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    rng: StdRng,
    power_cycle_failure_rate: f64,
    boot_loop_rate: f64,
    boot_loop_max_extra: u32,
    setup_loss_rate: f64,
    sensor_stuck_rate: f64,
    sensor_dropout_rate: f64,
    /// Reset-draw indices (0-based) forced to [`ResetBehavior::StayedHung`].
    forced_hangs: Vec<u64>,
    /// Setup-write draw indices (0-based) forced to be lost.
    forced_setup_losses: Vec<u64>,
    reset_draws: u64,
    setup_draws: u64,
    /// Run-draw indices (0-based) whose completed outcome is forced to
    /// [`RunOutcome::SilentDataCorruption`]. Pure bookkeeping — no RNG
    /// draws — so legacy fault sequences are unaffected.
    #[serde(default)]
    forced_sdc_runs: Vec<u64>,
    /// When set, every run that completes below its Vmin is reclassified
    /// as a silent corruption: the deterministic worst case for detection
    /// studies (hangs stay hangs — a run that never finishes cannot be
    /// silently wrong).
    #[serde(default)]
    sdc_below_vmin: bool,
    #[serde(default)]
    run_draws: u64,
}

impl FaultPlan {
    /// A plan with every rate zero: faults occur only where forced.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed ^ 0xFA17_FA17),
            power_cycle_failure_rate: 0.0,
            boot_loop_rate: 0.0,
            boot_loop_max_extra: 3,
            setup_loss_rate: 0.0,
            sensor_stuck_rate: 0.0,
            sensor_dropout_rate: 0.0,
            forced_hangs: Vec::new(),
            forced_setup_losses: Vec::new(),
            reset_draws: 0,
            setup_draws: 0,
            forced_sdc_runs: Vec::new(),
            sdc_below_vmin: false,
            run_draws: 0,
        }
    }

    /// A hostile plan for resilience testing: frequent hung power cycles,
    /// boot loops, lost restores and flaky sensors.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            power_cycle_failure_rate: 0.3,
            boot_loop_rate: 0.2,
            setup_loss_rate: 0.05,
            sensor_stuck_rate: 0.02,
            sensor_dropout_rate: 0.02,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Sets the probability that a requested power cycle leaves the board
    /// hung.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` (also for the other setters).
    #[must_use]
    pub fn with_power_cycle_failure_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.power_cycle_failure_rate = rate;
        self
    }

    /// Sets the probability that a reset enters a boot-loop.
    #[must_use]
    pub fn with_boot_loop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.boot_loop_rate = rate;
        self
    }

    /// Sets the probability that a post-boot V/F restore write is lost.
    #[must_use]
    pub fn with_setup_loss_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.setup_loss_rate = rate;
        self
    }

    /// Sets the thermal-sensor stuck/dropout probabilities per reading.
    #[must_use]
    pub fn with_sensor_fault_rates(mut self, stuck: f64, dropout: f64) -> Self {
        assert!((0.0..=1.0).contains(&stuck), "rate must be in [0,1]");
        assert!((0.0..=1.0).contains(&dropout), "rate must be in [0,1]");
        self.sensor_stuck_rate = stuck;
        self.sensor_dropout_rate = dropout;
        self
    }

    /// Forces the `index`-th reset draw (0-based) to leave the board hung.
    #[must_use]
    pub fn force_hang_at(mut self, index: u64) -> Self {
        self.forced_hangs.push(index);
        self
    }

    /// Forces the `index`-th setup-write draw (0-based) to be lost.
    #[must_use]
    pub fn force_setup_loss_at(mut self, index: u64) -> Self {
        self.forced_setup_losses.push(index);
        self
    }

    /// Forces the `index`-th run draw (0-based) that completes to be a
    /// silent corruption (a crash at that index stays a crash).
    #[must_use]
    pub fn force_sdc_at_run(mut self, index: u64) -> Self {
        self.forced_sdc_runs.push(index);
        self
    }

    /// Reclassifies every completed sub-Vmin run as a silent corruption.
    #[must_use]
    pub fn with_sub_vmin_sdc(mut self) -> Self {
        self.sdc_below_vmin = true;
        self
    }

    /// The `(stuck, dropout)` per-reading sensor fault rates, for wiring
    /// into thermal-testbed sensors.
    pub fn sensor_fault_rates(&self) -> (f64, f64) {
        (self.sensor_stuck_rate, self.sensor_dropout_rate)
    }

    /// Draws the behavior of one power-cycle request.
    pub fn next_reset_behavior(&mut self) -> ResetBehavior {
        let index = self.reset_draws;
        self.reset_draws += 1;
        // Consume the stochastic draws unconditionally so forcing an event
        // does not shift the rest of the sequence.
        let hang_roll: f64 = self.rng.gen();
        let loop_roll: f64 = self.rng.gen();
        let extra = self.rng.gen_range(1..=self.boot_loop_max_extra.max(1));
        if self.forced_hangs.contains(&index) || hang_roll < self.power_cycle_failure_rate {
            return ResetBehavior::StayedHung;
        }
        if loop_roll < self.boot_loop_rate {
            return ResetBehavior::BootLoop {
                extra_cycles: extra,
            };
        }
        ResetBehavior::Booted
    }

    /// Draws whether one V/F setup write is silently lost.
    pub fn next_setup_write_lost(&mut self) -> bool {
        let index = self.setup_draws;
        self.setup_draws += 1;
        let roll: f64 = self.rng.gen();
        self.forced_setup_losses.contains(&index) || roll < self.setup_loss_rate
    }

    /// Draws the silicon-level override for one run: whether a run that
    /// classified as `outcome` (`below_vmin` says where the operating
    /// point sat relative to the run's Vmin) must be reclassified as a
    /// silent corruption. Consumes no RNG — forcing never shifts the
    /// fault sequence.
    pub fn next_run_sdc_override(&mut self, below_vmin: bool, outcome: RunOutcome) -> bool {
        let index = self.run_draws;
        self.run_draws += 1;
        if outcome.needs_reset() {
            return false;
        }
        self.forced_sdc_runs.contains(&index) || (self.sdc_below_vmin && below_vmin)
    }

    /// Total run draws taken so far.
    pub fn run_draws(&self) -> u64 {
        self.run_draws
    }

    /// Total reset draws taken so far.
    pub fn reset_draws(&self) -> u64 {
        self.reset_draws
    }

    /// Total setup-write draws taken so far.
    pub fn setup_draws(&self) -> u64 {
        self.setup_draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::SigmaBin;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FaultModel, ChipProfile, WorkloadProfile, StdRng) {
        (
            FaultModel::default(),
            ChipProfile::corner(SigmaBin::Ttt),
            WorkloadProfile::builder("w")
                .activity(0.6)
                .swing(0.4)
                .build(),
            StdRng::seed_from_u64(99),
        )
    }

    #[test]
    fn far_above_vmin_is_always_correct() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        for _ in 0..200 {
            let o = model.classify(
                &chip,
                core,
                &w,
                Megahertz::XGENE2_NOMINAL,
                Millivolts::XGENE2_NOMINAL,
                &mut rng,
            );
            assert_eq!(o, RunOutcome::Correct);
        }
    }

    #[test]
    fn far_below_vmin_always_crashes() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let deep = Millivolts::new(vmin.as_u32() - 30);
        for _ in 0..200 {
            let o = model.classify(&chip, core, &w, Megahertz::XGENE2_NOMINAL, deep, &mut rng);
            assert_eq!(o, RunOutcome::Crash);
        }
    }

    #[test]
    fn failure_band_mixes_error_classes() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let just_below = Millivolts::new(vmin.as_u32() - 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(model.classify(
                &chip,
                core,
                &w,
                Megahertz::XGENE2_NOMINAL,
                just_below,
                &mut rng,
            ));
        }
        assert!(seen.contains(&RunOutcome::SilentDataCorruption), "{seen:?}");
        assert!(seen.contains(&RunOutcome::CorrectableError), "{seen:?}");
        assert!(
            !seen.contains(&RunOutcome::Correct),
            "below Vmin is never correct"
        );
    }

    #[test]
    fn marginal_band_shows_sporadic_ce() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.most_robust_core();
        let vmin = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let at_vmin = vmin;
        let mut ces = 0;
        for _ in 0..1000 {
            match model.classify(
                &chip,
                core,
                &w,
                Megahertz::XGENE2_NOMINAL,
                at_vmin,
                &mut rng,
            ) {
                RunOutcome::CorrectableError => ces += 1,
                RunOutcome::Correct => {}
                other => panic!("unexpected {other} at Vmin"),
            }
        }
        assert!((200..400).contains(&ces), "CE count at Vmin: {ces}");
    }

    #[test]
    fn outcome_flags() {
        assert!(RunOutcome::Correct.is_usable());
        assert!(RunOutcome::CorrectableError.is_usable());
        assert!(!RunOutcome::SilentDataCorruption.is_usable());
        assert!(RunOutcome::Crash.needs_reset());
        assert!(!RunOutcome::UncorrectableError.needs_reset());
    }

    #[test]
    fn fault_plan_forces_events_without_shifting_the_stream() {
        // Two identical plans, one with a forced hang: every draw after
        // the forced index must still agree.
        let mut plain = FaultPlan::quiet(5).with_boot_loop_rate(0.5);
        let mut forced = FaultPlan::quiet(5)
            .with_boot_loop_rate(0.5)
            .force_hang_at(2);
        for i in 0..20u64 {
            let a = plain.next_reset_behavior();
            let b = forced.next_reset_behavior();
            if i == 2 {
                assert_eq!(b, ResetBehavior::StayedHung);
            } else {
                assert_eq!(a, b, "draw {i} diverged");
            }
        }
    }

    #[test]
    fn quiet_plan_never_faults() {
        let mut plan = FaultPlan::quiet(9);
        for _ in 0..100 {
            assert_eq!(plan.next_reset_behavior(), ResetBehavior::Booted);
            assert!(!plan.next_setup_write_lost());
        }
    }

    #[test]
    fn hostile_plan_shows_every_fault_class() {
        let mut plan = FaultPlan::hostile(11);
        let mut hangs = 0;
        let mut loops = 0;
        let mut losses = 0;
        for _ in 0..400 {
            match plan.next_reset_behavior() {
                ResetBehavior::StayedHung => hangs += 1,
                ResetBehavior::BootLoop { extra_cycles } => {
                    assert!(extra_cycles >= 1);
                    loops += 1;
                }
                ResetBehavior::Booted => {}
            }
            if plan.next_setup_write_lost() {
                losses += 1;
            }
        }
        assert!(
            hangs > 0 && loops > 0 && losses > 0,
            "{hangs}/{loops}/{losses}"
        );
    }

    #[test]
    fn sdc_override_never_resurrects_a_crash_and_consumes_no_rng() {
        let mut plan = FaultPlan::quiet(3)
            .with_boot_loop_rate(0.5)
            .force_sdc_at_run(0)
            .with_sub_vmin_sdc();
        // A crash at the forced index stays a crash.
        assert!(!plan.next_run_sdc_override(true, RunOutcome::Crash));
        // Forced index already consumed; sub-Vmin mode still applies.
        assert!(plan.next_run_sdc_override(true, RunOutcome::CorrectableError));
        assert!(!plan.next_run_sdc_override(false, RunOutcome::Correct));
        assert_eq!(plan.run_draws(), 3);
        // Run draws never touch the RNG: the reset stream is unshifted.
        let mut twin = FaultPlan::quiet(3).with_boot_loop_rate(0.5);
        for _ in 0..20 {
            assert_eq!(plan.next_reset_behavior(), twin.next_reset_behavior());
        }
    }

    #[test]
    fn fault_plan_serde_roundtrip_preserves_sequence() {
        let mut plan = FaultPlan::hostile(13);
        for _ in 0..7 {
            plan.next_reset_behavior();
        }
        let snapshot = serde::json::to_string(&plan);
        let mut restored: FaultPlan = serde::json::from_str(&snapshot).unwrap();
        for _ in 0..50 {
            assert_eq!(plan.next_reset_behavior(), restored.next_reset_behavior());
            assert_eq!(
                plan.next_setup_write_lost(),
                restored.next_setup_write_lost()
            );
        }
    }

    #[test]
    fn more_active_cores_fail_earlier() {
        let (model, chip, w, mut rng) = setup();
        let core = chip.weakest_core();
        let vmin1 = chip.vmin_with_active_cores(core, &w, Megahertz::XGENE2_NOMINAL, 1);
        // At a voltage safe for 1 core but inside the 8-core failure zone:
        let v = Millivolts::new(vmin1.as_u32() + 8);
        let mut eight_core_failures = 0;
        for _ in 0..200 {
            let o = model.classify_with_active_cores(
                &chip,
                core,
                &w,
                Megahertz::XGENE2_NOMINAL,
                v,
                8,
                &mut rng,
            );
            if !o.is_usable() {
                eight_core_failures += 1;
            }
            let solo = model.classify(&chip, core, &w, Megahertz::XGENE2_NOMINAL, v, &mut rng);
            assert!(solo.is_usable() || solo == RunOutcome::CorrectableError);
        }
        assert!(eight_core_failures > 0, "8-core runs should fail at {v}");
    }
}
