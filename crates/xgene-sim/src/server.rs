//! The assembled X-Gene2 server: chip + DRAM + sensors + SLIMpro.
//!
//! SLIMpro (Scalable Lightweight Intelligent Management Processor) is the
//! management core that boots the system, exposes temperature and power
//! sensors, reports ECC/parity errors to the kernel, and configures MCU
//! parameters such as the refresh period. The characterization framework
//! talks exclusively to this interface — exactly as the real framework
//! does — so swapping the simulated server for real hardware would only
//! replace this module.

use crate::fault::{FaultModel, RunOutcome};
use crate::sigma::{ChipProfile, SigmaBin};
use crate::topology::{CoreId, PmdId, PMD_COUNT};
use crate::workload::WorkloadProfile;
use dram_sim::array::DramArray;
use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use power_model::server::{OperatingPoint, PowerBreakdown, ServerLoad, ServerPowerModel};
use power_model::tradeoff::FrequencyPlan;
use power_model::units::{Celsius, Megahertz, Millivolts, Milliseconds, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Voltage programmable range of the PMD/SoC regulators.
pub const VOLTAGE_RANGE_MV: std::ops::RangeInclusive<u32> = 700..=1050;

/// Error raised by invalid management-interface requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// Requested voltage is outside the regulator's range.
    VoltageOutOfRange {
        /// The rejected request in millivolts.
        requested_mv: u32,
    },
    /// Requested frequency is not one of the supported DVFS steps.
    UnsupportedFrequency {
        /// The rejected request in MHz.
        requested_mhz: u32,
    },
    /// Requested refresh period is non-positive.
    InvalidRefreshPeriod,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::VoltageOutOfRange { requested_mv } => {
                write!(f, "voltage {requested_mv} mV outside regulator range")
            }
            ConfigError::UnsupportedFrequency { requested_mhz } => {
                write!(f, "frequency {requested_mhz} MHz is not a DVFS step")
            }
            ConfigError::InvalidRefreshPeriod => f.write_str("refresh period must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Supported per-PMD DVFS frequency steps.
pub const DVFS_STEPS_MHZ: [u32; 5] = [2400, 2000, 1600, 1200, 800];

/// One program run's result as the framework observes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRunResult {
    /// Core the program ran on.
    pub core: CoreId,
    /// Workload name.
    pub workload: String,
    /// Classified outcome.
    pub outcome: RunOutcome,
}

/// The simulated server.
///
/// # Examples
///
/// ```
/// use xgene_sim::server::XGene2Server;
/// use xgene_sim::sigma::SigmaBin;
/// use xgene_sim::workload::WorkloadProfile;
/// use power_model::units::Millivolts;
///
/// let mut server = XGene2Server::new(SigmaBin::Ttt, 42);
/// server.set_pmd_voltage(Millivolts::new(930))?;
/// let w = WorkloadProfile::builder("bench").activity(0.5).build();
/// let result = server.run_on_core(server.chip().most_robust_core(), &w);
/// assert!(result.outcome.is_usable());
/// # Ok::<(), xgene_sim::server::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct XGene2Server {
    chip: ChipProfile,
    fault_model: FaultModel,
    power_model: ServerPowerModel,
    dram: DramArray,
    pmd_voltage: Millivolts,
    soc_voltage: Millivolts,
    pmd_frequencies: [Megahertz; PMD_COUNT],
    dram_temperature: Celsius,
    reset_count: u64,
    rng: StdRng,
}

impl XGene2Server {
    /// Boots a server with the given chip corner, deterministic in `seed`.
    pub fn new(bin: SigmaBin, seed: u64) -> Self {
        XGene2Server::with_population_spec(bin, seed, PopulationSpec::dsn18())
    }

    /// Boots a server whose DRAM population covers a custom envelope
    /// (needed for sweeps beyond 60 °C / 2.283 s).
    pub fn with_population_spec(bin: SigmaBin, seed: u64, spec: PopulationSpec) -> Self {
        let population =
            WeakCellPopulation::generate(&RetentionModel::xgene2_micron(), spec, seed);
        let dram = DramArray::new(
            population,
            Milliseconds::DDR3_NOMINAL_TREFP,
            Celsius::new(45.0),
        );
        XGene2Server {
            chip: ChipProfile::corner(bin),
            fault_model: FaultModel::default(),
            power_model: ServerPowerModel::xgene2(),
            dram,
            pmd_voltage: Millivolts::XGENE2_NOMINAL,
            soc_voltage: Millivolts::XGENE2_NOMINAL,
            pmd_frequencies: [Megahertz::XGENE2_NOMINAL; PMD_COUNT],
            dram_temperature: Celsius::new(45.0),
            reset_count: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xD5A5_5A5D),
        }
    }

    /// The chip installed in the socket.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// The DRAM subsystem (mutable: workloads read and write it).
    pub fn dram_mut(&mut self) -> &mut DramArray {
        &mut self.dram
    }

    /// The DRAM subsystem.
    pub fn dram(&self) -> &DramArray {
        &self.dram
    }

    /// Current PMD-rail voltage.
    pub fn pmd_voltage(&self) -> Millivolts {
        self.pmd_voltage
    }

    /// Current SoC-rail voltage.
    pub fn soc_voltage(&self) -> Millivolts {
        self.soc_voltage
    }

    /// Current frequency of a PMD.
    pub fn pmd_frequency(&self, pmd: PmdId) -> Megahertz {
        self.pmd_frequencies[pmd.index()]
    }

    /// Number of watchdog resets since boot.
    pub fn reset_count(&self) -> u64 {
        self.reset_count
    }

    /// Sets the PMD-domain voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::VoltageOutOfRange`] outside 700–1050 mV.
    pub fn set_pmd_voltage(&mut self, voltage: Millivolts) -> Result<(), ConfigError> {
        validate_voltage(voltage)?;
        self.pmd_voltage = voltage;
        Ok(())
    }

    /// Sets the SoC-domain voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::VoltageOutOfRange`] outside 700–1050 mV.
    pub fn set_soc_voltage(&mut self, voltage: Millivolts) -> Result<(), ConfigError> {
        validate_voltage(voltage)?;
        self.soc_voltage = voltage;
        Ok(())
    }

    /// Sets one PMD's frequency to a supported DVFS step.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedFrequency`] for other values.
    pub fn set_pmd_frequency(&mut self, pmd: PmdId, freq: Megahertz) -> Result<(), ConfigError> {
        if !DVFS_STEPS_MHZ.contains(&freq.as_u32()) {
            return Err(ConfigError::UnsupportedFrequency { requested_mhz: freq.as_u32() });
        }
        self.pmd_frequencies[pmd.index()] = freq;
        Ok(())
    }

    /// Sets one PMD's frequency to an arbitrary PLL value — the socketed
    /// validation boards allow overriding the DVFS table for frequency
    /// characterization (Fmax search).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedFrequency`] outside 200–3200 MHz.
    pub fn set_pmd_frequency_unlocked(
        &mut self,
        pmd: PmdId,
        freq: Megahertz,
    ) -> Result<(), ConfigError> {
        if !(200..=3200).contains(&freq.as_u32()) {
            return Err(ConfigError::UnsupportedFrequency { requested_mhz: freq.as_u32() });
        }
        self.pmd_frequencies[pmd.index()] = freq;
        Ok(())
    }

    /// Configures the DRAM refresh period through SLIMpro.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRefreshPeriod`] for non-positive values.
    pub fn set_trefp(&mut self, trefp: Milliseconds) -> Result<(), ConfigError> {
        if trefp.as_f64() <= 0.0 {
            return Err(ConfigError::InvalidRefreshPeriod);
        }
        self.dram.set_trefp(trefp);
        Ok(())
    }

    /// Sets the DRAM temperature (driven by the thermal testbed).
    pub fn set_dram_temperature(&mut self, temp: Celsius) {
        self.dram_temperature = temp;
        self.dram.set_temperature(temp);
    }

    /// Runs one program alone on `core` and classifies the outcome.
    pub fn run_on_core(&mut self, core: CoreId, workload: &WorkloadProfile) -> CoreRunResult {
        let freq = self.pmd_frequencies[core.pmd().index()];
        let outcome = self.fault_model.classify(
            &self.chip,
            core,
            workload,
            freq,
            self.pmd_voltage,
            &mut self.rng,
        );
        if outcome.needs_reset() {
            self.reset();
        }
        CoreRunResult { core, workload: workload.name().to_owned(), outcome }
    }

    /// Runs one program per assignment simultaneously (multi-process
    /// setup); each run sees the combined rail noise of all active cores.
    pub fn run_many(
        &mut self,
        assignments: &[(CoreId, &WorkloadProfile)],
    ) -> Vec<CoreRunResult> {
        let n = assignments.len().max(1);
        let mut results = Vec::with_capacity(assignments.len());
        let mut crashed = false;
        for (core, workload) in assignments {
            let freq = self.pmd_frequencies[core.pmd().index()];
            let outcome = self.fault_model.classify_with_active_cores(
                &self.chip,
                *core,
                workload,
                freq,
                self.pmd_voltage,
                n,
                &mut self.rng,
            );
            crashed |= outcome.needs_reset();
            results.push(CoreRunResult {
                core: *core,
                workload: workload.name().to_owned(),
                outcome,
            });
        }
        if crashed {
            self.reset();
        }
        results
    }

    /// Board power at the current operating point for a given load, as the
    /// SLIMpro power sensors report it.
    pub fn read_power(&self, load: &ServerLoad) -> PowerBreakdown {
        let point = OperatingPoint {
            pmd_voltage: self.pmd_voltage,
            soc_voltage: self.soc_voltage,
            plan: FrequencyPlan::from_frequencies(self.pmd_frequencies),
            trefp: self.dram.trefp(),
        };
        self.power_model.power(&point, load)
    }

    /// Total board power under `load` (convenience over [`Self::read_power`]).
    pub fn read_total_power(&self, load: &ServerLoad) -> Watts {
        self.read_power(load).total()
    }

    /// DRAM temperature as the SPD sensors report it.
    pub fn read_dram_temperature(&self) -> Celsius {
        self.dram_temperature
    }

    /// Power-cycles the server: restores nominal V/F (the firmware boots at
    /// nominal), clears DRAM contents, and counts the reset.
    pub fn reset(&mut self) {
        self.reset_count += 1;
        self.pmd_voltage = Millivolts::XGENE2_NOMINAL;
        self.soc_voltage = Millivolts::XGENE2_NOMINAL;
        self.pmd_frequencies = [Megahertz::XGENE2_NOMINAL; PMD_COUNT];
        self.dram.fill_pattern(dram_sim::patterns::DataPattern::AllZeros);
    }
}

fn validate_voltage(voltage: Millivolts) -> Result<(), ConfigError> {
    if !VOLTAGE_RANGE_MV.contains(&voltage.as_u32()) {
        return Err(ConfigError::VoltageOutOfRange { requested_mv: voltage.as_u32() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_at_nominal() {
        let server = XGene2Server::new(SigmaBin::Ttt, 1);
        assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);
        assert_eq!(server.pmd_frequency(PmdId::new(0)), Megahertz::XGENE2_NOMINAL);
        assert_eq!(server.reset_count(), 0);
    }

    #[test]
    fn rejects_out_of_range_voltage() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        let err = server.set_pmd_voltage(Millivolts::new(600)).unwrap_err();
        assert_eq!(err, ConfigError::VoltageOutOfRange { requested_mv: 600 });
        assert!(server.set_pmd_voltage(Millivolts::new(700)).is_ok());
    }

    #[test]
    fn rejects_unsupported_frequency() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        assert!(server.set_pmd_frequency(PmdId::new(0), Megahertz::new(1234)).is_err());
        assert!(server
            .set_pmd_frequency(PmdId::new(0), Megahertz::XGENE2_HALF)
            .is_ok());
        assert_eq!(server.pmd_frequency(PmdId::new(0)), Megahertz::XGENE2_HALF);
    }

    #[test]
    fn crash_triggers_watchdog_reset_and_reboot_at_nominal() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        server.set_pmd_voltage(Millivolts::new(700)).unwrap();
        let heavy = WorkloadProfile::builder("heavy").activity(0.9).swing(0.8).build();
        let result = server.run_on_core(CoreId::new(0), &heavy);
        assert_eq!(result.outcome, RunOutcome::Crash);
        assert_eq!(server.reset_count(), 1);
        assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn nominal_run_is_clean() {
        let mut server = XGene2Server::new(SigmaBin::Tss, 2);
        let w = WorkloadProfile::builder("w").activity(0.7).swing(0.5).build();
        let r = server.run_on_core(CoreId::new(3), &w);
        assert_eq!(r.outcome, RunOutcome::Correct);
    }

    #[test]
    fn multiprocess_runs_report_per_core() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 3);
        let a = WorkloadProfile::builder("a").activity(0.4).build();
        let b = WorkloadProfile::builder("b").activity(0.6).build();
        let results = server.run_many(&[
            (CoreId::new(0), &a),
            (CoreId::new(2), &b),
        ]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "a");
        assert_eq!(results[1].core, CoreId::new(2));
    }

    #[test]
    fn power_reading_drops_at_safe_point() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 4);
        let load = ServerLoad::jammer_detector();
        let nominal = server.read_total_power(&load);
        server.set_pmd_voltage(Millivolts::new(930)).unwrap();
        server.set_soc_voltage(Millivolts::new(920)).unwrap();
        server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).unwrap();
        let safe = server.read_total_power(&load);
        let savings = nominal.savings_to(safe);
        assert!((savings - 0.202).abs() < 0.01, "savings {savings}");
    }

    #[test]
    fn trefp_validation() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 5);
        assert_eq!(
            server.set_trefp(Milliseconds::new(0.0)).unwrap_err(),
            ConfigError::InvalidRefreshPeriod
        );
        assert!(server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).is_ok());
        assert_eq!(server.dram().trefp(), Milliseconds::DSN18_RELAXED_TREFP);
    }

    #[test]
    fn dram_temperature_propagates() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 6);
        server.set_dram_temperature(Celsius::new(60.0));
        assert_eq!(server.read_dram_temperature(), Celsius::new(60.0));
        assert_eq!(server.dram().temperature(), Celsius::new(60.0));
    }
}
