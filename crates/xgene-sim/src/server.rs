//! The assembled X-Gene2 server: chip + DRAM + sensors + SLIMpro.
//!
//! SLIMpro (Scalable Lightweight Intelligent Management Processor) is the
//! management core that boots the system, exposes temperature and power
//! sensors, reports ECC/parity errors to the kernel, and configures MCU
//! parameters such as the refresh period. The characterization framework
//! talks exclusively to this interface — exactly as the real framework
//! does — so swapping the simulated server for real hardware would only
//! replace this module.

use crate::fault::{FaultModel, FaultPlan, ResetBehavior, RunOutcome};
use crate::sigma::{ChipProfile, SigmaBin};
use crate::topology::{CoreId, PmdId, PMD_COUNT};
use crate::workload::WorkloadProfile;
use dram_sim::array::DramArray;
use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use power_model::server::{OperatingPoint, PowerBreakdown, ServerLoad, ServerPowerModel};
use power_model::tradeoff::FrequencyPlan;
use power_model::units::{Celsius, Megahertz, Milliseconds, Millivolts, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use telemetry::Level;

/// Voltage programmable range of the PMD/SoC regulators.
pub const VOLTAGE_RANGE_MV: std::ops::RangeInclusive<u32> = 700..=1050;

/// Error raised by invalid management-interface requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// Requested voltage is outside the regulator's range.
    VoltageOutOfRange {
        /// The rejected request in millivolts.
        requested_mv: u32,
    },
    /// Requested frequency is not one of the supported DVFS steps.
    UnsupportedFrequency {
        /// The rejected request in MHz.
        requested_mhz: u32,
    },
    /// Requested refresh period is non-positive.
    InvalidRefreshPeriod,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::VoltageOutOfRange { requested_mv } => {
                write!(f, "voltage {requested_mv} mV outside regulator range")
            }
            ConfigError::UnsupportedFrequency { requested_mhz } => {
                write!(f, "frequency {requested_mhz} MHz is not a DVFS step")
            }
            ConfigError::InvalidRefreshPeriod => f.write_str("refresh period must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Supported per-PMD DVFS frequency steps.
pub const DVFS_STEPS_MHZ: [u32; 5] = [2400, 2000, 1600, 1200, 800];

/// One program run's result as the framework observes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRunResult {
    /// Core the program ran on.
    pub core: CoreId,
    /// Workload name.
    pub workload: String,
    /// Classified outcome.
    pub outcome: RunOutcome,
}

/// One multi-tenant epoch: a victim run plus its co-tenants' runs, with
/// the cross-tenant PDN droop each induced on the other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocatedRun {
    /// The victim tenant's classified run.
    pub victim: CoreRunResult,
    /// Co-tenant (aggressor) runs, in assignment order.
    pub aggressors: Vec<CoreRunResult>,
    /// Ground-truth rail droop (mV) the co-tenants induced at the
    /// victim's supply pins. This is simulator-side truth for audits and
    /// tests; a safety net must *estimate* it from observable telemetry.
    pub cross_droop_mv: f64,
}

/// SplitMix domain tag for the adversarial tenant's RNG stream — the same
/// domain-separation pattern the fleet uses for per-board streams, so an
/// attacker's fault draws can never perturb the victim's trace.
const ATTACKER_STREAM_DOMAIN: u64 = 0xAD;

/// The simulated server.
///
/// # Examples
///
/// ```
/// use xgene_sim::server::XGene2Server;
/// use xgene_sim::sigma::SigmaBin;
/// use xgene_sim::workload::WorkloadProfile;
/// use power_model::units::Millivolts;
///
/// let mut server = XGene2Server::new(SigmaBin::Ttt, 42);
/// server.set_pmd_voltage(Millivolts::new(930))?;
/// let w = WorkloadProfile::builder("bench").activity(0.5).build();
/// let result = server.run_on_core(server.chip().most_robust_core(), &w);
/// assert!(result.outcome.is_usable());
/// # Ok::<(), xgene_sim::server::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XGene2Server {
    chip: ChipProfile,
    fault_model: FaultModel,
    power_model: ServerPowerModel,
    dram: DramArray,
    pmd_voltage: Millivolts,
    soc_voltage: Millivolts,
    pmd_frequencies: [Megahertz; PMD_COUNT],
    dram_temperature: Celsius,
    reset_count: u64,
    rng: StdRng,
    fault_plan: Option<FaultPlan>,
    hung: bool,
    /// Seed of the domain-separated attacker stream (see
    /// [`ATTACKER_STREAM_DOMAIN`]). Defaults to 0 when decoding snapshots
    /// taken before multi-tenancy existed.
    #[serde(default)]
    attacker_seed: u64,
    /// Lazily seeded attacker RNG: `None` until the first co-located run,
    /// so purely single-tenant campaigns replay byte-identically against
    /// pre-multi-tenancy snapshots.
    #[serde(default)]
    attacker_rng: Option<StdRng>,
}

impl XGene2Server {
    /// Boots a server with the given chip corner, deterministic in `seed`.
    pub fn new(bin: SigmaBin, seed: u64) -> Self {
        XGene2Server::with_population_spec(bin, seed, PopulationSpec::dsn18())
    }

    /// Boots a server whose DRAM population covers a custom envelope
    /// (needed for sweeps beyond 60 °C / 2.283 s).
    pub fn with_population_spec(bin: SigmaBin, seed: u64, spec: PopulationSpec) -> Self {
        let population = WeakCellPopulation::generate(&RetentionModel::xgene2_micron(), spec, seed);
        let dram = DramArray::new(
            population,
            Milliseconds::DDR3_NOMINAL_TREFP,
            Celsius::new(45.0),
        );
        XGene2Server {
            chip: ChipProfile::corner(bin),
            fault_model: FaultModel::default(),
            power_model: ServerPowerModel::xgene2(),
            dram,
            pmd_voltage: Millivolts::XGENE2_NOMINAL,
            soc_voltage: Millivolts::XGENE2_NOMINAL,
            pmd_frequencies: [Megahertz::XGENE2_NOMINAL; PMD_COUNT],
            dram_temperature: Celsius::new(45.0),
            reset_count: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xD5A5_5A5D),
            fault_plan: None,
            hung: false,
            attacker_seed: seed ^ ATTACKER_STREAM_DOMAIN.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            attacker_rng: None,
        }
    }

    /// Boots a server around an explicit chip personality (typically
    /// [`ChipProfile::sampled`]) — the fleet orchestrator's constructor,
    /// where every board carries its own sampled silicon rather than one
    /// of the three characterized corner parts. The DRAM weak-cell
    /// population and fault RNG still derive deterministically from
    /// `seed`.
    pub fn with_chip(chip: ChipProfile, seed: u64, spec: PopulationSpec) -> Self {
        let mut server = XGene2Server::with_population_spec(chip.bin(), seed, spec);
        server.chip = chip;
        server
    }

    /// Boots a server around an explicit chip *and* an explicit DRAM
    /// weak-cell population — the lifetime subsystem's constructor,
    /// where a re-characterization boots the board as it exists after
    /// years of deployment (aged silicon, grown cell population) rather
    /// than as it left the factory. The fault RNG still derives from
    /// `seed`.
    pub fn with_chip_and_population(
        chip: ChipProfile,
        seed: u64,
        population: WeakCellPopulation,
    ) -> Self {
        let dram = DramArray::new(
            population,
            Milliseconds::DDR3_NOMINAL_TREFP,
            Celsius::new(45.0),
        );
        XGene2Server {
            chip,
            fault_model: FaultModel::default(),
            power_model: ServerPowerModel::xgene2(),
            dram,
            pmd_voltage: Millivolts::XGENE2_NOMINAL,
            soc_voltage: Millivolts::XGENE2_NOMINAL,
            pmd_frequencies: [Megahertz::XGENE2_NOMINAL; PMD_COUNT],
            dram_temperature: Celsius::new(45.0),
            reset_count: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xD5A5_5A5D),
            fault_plan: None,
            hung: false,
            attacker_seed: seed ^ ATTACKER_STREAM_DOMAIN.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            attacker_rng: None,
        }
    }

    /// Installs a board-level fault-injection plan. Without one (the
    /// default) every reset succeeds and every setup write lands, which is
    /// the exact legacy behavior: no plan means zero extra RNG draws.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether the board is currently hung (a power cycle failed to bring
    /// it back). A hung board crashes every run until [`Self::power_cycle`]
    /// succeeds.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// The chip installed in the socket.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// The DRAM subsystem (mutable: workloads read and write it).
    pub fn dram_mut(&mut self) -> &mut DramArray {
        &mut self.dram
    }

    /// The DRAM subsystem.
    pub fn dram(&self) -> &DramArray {
        &self.dram
    }

    /// Current PMD-rail voltage.
    pub fn pmd_voltage(&self) -> Millivolts {
        self.pmd_voltage
    }

    /// Current SoC-rail voltage.
    pub fn soc_voltage(&self) -> Millivolts {
        self.soc_voltage
    }

    /// Current frequency of a PMD.
    pub fn pmd_frequency(&self, pmd: PmdId) -> Megahertz {
        self.pmd_frequencies[pmd.index()]
    }

    /// Number of watchdog resets since boot.
    pub fn reset_count(&self) -> u64 {
        self.reset_count
    }

    /// Sets the PMD-domain voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::VoltageOutOfRange`] outside 700–1050 mV.
    pub fn set_pmd_voltage(&mut self, voltage: Millivolts) -> Result<(), ConfigError> {
        validate_voltage(voltage)?;
        // A faulty firmware may silently drop the write (the SLIMpro call
        // returns success but the regulator stays where it was); callers
        // that care must read the voltage back.
        if let Some(plan) = self.fault_plan.as_mut() {
            if plan.next_setup_write_lost() {
                telemetry::event!(
                    Level::Warn,
                    "setup_write_lost",
                    requested_mv = voltage.as_u32(),
                    actual_mv = self.pmd_voltage.as_u32(),
                );
                telemetry::counter!("setup_writes_lost_total");
                return Ok(());
            }
        }
        telemetry::event!(Level::Trace, "pmd_voltage_set", mv = voltage.as_u32());
        self.pmd_voltage = voltage;
        Ok(())
    }

    /// Sets the SoC-domain voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::VoltageOutOfRange`] outside 700–1050 mV.
    pub fn set_soc_voltage(&mut self, voltage: Millivolts) -> Result<(), ConfigError> {
        validate_voltage(voltage)?;
        telemetry::event!(Level::Trace, "soc_voltage_set", mv = voltage.as_u32());
        self.soc_voltage = voltage;
        Ok(())
    }

    /// Sets one PMD's frequency to a supported DVFS step.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedFrequency`] for other values.
    pub fn set_pmd_frequency(&mut self, pmd: PmdId, freq: Megahertz) -> Result<(), ConfigError> {
        if !DVFS_STEPS_MHZ.contains(&freq.as_u32()) {
            return Err(ConfigError::UnsupportedFrequency {
                requested_mhz: freq.as_u32(),
            });
        }
        telemetry::event!(
            Level::Trace,
            "pmd_frequency_set",
            pmd = pmd.index(),
            mhz = freq.as_u32(),
        );
        self.pmd_frequencies[pmd.index()] = freq;
        Ok(())
    }

    /// Sets one PMD's frequency to an arbitrary PLL value — the socketed
    /// validation boards allow overriding the DVFS table for frequency
    /// characterization (Fmax search).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnsupportedFrequency`] outside 200–3200 MHz.
    pub fn set_pmd_frequency_unlocked(
        &mut self,
        pmd: PmdId,
        freq: Megahertz,
    ) -> Result<(), ConfigError> {
        if !(200..=3200).contains(&freq.as_u32()) {
            return Err(ConfigError::UnsupportedFrequency {
                requested_mhz: freq.as_u32(),
            });
        }
        self.pmd_frequencies[pmd.index()] = freq;
        Ok(())
    }

    /// Configures the DRAM refresh period through SLIMpro.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidRefreshPeriod`] for non-positive values.
    pub fn set_trefp(&mut self, trefp: Milliseconds) -> Result<(), ConfigError> {
        if trefp.as_f64() <= 0.0 {
            return Err(ConfigError::InvalidRefreshPeriod);
        }
        self.dram.set_trefp(trefp);
        Ok(())
    }

    /// Sets the DRAM temperature (driven by the thermal testbed).
    pub fn set_dram_temperature(&mut self, temp: Celsius) {
        self.dram_temperature = temp;
        self.dram.set_temperature(temp);
    }

    /// Runs one program alone on `core` and classifies the outcome.
    ///
    /// On a hung board nothing executes: the result is a crash and no
    /// watchdog fires (the watchdog already gave up; recovery needs an
    /// explicit [`Self::power_cycle`]).
    pub fn run_on_core(&mut self, core: CoreId, workload: &WorkloadProfile) -> CoreRunResult {
        if self.hung {
            return CoreRunResult {
                core,
                workload: workload.name().to_owned(),
                outcome: RunOutcome::Crash,
            };
        }
        let freq = self.pmd_frequencies[core.pmd().index()];
        let outcome = self.fault_model.classify(
            &self.chip,
            core,
            workload,
            freq,
            self.pmd_voltage,
            &mut self.rng,
        );
        let outcome = self.apply_sdc_injection(core, workload, freq, 1, outcome, self.pmd_voltage);
        if outcome.needs_reset() {
            self.reset();
        }
        telemetry::event!(
            Level::Debug,
            "run_outcome",
            core = core.index(),
            workload = workload.name(),
            outcome = outcome.to_string(),
        );
        CoreRunResult {
            core,
            workload: workload.name().to_owned(),
            outcome,
        }
    }

    /// Runs one program per assignment simultaneously (multi-process
    /// setup); each run sees the combined rail noise of all active cores.
    pub fn run_many(&mut self, assignments: &[(CoreId, &WorkloadProfile)]) -> Vec<CoreRunResult> {
        if self.hung {
            return assignments
                .iter()
                .map(|(core, workload)| CoreRunResult {
                    core: *core,
                    workload: workload.name().to_owned(),
                    outcome: RunOutcome::Crash,
                })
                .collect();
        }
        let n = assignments.len().max(1);
        let mut results = Vec::with_capacity(assignments.len());
        let mut crashed = false;
        for (core, workload) in assignments {
            let freq = self.pmd_frequencies[core.pmd().index()];
            let outcome = self.fault_model.classify_with_active_cores(
                &self.chip,
                *core,
                workload,
                freq,
                self.pmd_voltage,
                n,
                &mut self.rng,
            );
            let outcome =
                self.apply_sdc_injection(*core, workload, freq, n, outcome, self.pmd_voltage);
            crashed |= outcome.needs_reset();
            results.push(CoreRunResult {
                core: *core,
                workload: workload.name().to_owned(),
                outcome,
            });
        }
        if crashed {
            self.reset();
        }
        results
    }

    /// Runs the victim tenant on `core` simultaneously with co-located
    /// tenants on other cores of the shared rail, applying the
    /// cross-tenant PDN droop each induces on the others (see
    /// [`ChipProfile::cross_tenant_droop_mv`]).
    ///
    /// Two invariants make this safe to add to an existing campaign:
    ///
    /// * With an empty `co_tenants` slice the victim path is draw-for-draw
    ///   identical to [`Self::run_on_core`] — same RNG stream, same fault
    ///   plan advancement, same classification inputs.
    /// * Co-tenant runs are classified from a *domain-separated* attacker
    ///   RNG stream and never advance the fault plan, so adding or
    ///   swapping an attacker cannot perturb the victim's fault trace
    ///   (only its physics, through the droop it couples in).
    pub fn run_colocated(
        &mut self,
        core: CoreId,
        workload: &WorkloadProfile,
        co_tenants: &[(CoreId, &WorkloadProfile)],
    ) -> ColocatedRun {
        if self.hung {
            return ColocatedRun {
                victim: CoreRunResult {
                    core,
                    workload: workload.name().to_owned(),
                    outcome: RunOutcome::Crash,
                },
                aggressors: co_tenants
                    .iter()
                    .map(|(c, w)| CoreRunResult {
                        core: *c,
                        workload: w.name().to_owned(),
                        outcome: RunOutcome::Crash,
                    })
                    .collect(),
                cross_droop_mv: 0.0,
            };
        }
        let active = 1 + co_tenants.len();
        let aggressor_profiles: Vec<&WorkloadProfile> =
            co_tenants.iter().map(|(_, w)| *w).collect();
        let cross_droop_mv = self.chip.cross_tenant_droop_mv(&aggressor_profiles);

        // Victim: classified at the droop-eroded effective voltage, drawing
        // from the victim RNG stream and advancing the fault plan exactly
        // as a solo run would.
        let freq = self.pmd_frequencies[core.pmd().index()];
        let effective = droop_adjusted(self.pmd_voltage, cross_droop_mv);
        let outcome = self.fault_model.classify_with_active_cores(
            &self.chip,
            core,
            workload,
            freq,
            effective,
            active,
            &mut self.rng,
        );
        let outcome = self.apply_sdc_injection(core, workload, freq, active, outcome, effective);
        let mut crashed = outcome.needs_reset();
        let victim = CoreRunResult {
            core,
            workload: workload.name().to_owned(),
            outcome,
        };

        // Aggressors: classified from the attacker stream at *their*
        // droop-eroded voltage (the droop every other tenant couples onto
        // them); a benign victim contributes ~0 back.
        let attacker_seed = self.attacker_seed;
        let mut aggressors = Vec::with_capacity(co_tenants.len());
        for (i, (a_core, a_workload)) in co_tenants.iter().enumerate() {
            let mut others: Vec<&WorkloadProfile> = vec![workload];
            others.extend(
                co_tenants
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, (_, w))| *w),
            );
            let a_droop = self.chip.cross_tenant_droop_mv(&others);
            let a_effective = droop_adjusted(self.pmd_voltage, a_droop);
            let a_freq = self.pmd_frequencies[a_core.pmd().index()];
            let arng = self
                .attacker_rng
                .get_or_insert_with(|| StdRng::seed_from_u64(attacker_seed));
            let a_outcome = self.fault_model.classify_with_active_cores(
                &self.chip,
                *a_core,
                a_workload,
                a_freq,
                a_effective,
                active,
                arng,
            );
            crashed |= a_outcome.needs_reset();
            aggressors.push(CoreRunResult {
                core: *a_core,
                workload: a_workload.name().to_owned(),
                outcome: a_outcome,
            });
        }
        // A crash anywhere on the shared rail takes the whole board down:
        // one watchdog reset, exactly as in `run_many`.
        if crashed {
            self.reset();
        }
        telemetry::event!(
            Level::Debug,
            "colocated_run",
            core = core.index(),
            workload = workload.name(),
            co_tenants = co_tenants.len(),
            cross_droop_mv = cross_droop_mv,
            outcome = victim.outcome.to_string(),
        );
        ColocatedRun {
            victim,
            aggressors,
            cross_droop_mv,
        }
    }

    /// Applies the fault plan's silicon-level SDC injection (if any) to a
    /// freshly classified run. Without a plan this is a no-op; with one,
    /// the plan's run-draw counter advances (no RNG) and forced or
    /// sub-Vmin runs are reclassified as silent corruptions. `rail` is the
    /// effective voltage the run actually saw (droop-adjusted for
    /// co-located runs), so the sub-Vmin check matches the physics.
    fn apply_sdc_injection(
        &mut self,
        core: CoreId,
        workload: &WorkloadProfile,
        freq: Megahertz,
        active_cores: usize,
        outcome: RunOutcome,
        rail: Millivolts,
    ) -> RunOutcome {
        let Some(plan) = self.fault_plan.as_mut() else {
            return outcome;
        };
        let vmin = self
            .chip
            .vmin_with_active_cores(core, workload, freq, active_cores);
        let below = rail < vmin;
        if plan.next_run_sdc_override(below, outcome) && outcome != RunOutcome::SilentDataCorruption
        {
            telemetry::event!(
                Level::Debug,
                "sdc_injected",
                core = core.index(),
                workload = workload.name(),
                original = outcome.to_string(),
            );
            telemetry::counter!("sdc_injections_total");
            return RunOutcome::SilentDataCorruption;
        }
        outcome
    }

    /// Board power at the current operating point for a given load, as the
    /// SLIMpro power sensors report it.
    pub fn read_power(&self, load: &ServerLoad) -> PowerBreakdown {
        let point = OperatingPoint {
            pmd_voltage: self.pmd_voltage,
            soc_voltage: self.soc_voltage,
            plan: FrequencyPlan::from_frequencies(self.pmd_frequencies),
            trefp: self.dram.trefp(),
        };
        self.power_model.power(&point, load)
    }

    /// Total board power under `load` (convenience over [`Self::read_power`]).
    pub fn read_total_power(&self, load: &ServerLoad) -> Watts {
        self.read_power(load).total()
    }

    /// DRAM temperature as the SPD sensors report it.
    pub fn read_dram_temperature(&self) -> Celsius {
        self.dram_temperature
    }

    /// Power-cycles the server: restores nominal V/F (the firmware boots at
    /// nominal), clears DRAM contents, and counts the reset.
    ///
    /// With a [`FaultPlan`] installed the cycle may misbehave: a boot-loop
    /// burns extra cycles before coming up, and a failed cycle leaves the
    /// board hung (state untouched, every subsequent run crashes) until
    /// [`Self::power_cycle`] succeeds.
    pub fn reset(&mut self) {
        self.reset_count += 1;
        telemetry::counter!("watchdog_resets_total");
        let behavior = match self.fault_plan.as_mut() {
            Some(plan) => plan.next_reset_behavior(),
            None => ResetBehavior::Booted,
        };
        match behavior {
            ResetBehavior::StayedHung => {
                telemetry::event!(
                    Level::Warn,
                    "reset_failed_board_hung",
                    reset_count = self.reset_count,
                );
                self.hung = true;
            }
            ResetBehavior::BootLoop { extra_cycles } => {
                telemetry::event!(
                    Level::Warn,
                    "boot_loop",
                    extra_cycles = extra_cycles,
                    reset_count = self.reset_count,
                );
                self.reset_count += u64::from(extra_cycles);
                self.complete_boot();
            }
            ResetBehavior::Booted => {
                telemetry::event!(
                    Level::Debug,
                    "watchdog_reset",
                    reset_count = self.reset_count
                );
                self.complete_boot();
            }
        }
    }

    /// Issues an explicit IPMI power cycle and reports whether the board
    /// came back. On success the board is un-hung and at the nominal
    /// operating point; on failure it is (still) hung and the caller
    /// should retry with backoff.
    pub fn power_cycle(&mut self) -> bool {
        self.reset();
        let success = !self.hung;
        telemetry::counter!("power_cycles_total");
        telemetry::event!(Level::Info, "power_cycle", success = success);
        success
    }

    /// Operator-level recovery — physically reseating the board — which
    /// always brings it back at nominal, bypassing the fault plan. The
    /// escalation path once power-cycle retries are exhausted.
    pub fn force_recover(&mut self) {
        telemetry::event!(
            Level::Warn,
            "force_recover",
            reset_count = self.reset_count + 1
        );
        telemetry::counter!("force_recoveries_total");
        self.reset_count += 1;
        self.complete_boot();
    }

    fn complete_boot(&mut self) {
        self.hung = false;
        self.pmd_voltage = Millivolts::XGENE2_NOMINAL;
        self.soc_voltage = Millivolts::XGENE2_NOMINAL;
        self.pmd_frequencies = [Megahertz::XGENE2_NOMINAL; PMD_COUNT];
        self.dram
            .fill_pattern(dram_sim::patterns::DataPattern::AllZeros);
    }
}

/// Applies a PDN droop (mV) to the rail set-point, saturating at zero.
fn droop_adjusted(rail: Millivolts, droop_mv: f64) -> Millivolts {
    let v = (f64::from(rail.as_u32()) - droop_mv).round().max(0.0);
    Millivolts::new(v as u32)
}

fn validate_voltage(voltage: Millivolts) -> Result<(), ConfigError> {
    if !VOLTAGE_RANGE_MV.contains(&voltage.as_u32()) {
        return Err(ConfigError::VoltageOutOfRange {
            requested_mv: voltage.as_u32(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_at_nominal() {
        let server = XGene2Server::new(SigmaBin::Ttt, 1);
        assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);
        assert_eq!(
            server.pmd_frequency(PmdId::new(0)),
            Megahertz::XGENE2_NOMINAL
        );
        assert_eq!(server.reset_count(), 0);
    }

    #[test]
    fn rejects_out_of_range_voltage() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        let err = server.set_pmd_voltage(Millivolts::new(600)).unwrap_err();
        assert_eq!(err, ConfigError::VoltageOutOfRange { requested_mv: 600 });
        assert!(server.set_pmd_voltage(Millivolts::new(700)).is_ok());
    }

    #[test]
    fn rejects_unsupported_frequency() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        assert!(server
            .set_pmd_frequency(PmdId::new(0), Megahertz::new(1234))
            .is_err());
        assert!(server
            .set_pmd_frequency(PmdId::new(0), Megahertz::XGENE2_HALF)
            .is_ok());
        assert_eq!(server.pmd_frequency(PmdId::new(0)), Megahertz::XGENE2_HALF);
    }

    #[test]
    fn crash_triggers_watchdog_reset_and_reboot_at_nominal() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        server.set_pmd_voltage(Millivolts::new(700)).unwrap();
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.9)
            .swing(0.8)
            .build();
        let result = server.run_on_core(CoreId::new(0), &heavy);
        assert_eq!(result.outcome, RunOutcome::Crash);
        assert_eq!(server.reset_count(), 1);
        assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);
    }

    #[test]
    fn nominal_run_is_clean() {
        let mut server = XGene2Server::new(SigmaBin::Tss, 2);
        let w = WorkloadProfile::builder("w")
            .activity(0.7)
            .swing(0.5)
            .build();
        let r = server.run_on_core(CoreId::new(3), &w);
        assert_eq!(r.outcome, RunOutcome::Correct);
    }

    #[test]
    fn multiprocess_runs_report_per_core() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 3);
        let a = WorkloadProfile::builder("a").activity(0.4).build();
        let b = WorkloadProfile::builder("b").activity(0.6).build();
        let results = server.run_many(&[(CoreId::new(0), &a), (CoreId::new(2), &b)]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "a");
        assert_eq!(results[1].core, CoreId::new(2));
    }

    #[test]
    fn power_reading_drops_at_safe_point() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 4);
        let load = ServerLoad::jammer_detector();
        let nominal = server.read_total_power(&load);
        server.set_pmd_voltage(Millivolts::new(930)).unwrap();
        server.set_soc_voltage(Millivolts::new(920)).unwrap();
        server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).unwrap();
        let safe = server.read_total_power(&load);
        let savings = nominal.savings_to(safe);
        assert!((savings - 0.202).abs() < 0.01, "savings {savings}");
    }

    #[test]
    fn trefp_validation() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 5);
        assert_eq!(
            server.set_trefp(Milliseconds::new(0.0)).unwrap_err(),
            ConfigError::InvalidRefreshPeriod
        );
        assert!(server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).is_ok());
        assert_eq!(server.dram().trefp(), Milliseconds::DSN18_RELAXED_TREFP);
    }

    #[test]
    fn forced_hang_leaves_board_dead_until_power_cycle_succeeds() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        // First reset draw hangs the board; later cycles succeed.
        server.install_fault_plan(FaultPlan::quiet(7).force_hang_at(0));
        server.set_pmd_voltage(Millivolts::new(700)).unwrap();
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.9)
            .swing(0.8)
            .build();
        let crash = server.run_on_core(CoreId::new(0), &heavy);
        assert_eq!(crash.outcome, RunOutcome::Crash);
        assert!(server.is_hung(), "the watchdog reset must have failed");
        // A hung board crashes everything without further resets.
        let before = server.reset_count();
        let dead = server.run_on_core(CoreId::new(1), &heavy);
        assert_eq!(dead.outcome, RunOutcome::Crash);
        assert_eq!(server.reset_count(), before);
        // An explicit power cycle recovers it.
        assert!(server.power_cycle());
        assert!(!server.is_hung());
        assert_eq!(server.pmd_voltage(), Millivolts::XGENE2_NOMINAL);
        let clean = server.run_on_core(CoreId::new(0), &heavy);
        assert!(clean.outcome.is_usable());
    }

    #[test]
    fn lost_setup_write_keeps_old_voltage_but_reports_success() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        server.install_fault_plan(FaultPlan::quiet(7).force_setup_loss_at(0));
        assert!(server.set_pmd_voltage(Millivolts::new(900)).is_ok());
        assert_eq!(
            server.pmd_voltage(),
            Millivolts::XGENE2_NOMINAL,
            "the write must have been silently dropped"
        );
        // The next write lands.
        server.set_pmd_voltage(Millivolts::new(900)).unwrap();
        assert_eq!(server.pmd_voltage(), Millivolts::new(900));
    }

    #[test]
    fn boot_loop_burns_extra_power_cycles() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
        server.install_fault_plan(FaultPlan::quiet(7).with_boot_loop_rate(1.0));
        server.reset();
        assert!(!server.is_hung());
        assert!(
            server.reset_count() >= 2,
            "a boot loop costs at least one extra cycle"
        );
    }

    #[test]
    fn quiet_plan_preserves_legacy_run_sequence() {
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.8)
            .swing(0.6)
            .build();
        let drive = |server: &mut XGene2Server| -> Vec<RunOutcome> {
            (0..40)
                .map(|_| {
                    server.set_pmd_voltage(Millivolts::new(880)).unwrap();
                    server.run_on_core(CoreId::new(0), &heavy).outcome
                })
                .collect()
        };
        let mut plain = XGene2Server::new(SigmaBin::Ttt, 21);
        let mut planned = XGene2Server::new(SigmaBin::Ttt, 21);
        planned.install_fault_plan(FaultPlan::quiet(999));
        assert_eq!(drive(&mut plain), drive(&mut planned));
        assert_eq!(plain.reset_count(), planned.reset_count());
    }

    #[test]
    fn server_serde_roundtrip_reproduces_outcomes() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 33);
        server.install_fault_plan(FaultPlan::hostile(33));
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.8)
            .swing(0.6)
            .build();
        for _ in 0..5 {
            let _ = server.set_pmd_voltage(Millivolts::new(890));
            server.run_on_core(CoreId::new(0), &heavy);
        }
        let snapshot = serde::json::to_string(&server);
        let mut restored: XGene2Server = serde::json::from_str(&snapshot).unwrap();
        for _ in 0..20 {
            let _ = server.set_pmd_voltage(Millivolts::new(885));
            let _ = restored.set_pmd_voltage(Millivolts::new(885));
            let a = server.run_on_core(CoreId::new(0), &heavy);
            let b = restored.run_on_core(CoreId::new(0), &heavy);
            assert_eq!(a, b);
            assert_eq!(server.reset_count(), restored.reset_count());
            assert_eq!(server.is_hung(), restored.is_hung());
            if server.is_hung() {
                assert_eq!(server.power_cycle(), restored.power_cycle());
            }
        }
    }

    #[test]
    fn sub_vmin_sdc_injection_turns_completed_failures_silent() {
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.9)
            .swing(0.8)
            .build();
        let mut server = XGene2Server::new(SigmaBin::Ttt, 44);
        server.install_fault_plan(FaultPlan::quiet(44).with_sub_vmin_sdc());
        let core = server.chip().most_robust_core();
        let vmin = server.chip().vmin(core, &heavy, Megahertz::XGENE2_NOMINAL);
        // A few mV below Vmin: completed runs are CE/UE/SDC mixes in the
        // plain model, all silent under injection.
        server
            .set_pmd_voltage(Millivolts::new(vmin.as_u32() - 4))
            .unwrap();
        let mut completed = 0;
        for _ in 0..100 {
            let o = server.run_on_core(core, &heavy).outcome;
            if !o.needs_reset() {
                assert_eq!(o, RunOutcome::SilentDataCorruption);
                completed += 1;
            }
            server
                .set_pmd_voltage(Millivolts::new(vmin.as_u32() - 4))
                .unwrap();
        }
        assert!(completed > 0, "some sub-Vmin runs must have completed");
        // At or above Vmin the injection is inert.
        server.set_pmd_voltage(vmin).unwrap();
        for _ in 0..50 {
            let o = server.run_on_core(core, &heavy).outcome;
            assert_ne!(o, RunOutcome::SilentDataCorruption);
            server.set_pmd_voltage(vmin).unwrap();
        }
    }

    #[test]
    fn forced_sdc_lands_on_the_requested_run_draw() {
        let w = WorkloadProfile::builder("w").activity(0.5).build();
        let mut server = XGene2Server::new(SigmaBin::Ttt, 45);
        server.install_fault_plan(FaultPlan::quiet(45).force_sdc_at_run(2));
        let core = server.chip().most_robust_core();
        // Nominal voltage: every run is Correct except the forced draw.
        let outcomes: Vec<RunOutcome> = (0..5)
            .map(|_| server.run_on_core(core, &w).outcome)
            .collect();
        assert_eq!(outcomes[2], RunOutcome::SilentDataCorruption);
        for (i, o) in outcomes.iter().enumerate() {
            if i != 2 {
                assert_eq!(*o, RunOutcome::Correct, "run {i}");
            }
        }
    }

    #[test]
    fn colocated_droop_erodes_victim_margin() {
        // At a voltage with a few mV of solo margin, a resonant aggressor
        // couples enough droop across the rail to push the victim below
        // Vmin, while a non-resonant neighbour leaves it clean.
        let chip = ChipProfile::corner(SigmaBin::Tff);
        let victim_core = chip.weakest_core();
        let [a, b] = victim_core.pmd().cores();
        let attacker_core = if a == victim_core { b } else { a };
        let victim = WorkloadProfile::builder("victim").activity(0.3).build();
        let virus = WorkloadProfile::builder("virus")
            .activity(0.6)
            .swing(1.0)
            .resonance_alignment(0.9)
            .build();
        let benign = WorkloadProfile::builder("benign")
            .activity(0.6)
            .resonance_alignment(0.0)
            .build();
        let vmin = chip.vmin_with_active_cores(victim_core, &victim, Megahertz::XGENE2_NOMINAL, 2);
        let volts = Millivolts::new(vmin.as_u32() + 8);
        assert!(
            chip.cross_tenant_droop_mv(&[&virus]) > 8.0,
            "premise: the virus must couple more droop than the margin"
        );
        assert!(chip.cross_tenant_droop_mv(&[&benign]) < 1e-9);

        let mut failed = 0;
        let mut server = XGene2Server::new(SigmaBin::Tff, 77);
        for _ in 0..60 {
            server.set_pmd_voltage(volts).unwrap();
            let run = server.run_colocated(victim_core, &victim, &[(attacker_core, &virus)]);
            if run.victim.outcome != RunOutcome::Correct {
                failed += 1;
            }
        }
        assert!(failed > 0, "the coupled droop never bit the victim");

        let mut server = XGene2Server::new(SigmaBin::Tff, 77);
        for _ in 0..60 {
            server.set_pmd_voltage(volts).unwrap();
            let run = server.run_colocated(victim_core, &victim, &[(attacker_core, &benign)]);
            assert_eq!(run.victim.outcome, RunOutcome::Correct);
            assert!(run.cross_droop_mv < 1e-9);
        }
    }

    #[test]
    fn attacker_stream_never_perturbs_victim_trace() {
        // Byte-identity regression for the SplitMix stream separation:
        // two aggressors with *identical* coupling physics (zero resonant
        // energy) but very different fault-draw behavior — one runs in its
        // own safe band and consumes classification draws, the other sits
        // far above its Vmin and consumes none. The victim's outcome
        // sequence must be byte-identical either way, and a fault plan's
        // run counter must advance for victim runs only.
        let victim = WorkloadProfile::builder("victim").activity(0.3).build();
        // Zero resonance alignment => zero resonant energy => zero
        // cross-tenant droop, so only the RNG streams can differ.
        let marginal = WorkloadProfile::builder("marginal")
            .activity(0.9)
            .swing(0.9)
            .resonance_alignment(0.0)
            .build();
        let idle = WorkloadProfile::idle();
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let victim_core = chip.weakest_core();
        let [a, b] = victim_core.pmd().cores();
        let attacker_core = if a == victim_core { b } else { a };
        // Place the rail inside the marginal aggressor's safe band so its
        // runs draw from the attacker stream without ever crashing.
        let marginal_vmin =
            chip.vmin_with_active_cores(attacker_core, &marginal, Megahertz::XGENE2_NOMINAL, 2);
        let volts = Millivolts::new(marginal_vmin.as_u32() + 2);

        let drive = |attacker: &WorkloadProfile| -> (Vec<RunOutcome>, Vec<RunOutcome>) {
            let mut server = XGene2Server::new(SigmaBin::Ttt, 2024);
            server.install_fault_plan(FaultPlan::quiet(2024).force_sdc_at_run(5));
            let mut victims = Vec::new();
            let mut attackers = Vec::new();
            for _ in 0..30 {
                server.set_pmd_voltage(volts).unwrap();
                let run = server.run_colocated(victim_core, &victim, &[(attacker_core, attacker)]);
                victims.push(run.victim.outcome);
                attackers.push(run.aggressors[0].outcome);
            }
            (victims, attackers)
        };

        let (victims_marginal, attackers_marginal) = drive(&marginal);
        let (victims_idle, attackers_idle) = drive(&idle);
        // The marginal aggressor genuinely exercised its own fault band...
        assert!(
            attackers_marginal.contains(&RunOutcome::CorrectableError),
            "premise: the marginal aggressor never drew a fault"
        );
        assert!(attackers_idle.iter().all(|o| *o == RunOutcome::Correct));
        // ...yet the victim trace is byte-identical, down to the forced
        // SDC landing on the victim's 5th plan draw in both worlds.
        assert_eq!(
            serde::json::to_string(&victims_marginal),
            serde::json::to_string(&victims_idle)
        );
        assert_eq!(victims_marginal[5], RunOutcome::SilentDataCorruption);
    }

    #[test]
    fn solo_colocated_run_matches_run_on_core_exactly() {
        let heavy = WorkloadProfile::builder("heavy")
            .activity(0.8)
            .swing(0.6)
            .build();
        let mut solo = XGene2Server::new(SigmaBin::Ttt, 21);
        let mut colo = XGene2Server::new(SigmaBin::Ttt, 21);
        solo.install_fault_plan(FaultPlan::quiet(9).with_sub_vmin_sdc());
        colo.install_fault_plan(FaultPlan::quiet(9).with_sub_vmin_sdc());
        for _ in 0..40 {
            solo.set_pmd_voltage(Millivolts::new(880)).unwrap();
            colo.set_pmd_voltage(Millivolts::new(880)).unwrap();
            let a = solo.run_on_core(CoreId::new(0), &heavy);
            let b = colo.run_colocated(CoreId::new(0), &heavy, &[]);
            assert_eq!(a, b.victim);
            assert_eq!(b.cross_droop_mv, 0.0);
            assert_eq!(solo.reset_count(), colo.reset_count());
        }
    }

    #[test]
    fn dram_temperature_propagates() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 6);
        server.set_dram_temperature(Celsius::new(60.0));
        assert_eq!(server.read_dram_temperature(), Celsius::new(60.0));
        assert_eq!(server.dram().temperature(), Celsius::new(60.0));
    }
}
