//! Electromagnetic-emanation sensing (Hadjilambrou et al., IEEE CAL 2017).
//!
//! The X-Gene2 exposes no on-die droop probe, so the paper senses voltage
//! noise *indirectly*: a near-field probe over the package picks up the
//! magnetic field of the supply-current loop. The radiated amplitude at the
//! PDN's resonant frequency tracks the resonant current component — and
//! therefore the droop — so maximizing EM amplitude maximizes voltage noise.
//! This module models that probe; the GA in `stress-gen` uses it as its
//! fitness signal.

use crate::pdn::{spectrum, PdnModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A near-field EM probe tuned to the PDN resonance band.
///
/// # Examples
///
/// ```
/// use xgene_sim::em::EmProbe;
/// use xgene_sim::pdn::PdnModel;
///
/// let pdn = PdnModel::xgene2();
/// let mut probe = EmProbe::new(pdn, 1);
/// let f0 = pdn.resonant_frequency_hz();
/// // A square wave at the resonance radiates strongly.
/// let resonant: Vec<f64> = (0..128).map(|i| if i < 64 { 20.0 } else { 2.0 }).collect();
/// let quiet = vec![11.0; 128];
/// assert!(probe.measure(&resonant, 1.0 / f0) > probe.measure(&quiet, 1.0 / f0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmProbe {
    pdn: PdnModel,
    /// Probe coupling gain (arbitrary spectrum-analyzer units per amp).
    coupling: f64,
    /// Measurement noise standard deviation (same units).
    noise_sigma: f64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl EmProbe {
    /// Creates a probe over the given PDN with a deterministic noise seed.
    pub fn new(pdn: PdnModel, seed: u64) -> Self {
        EmProbe {
            pdn,
            coupling: 1.0,
            noise_sigma: 0.01,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The PDN the probe observes.
    pub fn pdn(&self) -> &PdnModel {
        &self.pdn
    }

    /// Measures radiated amplitude (arbitrary units) for a periodic current
    /// trace over one loop period, weighting each harmonic by how close it
    /// falls to the resonance (same selectivity as the PDN impedance peak).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `period_s` is not positive.
    pub fn measure(&mut self, samples: &[f64], period_s: f64) -> f64 {
        let spec = spectrum(samples, period_s, 8);
        let peak = self.pdn.peak_impedance_ohms();
        let signal: f64 = spec
            .iter()
            .map(|(f, a)| a * self.pdn.impedance_ohms(*f) / peak)
            .sum::<f64>()
            * self.coupling;
        let noise = self.noise_sigma * self.gaussian();
        (signal + noise).max(0.0)
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(period_samples: usize, high: f64, low: f64) -> Vec<f64> {
        (0..period_samples)
            .map(|i| if i < period_samples / 2 { high } else { low })
            .collect()
    }

    #[test]
    fn resonant_loop_radiates_most() {
        let pdn = PdnModel::xgene2();
        let f0 = pdn.resonant_frequency_hz();
        let mut probe = EmProbe::new(pdn, 7);
        let wave = square(128, 20.0, 2.0);
        let at_res = probe.measure(&wave, 1.0 / f0);
        let below = probe.measure(&wave, 1.0 / (f0 / 5.0));
        let above = probe.measure(&wave, 1.0 / (f0 * 5.0));
        assert!(at_res > below, "{at_res} vs below {below}");
        assert!(at_res > above, "{at_res} vs above {above}");
    }

    #[test]
    fn amplitude_tracks_swing() {
        let pdn = PdnModel::xgene2();
        let f0 = pdn.resonant_frequency_hz();
        let mut probe = EmProbe::new(pdn, 7);
        let big = probe.measure(&square(128, 25.0, 1.0), 1.0 / f0);
        let small = probe.measure(&square(128, 14.0, 12.0), 1.0 / f0);
        assert!(big > 5.0 * small, "big {big} vs small {small}");
    }

    #[test]
    fn measurement_is_nonnegative() {
        let pdn = PdnModel::xgene2();
        let mut probe = EmProbe::new(pdn, 7);
        for _ in 0..100 {
            assert!(probe.measure(&[0.0; 16], 1e-8) >= 0.0);
        }
    }
}
